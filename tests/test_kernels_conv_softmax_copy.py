"""Tests for the Conv2D, Softmax-Dropout and copy kernels."""

import numpy as np
import pytest

from repro.common.dim3 import Dim3
from repro.gpu.memory import GlobalMemory
from repro.kernels.conv2d import Conv2dConfig, Conv2dKernel, Conv2dProblem, choose_conv2d_config
from repro.kernels.elementwise import CopyKernel, CopyProblem
from repro.kernels.softmax_dropout import SoftmaxDropoutKernel, SoftmaxDropoutProblem


def run_functional(kernel, tensors):
    memory = GlobalMemory()
    for name, value in tensors.items():
        memory.store_tensor(name, value)
    kernel.allocate_functional_tensors(memory)
    for z in range(kernel.grid.z):
        for y in range(kernel.grid.y):
            for x in range(kernel.grid.x):
                program = kernel.build_block_program(Dim3(x, y, z))
                for segment in program.segments:
                    if segment.compute is not None:
                        segment.compute(memory)
    return memory


class TestConv2dProblem:
    def test_implicit_gemm_view(self):
        problem = Conv2dProblem(batch=2, height=28, width=28, in_channels=128, out_channels=128)
        assert problem.gemm_m == 2 * 28 * 28
        assert problem.gemm_n == 128
        assert problem.gemm_k == 128 * 9

    def test_pixel_coords_roundtrip(self):
        problem = Conv2dProblem(batch=2, height=4, width=5, in_channels=3, out_channels=3)
        assert problem.pixel_coords(0) == (0, 0, 0)
        assert problem.pixel_coords(4 * 5) == (1, 0, 0)
        assert problem.pixel_coords(7) == (0, 1, 2)

    def test_halo_rows(self):
        problem = Conv2dProblem(batch=1, height=8, width=8, in_channels=4, out_channels=4)
        assert problem.halo_rows == 8 + 1

    def test_default_config_adapts_to_channels(self):
        small = Conv2dProblem(batch=1, height=56, width=56, in_channels=64, out_channels=64)
        assert choose_conv2d_config(small).tile_n == 64


class TestConv2dKernel:
    def test_grid(self):
        problem = Conv2dProblem(batch=1, height=28, width=28, in_channels=128, out_channels=128)
        kernel = Conv2dKernel("c", problem, Conv2dConfig(tile_m=128, tile_n=128, tile_k=32))
        assert kernel.grid == Dim3(1, 7, 1)

    def test_functional_matches_direct_convolution(self, rng):
        problem = Conv2dProblem(batch=1, height=6, width=6, in_channels=8, out_channels=8)
        kernel = Conv2dKernel(
            "c", problem, Conv2dConfig(tile_m=16, tile_n=8, tile_k=8), functional=True
        )
        tensors = {
            "X": rng.standard_normal((1, 6, 6, 8)).astype(np.float32),
            "W": rng.standard_normal((3, 3, 8, 8)).astype(np.float32) * 0.2,
        }
        memory = run_functional(kernel, tensors)
        np.testing.assert_allclose(
            memory.tensor("Y"), kernel.reference_result(memory), rtol=1e-3, atol=1e-3
        )

    def test_stage_geometry_output_name(self):
        problem = Conv2dProblem(batch=1, height=8, width=8, in_channels=4, out_channels=4, output="act1")
        kernel = Conv2dKernel("c", problem)
        assert kernel.stage_geometry().output == "act1"


class TestSoftmaxDropout:
    def test_grid_rows(self):
        problem = SoftmaxDropoutProblem(rows=100, row_length=64)
        kernel = SoftmaxDropoutKernel("s", problem, rows_per_block=8)
        assert kernel.grid == Dim3(1, 13, 1)

    def test_functional_softmax_rows_sum_to_one(self, rng):
        problem = SoftmaxDropoutProblem(rows=16, row_length=32, dropout_probability=0.0)
        kernel = SoftmaxDropoutKernel("s", problem, rows_per_block=4, functional=True)
        tensors = {"P": rng.standard_normal((16, 32)).astype(np.float32)}
        memory = run_functional(kernel, tensors)
        np.testing.assert_allclose(memory.tensor("R").sum(axis=1), np.ones(16), rtol=1e-5)

    def test_functional_matches_reference(self, rng):
        problem = SoftmaxDropoutProblem(rows=16, row_length=32, dropout_probability=0.25, seed=7)
        kernel = SoftmaxDropoutKernel("s", problem, rows_per_block=4, functional=True)
        tensors = {"P": rng.standard_normal((16, 32)).astype(np.float32)}
        memory = run_functional(kernel, tensors)
        np.testing.assert_allclose(memory.tensor("R"), kernel.reference_result(memory), rtol=1e-5)

    def test_dropout_mask_deterministic(self):
        problem = SoftmaxDropoutProblem(rows=8, row_length=16, dropout_probability=0.5, seed=3)
        kernel = SoftmaxDropoutKernel("s", problem, rows_per_block=4)
        mask_a = kernel._dropout_mask(0, (0, 4))
        mask_b = kernel._dropout_mask(0, (0, 4))
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_invalid_dropout_probability(self):
        with pytest.raises(ValueError):
            SoftmaxDropoutProblem(rows=4, row_length=4, dropout_probability=1.5)


class TestCopyKernel:
    def test_for_block_count(self):
        problem = CopyProblem.for_block_count(1280)
        kernel = CopyKernel("copy", problem)
        assert kernel.grid.volume == 1280

    def test_copy_functional(self, rng):
        problem = CopyProblem(elements=1000, elements_per_block=256)
        kernel = CopyKernel("copy", problem, functional=True)
        data = rng.standard_normal(1000).astype(np.float32)
        memory = run_functional(kernel, {"input": data})
        np.testing.assert_array_equal(memory.tensor("output"), data)

    def test_high_occupancy(self):
        kernel = CopyKernel("copy", CopyProblem(elements=1024))
        assert kernel.occupancy() == 16
