"""Tests for the cuSyncGen DSL: expressions, analysis, codegen and emission."""

import pytest

from repro.errors import CodegenError, DslBoundsError, DslError
from repro.cusync.policies import Conv2DTileSync, RowSync, StridedSync, TileSync
from repro.cusync.tile_orders import GroupedColumnsOrder, RowMajorOrder
from repro.dsl import (
    CuSyncGen,
    Dep,
    DependencyProgram,
    Dim,
    ForAll,
    Grid,
    Range,
    Tile,
    analyze_dependence,
    emit_policy_source,
    emit_tile_order_source,
)
from repro.dsl.cuda_codegen import emit_generated_header


@pytest.fixture
def dims():
    return Dim("x"), Dim("y")


class TestAffineExpressions:
    def test_identity(self, dims):
        x, _ = dims
        expr = Tile(x, x).x_expr(x)
        assert expr.evaluate(5) == 5

    def test_offset_and_scale(self, dims):
        x, _ = dims
        expr = (2 * x + 3)
        assert expr.evaluate(4) == 11

    def test_floor_division(self, dims):
        x, _ = dims
        expr = x // 9
        assert expr.evaluate(17) == 1
        assert expr.evaluate(18) == 2

    def test_non_integer_scale_rejected_without_floor(self, dims):
        x, _ = dims
        with pytest.raises(DslError):
            (x * 1).__truediv__("bad")

    def test_dim_arithmetic_sugar(self, dims):
        x, _ = dims
        assert (x + 1).evaluate(2) == 3
        assert (x - 1).evaluate(2) == 1
        assert (3 * x).evaluate(2) == 6


class TestGridAndDep:
    def test_grid_extents(self, dims):
        x, y = dims
        grid = Grid(x, y, 24, 2, name="g1")
        assert grid.extent_of(x) == 24
        assert grid.shape.volume == 48

    def test_grid_rejects_empty(self, dims):
        x, y = dims
        with pytest.raises(DslError):
            Grid(x, y, 0, 2)

    def test_dep_requires_producer(self, dims):
        x, y = dims
        grid = Grid(x, y, 4, 4)
        with pytest.raises(DslError):
            Dep((grid, Tile(x, y)))

    def test_dep_side_must_start_with_grid(self, dims):
        x, y = dims
        grid = Grid(x, y, 4, 4)
        with pytest.raises(DslError):
            Dep((Tile(x, y),), (grid, Tile(x, y)))


class TestAnalysis:
    def test_mlp_forall_dependence(self, dims):
        x, y = dims
        g1 = Grid(x, y, 24, 2, name="g1")
        g2 = Grid(x, y, 48, 2, name="g2")
        dep = Dep((g2, Tile(x, y)), (g1, ForAll(Tile(x, y), x, Range(24))))
        normalized = analyze_dependence(dep)
        assert normalized.tiles_per_consumer == 24
        assert normalized.x_access.pattern == "all"
        assert normalized.y_access.pattern == "identity"

    def test_strided_dependence(self, dims):
        x, y = dims
        gp = Grid(x, y, 6, 2, name="gP")
        g1 = Grid(x, y, 18, 2, name="g1")
        dep = Dep((gp, Tile(x, y)), (g1, Tile(x, y), Tile(x + 6, y), Tile(x + 12, y)))
        normalized = analyze_dependence(dep)
        assert normalized.x_access.pattern == "strided"
        assert normalized.x_access.stride == 6
        assert normalized.x_access.count == 3

    def test_scaled_dependence(self, dims):
        x, y = dims
        c1 = Grid(x, y, 2, 25, name="c1")
        c2 = Grid(x, y, 9, 25, name="c2")
        dep = Dep((c2, Tile(x // 9, y)), (c1, Tile(x // 9, y)))
        normalized = analyze_dependence(dep)
        assert normalized.x_access.pattern == "scaled"

    def test_bounds_violation_detected(self, dims):
        x, y = dims
        g1 = Grid(x, y, 24, 2, name="g1")
        g2 = Grid(x, y, 48, 2, name="g2")
        dep = Dep((g2, Tile(x, y)), (g1, Tile(x + 30, y)))
        with pytest.raises(DslBoundsError):
            analyze_dependence(dep)

    def test_bad_producer_index(self, dims):
        x, y = dims
        g = Grid(x, y, 4, 4)
        dep = Dep((g, Tile(x, y)), (g, Tile(x, y)))
        with pytest.raises(DslError):
            analyze_dependence(dep, producer_index=1)


class TestCodegen:
    def test_mlp_generates_tile_and_row_sync(self, dims):
        x, y = dims
        g1 = Grid(x, y, 24, 2, name="g1")
        g2 = Grid(x, y, 48, 2, name="g2")
        dep = Dep((g2, Tile(x, y)), (g1, ForAll(Tile(x, y), x, Range(24))))
        generated = CuSyncGen().generate(dep)
        assert set(generated.policy_names) == {"TileSync", "RowSync"}
        assert isinstance(generated.policy("RowSync"), RowSync)
        assert isinstance(generated.producer_order, RowMajorOrder)

    def test_attention_generates_strided_sync(self, dims):
        x, y = dims
        gp = Grid(x, y, 6, 2, name="gP")
        g1 = Grid(x, y, 18, 2, name="g1")
        dep = Dep((gp, Tile(x, y)), (g1, Tile(x, y), Tile(x + 6, y), Tile(x + 12, y)))
        generated = CuSyncGen().generate(dep)
        assert "StridedSync" in generated.policy_names
        strided = generated.policy("StridedSync")
        assert isinstance(strided, StridedSync) and strided.stride == 6
        assert isinstance(generated.producer_order, GroupedColumnsOrder)
        assert generated.producer_order.group == 3

    def test_conv_generates_conv2d_tilesync(self, dims):
        x, y = dims
        c1 = Grid(x, y, 2, 25, name="c1")
        c2 = Grid(x, y, 9, 25, name="c2")
        dep = Dep((c2, Tile(x, y)), (c1, Tile(x // 9, y)))
        generated = CuSyncGen().generate(dep)
        assert "Conv2DTileSync" in generated.policy_names
        assert isinstance(generated.policy("Conv2DTileSync"), Conv2DTileSync)

    def test_unknown_policy_lookup(self, dims):
        x, y = dims
        g = Grid(x, y, 4, 4)
        dep = Dep((g, Tile(x, y)), (g, Tile(x, y)))
        generated = CuSyncGen().generate(dep)
        with pytest.raises(CodegenError):
            generated.policy("RowSync")

    def test_program_collects_policies(self, dims):
        x, y = dims
        g1 = Grid(x, y, 24, 2, name="g1")
        g2 = Grid(x, y, 48, 2, name="g2")
        program = DependencyProgram(name="mlp")
        program.add_dep(Dep((g2, Tile(x, y)), (g1, ForAll(Tile(x, y), x, Range(24)))))
        menu = program.policy_menu()
        assert menu == {"TileSync": 1, "RowSync": 1}
        assert len(program.analyze()) == 1

    def test_empty_program_rejected(self):
        with pytest.raises(DslError):
            DependencyProgram(name="empty").analyze()


class TestCudaEmission:
    def test_rowsync_source_mentions_row_semaphore(self):
        source = emit_policy_source(RowSync())
        assert "tile.z * grid.y + tile.y" in source
        assert "grid.x" in source

    def test_tilesync_source_value_one(self):
        source = emit_policy_source(TileSync())
        assert "return 1;" in source

    def test_strided_source_includes_stride(self):
        source = emit_policy_source(StridedSync(stride=6))
        assert "% 6" in source

    def test_order_sources(self):
        assert "grid.x + tile.x" in emit_tile_order_source(RowMajorOrder())
        assert "GroupedColumns" not in emit_tile_order_source(GroupedColumnsOrder(group=3), "ProdOrder")

    def test_header_contains_all_policies(self, dims):
        x, y = dims
        g1 = Grid(x, y, 24, 2, name="g1")
        g2 = Grid(x, y, 48, 2, name="g2")
        dep = Dep((g2, Tile(x, y)), (g1, ForAll(Tile(x, y), x, Range(24))))
        generated = CuSyncGen().generate(dep)
        header = emit_generated_header(generated)
        assert "class TileSync" in header and "class RowSync" in header
        assert header.startswith("#ifndef")
