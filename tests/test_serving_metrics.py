"""Tests for latency metrics (:mod:`repro.serving.metrics`).

``exact_percentile`` is pinned against ``numpy.percentile`` (default
linear interpolation) with a hypothesis property — the serving reports'
p50/p90/p99 numbers must mean exactly what numpy would say.  The report
aggregation (goodput under an SLO, throughput, token rates) is checked
on hand-computable populations.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServingError
from repro.serving import LatencyReport, RequestRecord, exact_percentile


class TestExactPercentile:
    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_linear_interpolation(self, values, q):
        ours = exact_percentile(values, q)
        theirs = float(np.percentile(values, q))
        assert ours == pytest.approx(theirs, rel=1e-12, abs=1e-9)

    def test_endpoints_are_min_and_max(self):
        values = [9.0, 1.0, 5.0]
        assert exact_percentile(values, 0.0) == 1.0
        assert exact_percentile(values, 100.0) == 9.0

    def test_median_of_even_population_interpolates(self):
        assert exact_percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_single_value_population(self):
        assert exact_percentile([42.0], 99.0) == 42.0

    def test_empty_population_rejected(self):
        with pytest.raises(ServingError):
            exact_percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ServingError):
            exact_percentile([1.0], 101.0)


def record(request_id, total_us, ttft_us=None, prompt=16, decode=4):
    ttft = total_us / 2 if ttft_us is None else ttft_us
    return RequestRecord(
        request_id=request_id,
        arrival_us=0.0,
        prompt_tokens=prompt,
        decode_tokens=decode,
        queue_us=0.0,
        prefill_us=ttft,
        decode_us=total_us - ttft,
        total_us=total_us,
        ttft_us=ttft,
        finish_us=total_us,
    )


def make_report(records, simulated_us=1e6, slo_us=math.inf):
    return LatencyReport.from_records(
        records,
        scheme="cusync",
        policy="TileSync",
        arch="V100",
        requests=len(records),
        simulated_us=simulated_us,
        iterations=10,
        prefill_iterations=4,
        decode_iterations=6,
        distinct_shapes=3,
        sweep_cache_hits=7,
        sweep_cache_misses=3,
        store_hits=0,
        slo_us=slo_us,
    )


class TestLatencyReport:
    def test_aggregates_hand_computed(self):
        records = [record(i, total_us=float(100 * (i + 1))) for i in range(4)]
        report = make_report(records, simulated_us=2e6)
        assert report.p50_total_us == 250.0  # midpoint of 200 and 300
        assert report.mean_total_us == 250.0
        assert report.throughput_rps == 2.0  # 4 requests / 2 seconds
        assert report.goodput_rps == report.throughput_rps  # infinite SLO
        assert report.tokens_per_s == 4 * 20 / 2.0

    def test_goodput_counts_only_within_slo(self):
        records = [record(i, total_us=float(100 * (i + 1))) for i in range(4)]
        report = make_report(records, simulated_us=1e6, slo_us=250.0)
        assert report.goodput_rps == 2.0  # 100 and 200 meet the SLO
        assert report.throughput_rps == 4.0

    def test_reports_compare_equal_when_identical(self):
        records = [record(0, 100.0), record(1, 200.0)]
        assert make_report(records) == make_report(list(records))

    def test_summary_drops_records_and_infinities(self):
        report = make_report([record(0, 100.0)])
        summary = report.summary()
        assert "records" not in summary
        assert summary["slo_us"] is None  # inf -> None for JSON
        json.dumps(summary)  # must be serializable as-is

    def test_to_dict_roundtrips_through_json(self):
        report = make_report([record(0, 100.0), record(1, 300.0)])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["completed"] == 2
        assert len(payload["records"]) == 2
        assert payload["records"][1]["total_us"] == 300.0

    def test_describe_mentions_scheme_and_percentiles(self):
        text = make_report([record(0, 100.0)]).describe()
        assert "cusync" in text and "p99" in text

    def test_empty_population_rejected(self):
        with pytest.raises(ServingError):
            make_report([])

    def test_nonpositive_simulated_time_rejected(self):
        with pytest.raises(ServingError):
            make_report([record(0, 100.0)], simulated_us=0.0)
