"""Tests for the simulated global memory, semaphores and race tracking."""

import numpy as np
import pytest

from repro.errors import DataRaceError, SimulationError
from repro.gpu.memory import GlobalMemory, SemaphoreArray


class TestSemaphoreArray:
    def test_initial_values_zero(self):
        array = SemaphoreArray(name="s", size=4)
        assert array.values == [0, 0, 0, 0]

    def test_atomic_add_returns_new_value(self):
        array = SemaphoreArray(name="s", size=2)
        assert array.atomic_add(0) == 1
        assert array.atomic_add(0, 3) == 4
        assert array.read(0) == 4

    def test_reset(self):
        array = SemaphoreArray(name="s", size=2)
        array.atomic_add(1)
        array.reset()
        assert array.values == [0, 0]

    def test_index_bounds(self):
        array = SemaphoreArray(name="s", size=2)
        with pytest.raises(IndexError):
            array.read(2)
        with pytest.raises(IndexError):
            array.atomic_add(-1)


class TestGlobalMemory:
    def test_alloc_and_read_semaphores(self):
        memory = GlobalMemory()
        memory.alloc_semaphores("sems", 3, initial=1)
        assert memory.semaphore_value("sems", 2) == 1

    def test_unknown_semaphore_array(self):
        memory = GlobalMemory()
        with pytest.raises(SimulationError):
            memory.semaphores("missing")

    def test_statistics_counted(self):
        memory = GlobalMemory()
        memory.alloc_semaphores("sems", 1)
        memory.atomic_add("sems", 0)
        memory.semaphore_value("sems", 0)
        assert memory.atomic_operations == 1
        assert memory.semaphore_reads == 1
        memory.reset_statistics()
        assert memory.atomic_operations == 0

    def test_tensor_storage(self):
        memory = GlobalMemory()
        data = np.arange(6).reshape(2, 3)
        memory.store_tensor("X", data)
        assert memory.has_tensor("X")
        assert np.array_equal(memory.tensor("X"), data)

    def test_missing_tensor(self):
        memory = GlobalMemory()
        with pytest.raises(SimulationError):
            memory.tensor("nope")

    def test_tile_write_tracking(self):
        memory = GlobalMemory()
        memory.mark_tile_written("C", (0, 0, 0))
        assert memory.tile_written("C", (0, 0, 0))
        assert not memory.tile_written("C", (1, 0, 0))
        assert memory.written_tiles("C") == {(0, 0, 0)}

    def test_race_detection_raises(self):
        memory = GlobalMemory()
        memory.store_tensor("C", np.zeros(4))
        with pytest.raises(DataRaceError):
            memory.check_tile_read("C", (0, 0, 0), reader="blockX", tracked_tensors={"C"})

    def test_race_detection_passes_after_write(self):
        memory = GlobalMemory()
        memory.store_tensor("C", np.zeros(4))
        memory.mark_tile_written("C", (0, 0, 0))
        memory.check_tile_read("C", (0, 0, 0), reader="blockX", tracked_tensors={"C"})

    def test_untracked_tensors_not_checked(self):
        memory = GlobalMemory()
        memory.store_tensor("W", np.zeros(4))
        memory.check_tile_read("W", (5, 5, 5), reader="blockX", tracked_tensors={"C"})

    def test_snapshot(self):
        memory = GlobalMemory()
        memory.alloc_semaphores("a", 2)
        memory.atomic_add("a", 1)
        assert memory.snapshot_semaphores() == {"a": (0, 1)}
