"""Fault-tolerant sweep semantics: retries, timeouts, ``on_error`` modes,
and exception propagation across all three execution modes.

The invariants pinned here:

* a point that fails transiently and is retried produces a result
  bit-identical to a fault-free sweep;
* an exhausted point surfaces per ``on_error`` — re-raised original
  exception, structured :class:`SweepFailure`, or dropped;
* a raising cost model surfaces its *original* traceback from worker
  processes, never a pickling error;
* a failing point is never written to the sweep-result cache.
"""

import pytest

from repro.errors import (
    InjectedCrashError,
    InjectedFaultError,
    SimulationError,
    SweepPointError,
)
from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.models import GptMlp, TransformerConfig
from repro.pipeline import Session, SweepFailure, SweepPoint, SweepResult
from repro.pipeline.session import _backoff_delay
from repro.testing import FaultPlan, FaultSpec, inject_faults

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)
POLICIES = ("TileSync", "RowSync", "StridedTileSync")
MODES = ("serial", "thread", "process")


class ExplodingCostModel(CostModel):
    """Raises mid-simulation, the way a buggy user cost model would."""

    def block_duration_factors(self, kernel_name, count):
        raise ValueError(f"exploding cost model: {kernel_name}")


class UnpicklableError(Exception):
    """An exception that cannot cross a process boundary (callable arg)."""

    def __init__(self, message):
        super().__init__(message, lambda: None)


class UnpicklableCostModel(CostModel):
    def block_duration_factors(self, kernel_name, count):
        raise UnpicklableError(f"unpicklable failure in {kernel_name}")


@pytest.fixture(scope="module")
def graph():
    return GptMlp(config=TINY, batch_seq=96).to_graph()


@pytest.fixture(scope="module")
def baseline(graph):
    return Session(sweep_cache=False).sweep(graph, policies=POLICIES, mode="serial")


def _times(results):
    return [result.total_time_us for result in results]


class TestArgumentValidation:
    def test_unknown_on_error_rejected(self, graph):
        with pytest.raises(SimulationError, match="on_error"):
            Session().sweep(graph, policies=POLICIES, on_error="explode")

    def test_negative_retries_rejected(self, graph):
        with pytest.raises(SimulationError, match="retries"):
            Session().sweep(graph, policies=POLICIES, retries=-1)

    def test_non_positive_timeout_rejected(self, graph):
        with pytest.raises(SimulationError, match="timeout"):
            Session().sweep(graph, policies=POLICIES, timeout=0.0)


@pytest.mark.parametrize("mode", MODES)
class TestExceptionPropagation:
    """Satellite: the original exception — not a pickling artifact —
    must surface from every execution mode."""

    def test_raise_mode_surfaces_original_exception(self, graph, mode):
        session = Session(cost_model=ExplodingCostModel(arch=TESLA_V100), sweep_cache=False)
        with pytest.raises(ValueError, match="exploding cost model") as excinfo:
            session.sweep(graph, policies=POLICIES, mode=mode)
        if mode == "process":
            # The exception crossed a process boundary; the worker's
            # formatted traceback rides along as an exception note.
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("worker traceback" in note for note in notes)
            assert any("block_duration_factors" in note for note in notes)

    def test_unpicklable_exception_is_not_a_pickling_error(self, graph, mode):
        session = Session(cost_model=UnpicklableCostModel(arch=TESLA_V100), sweep_cache=False)
        with pytest.raises((UnpicklableError, SweepPointError)) as excinfo:
            session.sweep(graph, policies=POLICIES, mode=mode)
        if mode == "process":
            # The exception object cannot be transported, but the original
            # traceback text must be — never an opaque PicklingError.
            error = excinfo.value
            assert isinstance(error, SweepPointError)
            assert "unpicklable failure" in error.traceback_text
            assert "block_duration_factors" in error.traceback_text
            assert "PicklingError" not in str(error)

    def test_collect_mode_carries_traceback(self, graph, mode):
        session = Session(cost_model=ExplodingCostModel(arch=TESLA_V100), sweep_cache=False)
        results = session.sweep(graph, policies=POLICIES, mode=mode, on_error="collect")
        assert len(results) == len(POLICIES)
        for failure in results:
            assert isinstance(failure, SweepFailure)
            assert not failure.ok
            assert failure.error_type == "ValueError"
            assert "exploding cost model" in failure.error
            assert "block_duration_factors" in failure.traceback
            assert failure.attempts == 1

    def test_skip_mode_drops_failed_points(self, graph, mode):
        plan = FaultPlan([FaultSpec(kind="error", point=1)])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(graph, policies=POLICIES, mode=mode, on_error="skip")
        assert len(results) == len(POLICIES) - 1
        assert all(isinstance(result, SweepResult) for result in results)


@pytest.mark.parametrize("mode", MODES)
class TestRetries:
    def test_transient_fault_recovers_bit_identical(self, graph, baseline, mode):
        plan = FaultPlan([FaultSpec(kind="error", point=1)])  # attempt 0 only
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph, policies=POLICIES, mode=mode, retries=1, on_error="collect"
            )
        assert all(isinstance(result, SweepResult) for result in results)
        assert _times(results) == _times(baseline)

    def test_persistent_fault_exhausts_attempts(self, graph, mode):
        plan = FaultPlan([FaultSpec(kind="error", point=0, attempts=(0, 1, 2))])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph, policies=POLICIES, mode=mode, retries=2, on_error="collect"
            )
        failure = results[0]
        assert isinstance(failure, SweepFailure)
        assert failure.attempts == 3
        assert failure.error_type == "InjectedFaultError"
        assert all(isinstance(result, SweepResult) for result in results[1:])


class TestBackoff:
    def test_backoff_is_deterministic(self):
        assert _backoff_delay(0.05, 3, 1) == _backoff_delay(0.05, 3, 1)
        assert _backoff_delay(0.05, 3, 1) != _backoff_delay(0.05, 4, 1)

    def test_backoff_grows_exponentially(self):
        base = _backoff_delay(0.1, 7, 1)
        later = _backoff_delay(0.1, 7, 4)
        # Attempt 4 scales by 2**3; jitter spans [0.5, 1.5), so even the
        # smallest attempt-4 delay beats the largest attempt-1 delay.
        assert later > base
        assert 0.05 <= base < 0.15
        assert 0.4 <= later < 1.2

    def test_no_backoff_before_first_retry(self):
        assert _backoff_delay(0.05, 0, 0) == 0.0
        assert _backoff_delay(0.0, 5, 3) == 0.0


class TestTimeout:
    def test_cooperative_timeout_discards_late_result(self, graph):
        plan = FaultPlan([FaultSpec(kind="hang", point=0, hang_seconds=0.3)])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph,
                policies=POLICIES,
                mode="serial",
                timeout=0.05,
                on_error="collect",
            )
        failure = results[0]
        assert isinstance(failure, SweepFailure)
        assert failure.error_type == "TimeoutError"
        assert "discarded" in failure.error

    def test_process_timeout_kills_worker_and_recovers(self, graph, baseline):
        # The hang is far longer than the timeout, so only a worker kill —
        # not patience — can complete this sweep; the retry (attempt 1,
        # fault fires on attempt 0 only) then recovers the true result.
        plan = FaultPlan([FaultSpec(kind="hang", point=2, hang_seconds=30.0)])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph,
                policies=POLICIES,
                mode="process",
                timeout=1.0,
                retries=1,
                on_error="collect",
            )
        assert all(isinstance(result, SweepResult) for result in results)
        assert _times(results) == _times(baseline)

    def test_process_timeout_exhaustion_reports_timeout(self, graph):
        plan = FaultPlan(
            [FaultSpec(kind="hang", point=0, hang_seconds=30.0, attempts=(0, 1))]
        )
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph,
                policies=POLICIES,
                mode="process",
                timeout=0.75,
                retries=1,
                on_error="collect",
            )
        failure = results[0]
        assert isinstance(failure, SweepFailure)
        assert failure.error_type == "TimeoutError"
        assert failure.attempts == 2
        assert all(isinstance(result, SweepResult) for result in results[1:])


class TestCrashRecovery:
    def test_worker_crash_respawns_pool_and_recovers(self, graph, baseline):
        plan = FaultPlan([FaultSpec(kind="crash", point=0)])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph, policies=POLICIES, mode="process", retries=2, on_error="collect"
            )
        assert all(isinstance(result, SweepResult) for result in results)
        assert _times(results) == _times(baseline)

    def test_serial_crash_degrades_to_exception(self, graph):
        plan = FaultPlan([FaultSpec(kind="crash", point=0)])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            with pytest.raises(InjectedCrashError):
                session.sweep(graph, policies=POLICIES, mode="serial")

    def test_crash_without_retries_is_a_structured_failure(self, graph):
        plan = FaultPlan([FaultSpec(kind="crash", point=1)])
        session = Session(sweep_cache=False)
        with inject_faults(plan):
            results = session.sweep(
                graph, policies=POLICIES, mode="process", on_error="collect"
            )
        failure = results[1]
        assert isinstance(failure, SweepFailure)
        assert "worker process died" in failure.error


class TestCacheNeverPoisoned:
    """Satellite: a point whose simulation raised must never be cached."""

    def test_failed_point_not_cached_and_resimulates(self, graph, baseline):
        session = Session()
        plan = FaultPlan([FaultSpec(kind="error", point=1)])
        with inject_faults(plan):
            first = session.sweep(graph, policies=POLICIES, mode="serial", on_error="collect")
        assert isinstance(first[1], SweepFailure)
        assert session.sweep_cache_size == len(POLICIES) - 1

        # The fault-free re-sweep replays the healthy points and
        # re-simulates — not replays — the failed one.
        second = session.sweep(graph, policies=POLICIES, mode="serial")
        assert all(isinstance(result, SweepResult) for result in second)
        assert _times(second) == _times(baseline)
        assert second[0].cached and second[2].cached
        assert not second[1].cached
        assert session.sweep_cache_size == len(POLICIES)

    def test_corrupt_result_rejected_and_not_cached(self, graph):
        session = Session()
        plan = FaultPlan([FaultSpec(kind="corrupt_result", point=0)])
        with inject_faults(plan):
            results = session.sweep(
                graph, policies=POLICIES, mode="serial", on_error="collect"
            )
        failure = results[0]
        assert isinstance(failure, SweepFailure)
        assert failure.error_type == "SimulationError"
        assert "corrupt" in failure.error
        assert session.sweep_cache_size == len(POLICIES) - 1
        for cached in session._sweep_cache.values():
            assert cached.total_time_us == cached.total_time_us  # no NaN

    def test_raise_mode_abort_leaves_cache_empty(self, graph):
        session = Session(cost_model=ExplodingCostModel(arch=TESLA_V100))
        with pytest.raises(ValueError):
            session.sweep(graph, policies=POLICIES, mode="serial")
        assert session.sweep_cache_size == 0

    def test_duplicate_of_failed_point_shares_its_failure(self, graph):
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=TESLA_V100)
        twin = SweepPoint(scheme="cusync", policy="TileSync", arch=TESLA_V100)
        session = Session()
        plan = FaultPlan([FaultSpec(kind="error", point=0)])
        with inject_faults(plan):
            results = session.sweep(
                [(graph, point), (graph, twin)], mode="serial", on_error="collect"
            )
        assert len(results) == 2
        assert all(isinstance(result, SweepFailure) for result in results)
        assert session.sweep_cache_size == 0
