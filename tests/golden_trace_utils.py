"""Golden-trace capture for the simulator equivalence test.

The simulator is documented as deterministic: identical inputs produce
identical traces.  The hot-path optimisations (incremental dispatch,
indexed SM allocation, block-program caching) must therefore be *trace
preserving* — every block must land on the same SM at the same time as it
did before the fast paths existed.

This module captures a canonical set of pipelines (MLP, attention and conv
chains under StreamSync and cuSync policies) into a JSON-serialisable
structure.  ``tests/fixtures/golden_traces.json`` pins the output of the
seed simulator; ``test_golden_traces.py`` re-runs the same pipelines on the
current simulator and asserts exact equality.

Regenerate the fixture (only when a change is *intended* to alter traces)
with::

    PYTHONPATH=src python tests/golden_trace_utils.py
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.gpu.arch import AMPERE_A100, TESLA_V100
from repro.models.attention import Attention
from repro.models.config import GPT3_145B, LLAMA_65B, RESNET38_LAYERS, VGG19_LAYERS
from repro.models.conv_layers import ConvChain
from repro.models.llama_mlp import LlamaMlp
from repro.models.mlp import GptMlp

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "fixtures", "golden_traces.json")


def _workloads() -> Dict[str, object]:
    """The pinned workloads.  Kept small enough to run in a few seconds.

    All five model workloads are pinned on both V100 and A100 (``@a100``
    keys), so the arch axis is trace-pinned too; the original four V100
    entries keep their historical keys.
    """
    resnet = {spec.channels: spec for spec in RESNET38_LAYERS}
    vgg = {spec.channels: spec for spec in VGG19_LAYERS}
    return {
        "mlp_b256": GptMlp(batch_seq=256, arch=TESLA_V100),
        "mlp_b512": GptMlp(batch_seq=512, arch=TESLA_V100),
        "attention_s256": Attention(config=GPT3_145B, batch=1, seq=256, cached=0, arch=TESLA_V100),
        "conv_c64": ConvChain(resnet[64], batch=1, arch=TESLA_V100),
        "llama_mlp_b256": LlamaMlp(config=LLAMA_65B, batch_seq=256, arch=TESLA_V100),
        "conv_vgg_c256": ConvChain(vgg[256], batch=1, arch=TESLA_V100),
        "mlp_b256@a100": GptMlp(batch_seq=256, arch=AMPERE_A100),
        "llama_mlp_b256@a100": LlamaMlp(config=LLAMA_65B, batch_seq=256, arch=AMPERE_A100),
        "attention_s256@a100": Attention(
            config=GPT3_145B, batch=1, seq=256, cached=0, arch=AMPERE_A100
        ),
        "conv_c64@a100": ConvChain(resnet[64], batch=1, arch=AMPERE_A100),
        "conv_vgg_c256@a100": ConvChain(vgg[256], batch=1, arch=AMPERE_A100),
    }


def _schemes(name: str) -> List[str]:
    """Synchronization schemes exercised per workload."""
    if name.startswith("conv"):
        return ["streamsync", "cusync:RowSync", "cusync:Conv2DTileSync"]
    if name.startswith("attention"):
        return ["streamsync", "cusync:TileSync", "cusync:StridedTileSync"]
    return ["streamsync", "cusync:TileSync", "cusync:RowSync"]


def _run(workload, scheme: str):
    if scheme == "streamsync":
        return workload.run_streamsync()
    _, policy = scheme.split(":", 1)
    return workload.run_cusync(policy=policy)


def _serialize_result(result) -> Dict[str, object]:
    simulation = result.simulation
    trace = simulation.trace
    kernels = {
        name: {
            "duration_us": stats.duration_us,
            "issue_time_us": stats.issue_time_us,
            "start_time_us": stats.start_time_us,
            "end_time_us": stats.end_time_us,
            "total_wait_time_us": stats.total_wait_time_us,
            "total_work_time_us": stats.total_work_time_us,
            "num_blocks": stats.num_blocks,
        }
        for name, stats in sorted(trace.kernels.items())
    }
    blocks = [
        {
            "kernel": record.kernel,
            "tile": [record.tile.x, record.tile.y, record.tile.z],
            "dispatch_index": record.dispatch_index,
            "sm_id": record.sm_id,
            "dispatch_time_us": record.dispatch_time_us,
            "end_time_us": record.end_time_us,
            "wait_time_us": record.wait_time_us,
            "work_time_us": record.work_time_us,
        }
        for record in trace.blocks
    ]
    return {
        "total_time_us": simulation.total_time_us,
        "host_issue_time_us": simulation.host_issue_time_us,
        "kernels": kernels,
        "blocks": blocks,
    }


def capture_traces() -> Dict[str, Dict[str, object]]:
    """Run every pinned (workload, scheme) pair and serialise its trace."""
    captured: Dict[str, Dict[str, object]] = {}
    for name, workload in _workloads().items():
        for scheme in _schemes(name):
            captured[f"{name}/{scheme}"] = _serialize_result(_run(workload, scheme))
    return captured


def load_fixture() -> Dict[str, Dict[str, object]]:
    with open(FIXTURE_PATH) as handle:
        return json.load(handle)


def write_fixture() -> None:
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    with open(FIXTURE_PATH, "w") as handle:
        json.dump(capture_traces(), handle, indent=1, sort_keys=True)
        handle.write("\n")


if __name__ == "__main__":
    write_fixture()
    print(f"wrote {FIXTURE_PATH}")
