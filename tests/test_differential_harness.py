"""The differential harness over the (workload, arch, scheme, policy) cube.

Acceptance criterion of the cross-architecture subsystem: ``sweep_archs``
over >= 3 registered architectures x the five model workloads is
bit-identical across serial/thread/process sweep modes.  The fast
per-workload parameterization runs in the tier-1 lane; the full cube is
marked ``slow`` (deselect with ``-m "not slow"``).
"""

import pytest

from differential_harness import (
    WORKLOAD_POLICIES,
    assert_modes_identical,
    differential_work,
    run_cube,
    small_workloads,
)

WORKLOAD_NAMES = sorted(WORKLOAD_POLICIES)


@pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
def test_modes_identical_per_workload(workload_name):
    """Each workload's (arch, scheme, policy) grid is mode-independent."""
    results = run_cube(arches=("V100", "A100"), workload_names=[workload_name])
    assert {result.arch_name for result in results} == {"Tesla V100", "A100"}
    assert all(result.total_time_us > 0.0 for result in results)
    # Every architecture has its StreamSync baseline in the grid.
    baselines = {r.arch_name for r in results if r.scheme == "streamsync"}
    assert baselines == {"Tesla V100", "A100"}


@pytest.mark.slow
def test_full_cube_three_arches_five_workloads():
    """The full acceptance cube: 5 workloads x 3 arches x all families."""
    results = run_cube(arches=("V100", "A100", "H100-SXM"))
    expected = 3 * sum(1 + len(policies) for policies in WORKLOAD_POLICIES.values())
    assert len(results) == expected
    assert {result.arch_name for result in results} == {"Tesla V100", "A100", "H100-SXM"}
    # Architecture genuinely moves the numbers: for every workload the
    # StreamSync baseline differs across architectures.
    for workload in {result.graph_label for result in results}:
        times = {
            result.arch_name: result.total_time_us
            for result in results
            if result.graph_label == workload and result.scheme == "streamsync"
        }
        assert len(set(times.values())) == len(times), (workload, times)


def test_consumer_arch_point_runs_identically():
    """The RTX-4090 preset (different occupancy geometry, launch latency)
    runs the MLP bit-identically across modes and differs from V100."""
    graph = small_workloads()["mlp"].to_graph()
    work = differential_work(
        [graph], arches=("V100", "RTX-4090"), schemes=("cusync",), policies=("TileSync",)
    )
    results = assert_modes_identical(work)
    times = {result.arch_name: result.total_time_us for result in results}
    assert set(times) == {"Tesla V100", "RTX-4090"}
    assert times["Tesla V100"] != times["RTX-4090"]


def test_scaled_what_if_spec_sweeps():
    """ArchSpec.scaled() what-ifs ride the sweep grid like presets."""
    from repro.gpu import ArchSpec

    graph = small_workloads()["mlp"].to_graph()
    halved = ArchSpec("V100").scaled(sms=0.5)
    work = differential_work(
        [graph], arches=("V100", halved), schemes=("cusync",), policies=("TileSync",)
    )
    results = assert_modes_identical(work)
    assert len(results) == 2
    full, half = results
    assert half.arch_name.startswith("Tesla V100[")
    # Half the SMs cannot be faster on a multi-wave kernel.
    assert half.total_time_us >= full.total_time_us
