"""Tests for synchronization policies and tile processing orders."""

import pytest

from repro.common.dim3 import Dim3
from repro.common.tiles import iter_tiles
from repro.errors import SynchronizationError
from repro.cusync.policies import BatchSync, Conv2DTileSync, RowSync, StridedSync, TileSync
from repro.cusync.tile_orders import (
    ColumnMajorOrder,
    ExplicitOrder,
    FunctionOrder,
    GroupedColumnsOrder,
    RowMajorOrder,
)

GRID = Dim3(6, 4, 2)


class TestTileSync:
    def test_distinct_semaphores(self):
        policy = TileSync()
        indices = {policy.semaphore_index(tile, GRID) for tile in iter_tiles(GRID)}
        assert len(indices) == GRID.volume

    def test_expected_value_one(self):
        assert TileSync().expected_value(Dim3(1, 1, 0), GRID) == 1

    def test_validate_passes(self):
        TileSync().validate(GRID)


class TestRowSync:
    def test_row_shares_semaphore(self):
        policy = RowSync()
        row = [policy.semaphore_index(Dim3(x, 2, 1), GRID) for x in range(GRID.x)]
        assert len(set(row)) == 1

    def test_value_counts_row_tiles(self):
        assert RowSync().expected_value(Dim3(0, 0, 0), GRID) == GRID.x

    def test_fewer_semaphores_than_tilesync(self):
        assert RowSync().num_semaphores(GRID) < TileSync().num_semaphores(GRID)

    def test_paper_example_semaphore_count(self):
        # Figure 4: two GeMMs, TileSync needs 12 synchronizations, RowSync 6.
        grid = Dim3(2, 3, 1)
        assert TileSync().num_semaphores(grid) + TileSync().num_semaphores(Dim3(2, 3, 1)) == 12
        assert RowSync().num_semaphores(grid) + RowSync().num_semaphores(Dim3(2, 3, 1)) == 6


class TestStridedSync:
    def test_strided_tiles_share_semaphore(self):
        policy = StridedSync(stride=2)
        assert policy.semaphore_index(Dim3(0, 1, 0), GRID) == policy.semaphore_index(Dim3(2, 1, 0), GRID)
        assert policy.semaphore_index(Dim3(0, 1, 0), GRID) != policy.semaphore_index(Dim3(1, 1, 0), GRID)

    def test_expected_value_is_group_count(self):
        assert StridedSync(stride=2).expected_value(Dim3(0, 0, 0), GRID) == 3

    def test_rejects_non_dividing_stride(self):
        with pytest.raises(SynchronizationError):
            StridedSync(stride=4).groups(GRID)

    def test_validate(self):
        StridedSync(stride=3).validate(GRID)


class TestOtherPolicies:
    def test_conv2d_tilesync_is_tile_granular(self):
        assert Conv2DTileSync().num_semaphores(GRID) == GRID.volume

    def test_batch_sync(self):
        policy = BatchSync()
        assert policy.num_semaphores(GRID) == GRID.z
        assert policy.expected_value(Dim3(0, 0, 0), GRID) == GRID.x * GRID.y

    def test_validate_catches_bad_policy(self):
        class Broken(TileSync):
            def semaphore_index(self, tile, grid):
                return grid.volume + 1

        with pytest.raises(SynchronizationError):
            Broken().validate(GRID)


class TestTileOrders:
    @pytest.mark.parametrize(
        "order",
        [RowMajorOrder(), ColumnMajorOrder(), GroupedColumnsOrder(group=3), GroupedColumnsOrder(group=2)],
        ids=["row", "col", "grouped3", "grouped2"],
    )
    def test_orders_are_permutations(self, order):
        tiles = order.permutation(GRID)
        assert len(tiles) == GRID.volume
        assert set(tiles) == set(iter_tiles(GRID))

    def test_row_major_matches_linear_enumeration(self):
        assert RowMajorOrder().permutation(Dim3(2, 2, 1)) == [
            Dim3(0, 0, 0), Dim3(1, 0, 0), Dim3(0, 1, 0), Dim3(1, 1, 0),
        ]

    def test_column_major_varies_y_first(self):
        assert ColumnMajorOrder().permutation(Dim3(2, 2, 1))[:2] == [Dim3(0, 0, 0), Dim3(0, 1, 0)]

    def test_grouped_columns_schedules_group_members_consecutively(self):
        order = GroupedColumnsOrder(group=3).permutation(Dim3(6, 1, 1))
        assert order[:3] == [Dim3(0, 0, 0), Dim3(2, 0, 0), Dim3(4, 0, 0)]

    def test_grouped_requires_divisible_group(self):
        with pytest.raises(SynchronizationError):
            GroupedColumnsOrder(group=4).permutation(Dim3(6, 1, 1))

    def test_order_fn_lookup(self):
        lookup = RowMajorOrder().order_fn(Dim3(3, 1, 1))
        assert lookup(2) == Dim3(2, 0, 0)

    def test_function_order_bijection_checked(self):
        broken = FunctionOrder(function=lambda tile, grid: 0)
        with pytest.raises(SynchronizationError):
            broken.permutation(Dim3(2, 1, 1))

    def test_explicit_order_must_cover_grid(self):
        partial = ExplicitOrder(tiles=[Dim3(0, 0, 0)])
        with pytest.raises(SynchronizationError):
            partial.order_fn(Dim3(2, 1, 1))
