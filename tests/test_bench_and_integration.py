"""Tests for the experiment harness plus end-to-end integration checks."""

import numpy as np
import pytest

from repro.bench import (
    format_percent,
    format_table,
    overhead_experiment,
    table1_utilization,
    table3_lines_changed,
)
from repro.bench.experiments import figure7_conv, table5_conv_optimizations
from repro.dsl import AutoTuner
from repro.errors import DataRaceError
from repro.gpu.arch import TESLA_V100
from repro.models import Attention, ConvChain, GptMlp, TransformerConfig
from repro.models.config import RESNET38_LAYERS
from repro.models.inference import TransformerLayer, VisionModel
from repro.models.config import resnet38_config

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.153) == "15.3%"

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "10" in lines[-1]


class TestExperiments:
    def test_table1_matches_paper_batch_256(self):
        rows = table1_utilization(batch_sizes=(256,))
        producer = next(row for row in rows if row["gemm"] == "Producer")
        # Table I, batch 256: 192 thread blocks, 2x80 per wave, 1.2 waves, 60%.
        assert producer["thread_blocks"] == 192
        assert producer["blocks_per_wave"] == 160
        assert producer["waves"] == pytest.approx(1.2)
        assert producer["utilization"] == pytest.approx(0.6)

    def test_table1_utilization_improves_with_batch(self):
        rows = table1_utilization(batch_sizes=(256, 1024))
        by_batch = {(row["batch"], row["gemm"]): row["utilization"] for row in rows}
        assert by_batch[(1024, "Producer")] >= by_batch[(256, "Producer")]

    def test_table3_kernels_touch_few_lines(self):
        rows = table3_lines_changed()
        assert {row["kernel"] for row in rows} >= {"GeMM", "Conv2D", "Softmax-Dropout"}
        for row in rows:
            assert 0 < row["lines_changed"] <= 10
            assert row["fraction"] < 0.05

    def test_overhead_experiment_small(self):
        result = overhead_experiment(blocks=256)
        assert abs(result["overhead"]) < 0.10
        assert result["streamsync_us"] > 0

    def test_figure7_rows_have_policies(self):
        rows = figure7_conv(model="resnet", channels=(128,), batches=(4,))
        assert len(rows) == 1
        row = rows[0]
        assert "RowSync" in row and "Conv2DTileSync" in row
        assert row["best"] == max(row["RowSync"], row["Conv2DTileSync"])

    def test_table5_conv_optimizations_monotone(self):
        rows = table5_conv_optimizations(channels=(128,), batches=(1,))
        row = rows[0]
        assert row["+WRT"] <= row["Vanilla"] + 1e-6


class TestAutoTuner:
    def test_tuner_reports_best(self):
        tuner = AutoTuner(policies=["TileSync", "RowSync"])
        result = tuner.tune(GptMlp(config=TINY, batch_seq=96))
        assert result.best_policy in ("TileSync", "RowSync")
        assert "StreamSync" in result.times_us
        assert result.best_time_us <= min(
            result.times_us["TileSync"], result.times_us["RowSync"]
        ) + 1e-9
        assert "auto-tuning" in result.summary()


class TestEndToEndEstimates:
    def test_transformer_layer_estimate(self):
        layer = TransformerLayer(config=TINY, batch=1, seq=64)
        estimate = layer.estimate(policies=["TileSync"], attention_policies=["TileSync"])
        assert estimate.streamsync_us > 0
        assert estimate.cusync_us > 0
        assert estimate.common_us > 0
        assert -0.2 < estimate.improvement < 0.5

    def test_vision_model_estimate_positive(self):
        model = VisionModel(config=resnet38_config(), batch=1)
        estimate = model.estimate(policies=["Conv2DTileSync"])
        assert estimate.improvement > 0.0
        assert len(estimate.per_block_us) == 4


class TestCrossSchemeConsistency:
    """The same workload must produce identical numerics under every scheme."""

    def test_all_policies_agree_numerically(self):
        outputs = {}
        for policy in ("TileSync", "RowSync"):
            workload = GptMlp(config=TINY, batch_seq=96, functional=True)
            outputs[policy] = workload.run_cusync(policy=policy).tensor("XW12")
        workload = GptMlp(config=TINY, batch_seq=96, functional=True)
        outputs["StreamSync"] = workload.run_streamsync().tensor("XW12")
        baseline = outputs.pop("StreamSync")
        for name, value in outputs.items():
            np.testing.assert_allclose(value, baseline, rtol=1e-5, atol=1e-5, err_msg=name)

    def test_attention_policies_agree(self):
        outputs = []
        for policy in ("TileSync", "StridedTileSync"):
            workload = Attention(config=TINY, batch=1, seq=64, functional=True, dropout=0.0)
            outputs.append(workload.run_cusync(policy=policy).tensor("XW12"))
        np.testing.assert_allclose(outputs[0], outputs[1], rtol=1e-5, atol=1e-5)

    def test_under_synchronized_policy_detected_as_race(self):
        """A policy that waits for too few posts must surface as a data race.

        ``LeakyRowSync`` shares one semaphore per row (like RowSync) but only
        requires a single post before consumers proceed, so a consumer can
        read row tiles the producer has not yet written.
        """
        from repro.cusync.policies import RowSync

        class LeakyRowSync(RowSync):
            name = "LeakyRowSync"

            def expected_value(self, tile, grid):
                return 1

        from repro.kernels.gemm import GemmConfig

        # Small tiles so each output row of the producer spans several tiles.
        configs = (GemmConfig(32, 32, 32), GemmConfig(32, 32, 32))
        workload = GptMlp(config=TINY, batch_seq=96, functional=True, gemm_configs=configs)
        with pytest.raises(DataRaceError):
            workload.run_cusync(policy=[LeakyRowSync(), LeakyRowSync()])

    def test_improvements_deterministic_across_runs(self):
        first = ConvChain(RESNET38_LAYERS[0], batch=1).improvement_over_streamsync("RowSync")
        second = ConvChain(RESNET38_LAYERS[0], batch=1).improvement_over_streamsync("RowSync")
        assert first == pytest.approx(second, abs=1e-12)
