"""Differential harness: one reusable fixture for sweep-mode parity.

The execution layer guarantees that any ``(workload, arch, scheme,
policy)`` point produces **bit-identical** results no matter which
``Session.sweep`` mode evaluates it — ``serial``, ``thread`` or
``process``.  PR 2 and PR 3 each grew their own ad-hoc parity tests; this
module turns them into one parameterized harness that any test (and any
future PR) can feed an arbitrary work list:

* :func:`small_workloads` — the five model workloads at small shapes
  (tiny transformer configs, the smallest conv stage), cheap enough to
  sweep across several architectures in a test;
* :func:`differential_work` — the ``(graph, arch, scheme, policy)`` cube
  as a ``Session.sweep`` work list, built via
  :func:`repro.pipeline.sweep_archs`;
* :func:`assert_modes_identical` — runs a work list through all three
  modes on fresh sessions and asserts exact equality.  Graphs that carry
  closure range maps (attention, LLaMA) cannot cross process boundaries,
  so the process mode runs on the picklable subset of the work and is
  compared positionally;
* :func:`capture_trace` / :func:`assert_traces_equivalent` — full
  block-level trace capture for equivalence arguments that go beyond the
  sweep summary (e.g. the slot-0 post-elision defence).
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.models import Attention, ConvChain, GptMlp, LlamaMlp, TransformerConfig
from repro.models.config import RESNET38_LAYERS, VGG19_LAYERS
from repro.models.workload import Workload
from repro.pipeline import PipelineGraph, Session, SweepPoint, SweepResult, run, sweep_archs

#: Tiny transformer shards: full dependence structure, few thread blocks.
TINY_GPT = TransformerConfig(name="tiny-gpt", hidden=256, layers=2, tensor_parallel=8)
TINY_LLAMA = TransformerConfig(
    name="tiny-llama", hidden=384, layers=2, tensor_parallel=8, swiglu=True
)

#: Policy families exercised per workload (mirrors the bench experiments).
WORKLOAD_POLICIES: Dict[str, Tuple[str, ...]] = {
    "mlp": ("TileSync", "RowSync"),
    "llama_mlp": ("TileSync", "RowSync", "StridedTileSync"),
    "attention": ("TileSync", "StridedTileSync"),
    "conv_resnet": ("RowSync", "Conv2DTileSync"),
    "conv_vgg": ("RowSync", "Conv2DTileSync"),
}


def small_workloads() -> Dict[str, Workload]:
    """The five model workloads at differential-test shapes."""
    resnet_spec = RESNET38_LAYERS[0]
    vgg_spec = VGG19_LAYERS[0]
    return {
        "mlp": GptMlp(config=TINY_GPT, batch_seq=96),
        "llama_mlp": LlamaMlp(config=TINY_LLAMA, batch_seq=96),
        "attention": Attention(config=TINY_GPT, batch=1, seq=64, cached=0),
        "conv_resnet": ConvChain(resnet_spec, batch=1),
        "conv_vgg": ConvChain(vgg_spec, batch=1),
    }


def differential_work(
    graphs: Iterable[PipelineGraph],
    arches: Sequence = ("V100", "A100"),
    schemes: Sequence[str] = ("streamsync", "cusync"),
    policies: Sequence[str] = ("TileSync",),
) -> List[Tuple[PipelineGraph, SweepPoint]]:
    """The (graph, arch, scheme, policy) cube as a sweep work list."""
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for graph in graphs:
        work.extend(sweep_archs(graph, arches, policies=policies, schemes=schemes))
    return work


def _picklable(graph: PipelineGraph) -> bool:
    try:
        pickle.dumps(graph)
    except Exception:
        return False
    return True


def assert_modes_identical(
    work: Sequence[Tuple[PipelineGraph, SweepPoint]],
    session_arch="V100",
) -> List[SweepResult]:
    """Assert serial == thread == process for ``work``; return the results.

    Every mode runs on a *fresh* session so no mode benefits from another's
    caches.  The process mode is restricted to the picklable graphs of the
    work list (closure-carrying graphs cannot cross process boundaries by
    design); its results are compared against the matching serial subset.
    In sandboxes that forbid worker processes, ``Session.sweep`` already
    probes the pool and falls back to a serial evaluation of the same
    points, so the comparison still holds.
    """
    work = list(work)
    serial = Session(arch=session_arch).sweep(list(work), mode="serial")
    threaded = Session(arch=session_arch).sweep(list(work), mode="thread")
    assert threaded == serial, "thread-mode sweep diverged from serial"

    picklable_graphs = {id(graph) for graph, _ in work if _picklable(graph)}
    process_work = [(g, p) for g, p in work if id(g) in picklable_graphs]
    if process_work:
        process = Session(arch=session_arch).sweep(list(process_work), mode="process")
        serial_subset = [
            result
            for (graph, _), result in zip(work, serial)
            if id(graph) in picklable_graphs
        ]
        # graph_label is positional (graph0, graph1, ...) for unnamed
        # graphs, so compare label-insensitively when the subsets differ.
        if len(process_work) == len(work):
            assert process == serial_subset, "process-mode sweep diverged from serial"
        else:
            stripped = lambda results: [  # noqa: E731
                (r.scheme, r.policy, r.arch_name, r.total_time_us,
                 r.total_wait_time_us, r.kernel_durations_us)
                for r in results
            ]
            assert stripped(process) == stripped(serial_subset), (
                "process-mode sweep diverged from serial on the picklable subset"
            )
    return serial


def run_cube(
    arches: Sequence = ("V100", "A100"),
    workload_names: Optional[Sequence[str]] = None,
) -> List[SweepResult]:
    """Sweep the five small workloads over ``arches`` in all three modes.

    The canonical acceptance check: every workload's per-family policy set
    plus the StreamSync baseline, per architecture, bit-identical across
    serial/thread/process.  Returns the serial results for further shape
    assertions.
    """
    workloads = small_workloads()
    names = list(workload_names) if workload_names is not None else list(workloads)
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for name in names:
        graph = workloads[name].to_graph()
        work.extend(
            differential_work(
                [graph],
                arches=arches,
                schemes=("streamsync", "cusync"),
                policies=WORKLOAD_POLICIES[name],
            )
        )
    return assert_modes_identical(work)


# ----------------------------------------------------------------------
# Full-trace equivalence (beyond the sweep summary)
# ----------------------------------------------------------------------
def capture_trace(graph: PipelineGraph, point: SweepPoint) -> Dict[str, object]:
    """Serialize the full block-level trace of one point (one run)."""
    result = run(
        graph,
        scheme=point.scheme,
        policy=point.policy if point.policy is not None else "TileSync",
        arch=point.resolved_arch(),
    )
    simulation = result.simulation
    trace = simulation.trace
    return {
        "total_time_us": simulation.total_time_us,
        "host_issue_time_us": simulation.host_issue_time_us,
        "kernels": {
            name: {
                "duration_us": stats.duration_us,
                "start_time_us": stats.start_time_us,
                "end_time_us": stats.end_time_us,
                "total_wait_time_us": stats.total_wait_time_us,
                "num_blocks": stats.num_blocks,
            }
            for name, stats in sorted(trace.kernels.items())
        },
        "blocks": [
            (
                record.kernel,
                (record.tile.x, record.tile.y, record.tile.z),
                record.dispatch_index,
                record.sm_id,
                record.dispatch_time_us,
                record.end_time_us,
                record.wait_time_us,
                record.work_time_us,
            )
            for record in trace.blocks
        ],
    }


def assert_traces_equivalent(actual: Dict[str, object], expected: Dict[str, object]) -> None:
    """Exact, field-by-field comparison of two captured traces."""
    assert actual["total_time_us"] == expected["total_time_us"]
    assert actual["host_issue_time_us"] == expected["host_issue_time_us"]
    assert sorted(actual["kernels"]) == sorted(expected["kernels"])
    for kernel_name, stats in expected["kernels"].items():
        assert actual["kernels"][kernel_name] == stats, f"kernel {kernel_name} diverged"
    assert len(actual["blocks"]) == len(expected["blocks"])
    for position, (got, want) in enumerate(zip(actual["blocks"], expected["blocks"])):
        assert got == want, (
            f"block record #{position} diverged\n  expected: {want}\n  actual:   {got}"
        )
