"""Tests for Dim3 and ceil_div."""

import pytest

from repro.common.dim3 import Dim3, ceil_div


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_one_denominator(self):
        assert ceil_div(9, 1) == 9

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestDim3:
    def test_defaults_to_ones(self):
        assert Dim3().as_tuple() == (1, 1, 1)

    def test_volume(self):
        assert Dim3(3, 2, 4).volume == 24

    def test_iteration_and_indexing(self):
        dim = Dim3(5, 6, 7)
        assert list(dim) == [5, 6, 7]
        assert dim[0] == 5 and dim[2] == 7
        assert len(dim) == 3

    def test_of_accepts_int(self):
        assert Dim3.of(4) == Dim3(4, 1, 1)

    def test_of_accepts_sequence(self):
        assert Dim3.of((2, 3)) == Dim3(2, 3, 1)

    def test_of_passes_through_dim3(self):
        dim = Dim3(1, 2, 3)
        assert Dim3.of(dim) is dim

    def test_of_rejects_too_many_components(self):
        with pytest.raises(ValueError):
            Dim3.of((1, 2, 3, 4))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Dim3(-1, 2, 3)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Dim3(1.5, 2, 3)

    def test_ceil_div(self):
        assert Dim3(12, 8, 1).ceil_div(Dim3(4, 4, 1)) == Dim3(3, 2, 1)

    def test_scaled(self):
        assert Dim3(3, 2, 1).scaled(Dim3(4, 4, 1)) == Dim3(12, 8, 1)

    def test_contains(self):
        grid = Dim3(3, 2, 1)
        assert grid.contains(Dim3(2, 1, 0))
        assert not grid.contains(Dim3(3, 0, 0))
        assert not grid.contains(Dim3(0, 2, 0))

    def test_hashable_and_ordered(self):
        tiles = {Dim3(0, 0, 0), Dim3(1, 0, 0), Dim3(0, 0, 0)}
        assert len(tiles) == 2
        assert Dim3(0, 1, 0) < Dim3(1, 0, 0)

    def test_str(self):
        assert str(Dim3(1, 48, 4)) == "[1, 48, 4]"
