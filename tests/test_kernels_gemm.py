"""Tests for the tiled GeMM kernel."""

import numpy as np
import pytest

from repro.common.dim3 import Dim3
from repro.gpu.arch import TESLA_V100
from repro.gpu.memory import GlobalMemory
from repro.kernels.base import NoSync
from repro.kernels.epilogue import GeLU, Identity, ReLU, SwiGLUMultiply
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem, choose_gemm_config


class TestGemmProblem:
    def test_flops(self):
        assert GemmProblem(m=2, n=3, k=4).flops == pytest.approx(48.0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            GemmProblem(m=0, n=1, k=1)


class TestGemmConfigAndGrid:
    def test_grid_shape(self):
        problem = GemmProblem(m=512, n=6144, k=12288)
        config = GemmConfig(tile_m=256, tile_n=256, tile_k=32, split_k=2)
        kernel = GemmKernel("g", problem, config)
        assert kernel.grid == Dim3(24, 2, 2)

    def test_grid_rounds_up(self):
        problem = GemmProblem(m=100, n=300, k=64)
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=64, tile_n=128, tile_k=32))
        assert kernel.grid == Dim3(3, 2, 1)

    def test_occupancy_depends_on_tile_size(self):
        # The Table I occupancies: 256x128 tiles fit two blocks per SM,
        # 256x256 tiles only one.
        problem = GemmProblem(m=256, n=6144, k=12288)
        narrow = GemmKernel("a", problem, GemmConfig(tile_m=256, tile_n=128, tile_k=32))
        wide = GemmKernel("b", problem, GemmConfig(tile_m=256, tile_n=256, tile_k=32))
        assert narrow.occupancy() == 2
        assert wide.occupancy() == 1

    def test_choose_config_small_batch_uses_split_k(self):
        problem = GemmProblem(m=64, n=6144, k=12288)
        config = choose_gemm_config(problem, TESLA_V100)
        assert config.split_k > 1

    def test_choose_config_large_batch_avoids_split_k(self):
        problem = GemmProblem(m=2048, n=6144, k=12288)
        config = choose_gemm_config(problem, TESLA_V100)
        assert config.split_k == 1

    def test_stage_geometry(self):
        problem = GemmProblem(m=512, n=512, k=512, batch=2, c="OUT")
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=256, tile_n=256, tile_k=32, split_k=2))
        geometry = kernel.stage_geometry()
        assert geometry.tile_rows == 256
        assert geometry.split_k == 2
        assert geometry.batch == 2
        assert geometry.output == "OUT"
        assert geometry.logical_grid == Dim3(2, 2, 2)


class TestBlockPrograms:
    def test_program_covers_full_k(self):
        problem = GemmProblem(m=128, n=128, k=256)
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=128, tile_n=128, tile_k=32))
        program = kernel.build_block_program(Dim3(0, 0, 0))
        assert program.total_duration_us > 0.0
        # Without synchronization the main loop is a single chunk + epilogue.
        assert len(program.segments) == 2

    def test_epilogue_posts_only_with_sync(self):
        problem = GemmProblem(m=64, n=64, k=64)
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=64, tile_n=64, tile_k=32), sync=NoSync())
        program = kernel.build_block_program(Dim3(0, 0, 0))
        assert program.post_count == 0

    def test_split_k_partitions_k_range(self):
        problem = GemmProblem(m=64, n=64, k=256)
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=64, tile_n=64, tile_k=32, split_k=2))
        first = kernel.build_block_program(Dim3(0, 0, 0))
        second = kernel.build_block_program(Dim3(0, 0, 1))
        assert first.segments[0].label == "k[0:128]"
        assert second.segments[0].label == "k[128:256]"

    def test_functional_split_k_with_epilogue_rejected(self):
        problem = GemmProblem(m=64, n=64, k=256)
        with pytest.raises(Exception):
            GemmKernel(
                "g",
                problem,
                GemmConfig(tile_m=64, tile_n=64, tile_k=32, split_k=2),
                epilogue=GeLU(),
                functional=True,
            )


class TestFunctionalGemm:
    def _run_functional(self, kernel, tensors):
        memory = GlobalMemory()
        for name, value in tensors.items():
            memory.store_tensor(name, value)
        kernel.allocate_functional_tensors(memory)
        for z in range(kernel.grid.z):
            for y in range(kernel.grid.y):
                for x in range(kernel.grid.x):
                    program = kernel.build_block_program(Dim3(x, y, z))
                    for segment in program.segments:
                        if segment.compute is not None:
                            segment.compute(memory)
        return memory

    def test_matches_numpy(self, rng):
        problem = GemmProblem(m=96, n=80, k=64)
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=32, tile_n=32, tile_k=32), functional=True)
        tensors = {
            "A": rng.standard_normal((96, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 80)).astype(np.float32),
        }
        memory = self._run_functional(kernel, tensors)
        np.testing.assert_allclose(memory.tensor("C"), tensors["A"] @ tensors["B"], rtol=1e-4, atol=1e-4)

    def test_gelu_epilogue(self, rng):
        problem = GemmProblem(m=64, n=64, k=32)
        kernel = GemmKernel(
            "g", problem, GemmConfig(tile_m=32, tile_n=32, tile_k=32), epilogue=GeLU(), functional=True
        )
        tensors = {
            "A": rng.standard_normal((64, 32)).astype(np.float32),
            "B": rng.standard_normal((32, 64)).astype(np.float32),
        }
        memory = self._run_functional(kernel, tensors)
        np.testing.assert_allclose(
            memory.tensor("C"), kernel.reference_result(memory), rtol=1e-4, atol=1e-4
        )

    def test_batched(self, rng):
        problem = GemmProblem(m=32, n=32, k=32, batch=3)
        kernel = GemmKernel("g", problem, GemmConfig(tile_m=32, tile_n=32, tile_k=32), functional=True)
        tensors = {
            "A": rng.standard_normal((3, 32, 32)).astype(np.float32),
            "B": rng.standard_normal((3, 32, 32)).astype(np.float32),
        }
        memory = self._run_functional(kernel, tensors)
        np.testing.assert_allclose(memory.tensor("C"), tensors["A"] @ tensors["B"], rtol=1e-4, atol=1e-4)


class TestEpilogues:
    def test_identity(self):
        values = np.array([-1.0, 2.0])
        np.testing.assert_array_equal(Identity().apply(values), values)

    def test_relu(self):
        np.testing.assert_array_equal(ReLU().apply(np.array([-1.0, 2.0])), np.array([0.0, 2.0]))

    def test_gelu_close_to_reference(self):
        values = np.linspace(-3, 3, 13)
        result = GeLU().apply(values)
        assert result[0] == pytest.approx(0.0, abs=1e-2)
        assert result[-1] == pytest.approx(3.0, abs=1e-2)

    def test_swiglu_without_memory_falls_back_to_swish(self):
        values = np.array([0.0, 1.0])
        result = SwiGLUMultiply("gate").apply(values)
        assert result[0] == pytest.approx(0.0)
