"""Tests for the session-level sweep-result cache.

The simulator is deterministic and sweep points are timing-only, so a
point's :class:`~repro.pipeline.SweepResult` is a pure function of its
trace key ``(graph, resolved arch, scheme, resolved policy assignment)``.
:class:`~repro.pipeline.Session` caches results under that key; these
tests pin the contract:

* replays are bit-identical to fresh simulations (equality ignores the
  diagnostic ``cached`` flag — every value field matches);
* duplicate points inside one work list simulate once;
* equivalent policy spellings share an entry, different graphs never do;
* ``sweep_cache=False`` (and the per-call ``cache=False``) opt out.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cusync.policies import PolicyAssignment, PolicySpec
from repro.models.config import TransformerConfig
from repro.models.mlp import GptMlp
from repro.pipeline import Session, SweepPoint, sweep_archs

TINY = TransformerConfig(name="tiny-cache", hidden=256, layers=2, tensor_parallel=8)


@pytest.fixture()
def workload():
    return GptMlp(config=TINY, batch_seq=96)


@pytest.fixture()
def graph(workload):
    return workload.to_graph()


class TestReplayIdentity:
    def test_second_sweep_replays_bit_identically(self, graph):
        session = Session()
        work = sweep_archs(graph, ("V100", "A100"), policies=("TileSync", "RowSync"))
        cold = session.sweep(work, mode="serial")
        assert session.sweep_cache_hits == 0
        assert session.sweep_cache_misses == len(work)
        assert all(not result.cached for result in cold)

        warm = session.sweep(work, mode="serial")
        assert session.sweep_cache_hits == len(work)
        assert all(result.cached for result in warm)
        # Equality ignores the cached flag; check the value fields exactly.
        assert warm == cold
        for fresh, replayed in zip(cold, warm):
            assert replayed.total_time_us == fresh.total_time_us
            assert replayed.total_wait_time_us == fresh.total_wait_time_us
            assert replayed.kernel_durations_us == fresh.kernel_durations_us
            assert replayed.arch_name == fresh.arch_name

    def test_duplicates_within_one_work_list_simulate_once(self, graph, workload):
        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        results = session.sweep([(graph, point)] * 4, mode="serial")
        assert session.sweep_cache_misses == 1
        assert session.sweep_cache_hits == 3
        assert [result.cached for result in results] == [False, True, True, True]
        assert results[0] == results[1] == results[2] == results[3]

    def test_equivalent_policy_spellings_share_an_entry(self, graph, workload):
        session = Session(arch=workload.arch)
        spellings = [
            "TileSync",
            PolicySpec("TileSync"),
            PolicyAssignment(default="TileSync"),
        ]
        results = session.sweep(
            [
                (graph, SweepPoint(scheme="cusync", policy=policy, arch=workload.arch))
                for policy in spellings
            ],
            mode="serial",
        )
        assert session.sweep_cache_misses == 1
        assert session.sweep_cache_hits == 2
        # The replay carries the *requested* spelling, not the cached one's.
        assert [result.policy for result in results] == spellings
        assert results[0].total_time_us == results[1].total_time_us == results[2].total_time_us

    def test_cached_flag_excluded_from_equality(self, graph, workload):
        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        first = session.sweep([(graph, point)], mode="serial")[0]
        second = session.sweep([(graph, point)], mode="serial")[0]
        assert second.cached and not first.cached
        assert second == first
        assert replace(second, cached=False) == first


class TestCacheKeying:
    def test_rebuilt_equal_graphs_share_entries(self, workload):
        """Structurally equal graphs share one entry: the cache keys on the
        graph's structural fingerprint, so a rebuilt (distinct-object)
        graph replays the first build's result bit-identically."""
        session = Session(arch=workload.arch)
        graph_a = workload.to_graph()
        graph_b = workload.to_graph()
        assert graph_a.structural_fingerprint() == graph_b.structural_fingerprint()
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        first = session.sweep([(graph_a, point)], mode="serial")[0]
        second = session.sweep([(graph_b, point)], mode="serial")[0]
        assert session.sweep_cache_misses == 1
        assert session.sweep_cache_hits == 1
        assert second.cached and not first.cached
        assert second == first

    def test_structurally_different_graphs_never_share_entries(self, workload):
        """A different problem shape is a different fingerprint — no replay."""
        other_workload = GptMlp(
            config=TransformerConfig(
                name="tiny-cache-b", hidden=512, layers=2, tensor_parallel=8
            ),
            batch_seq=96,
        )
        session = Session(arch=workload.arch)
        graph_a = workload.to_graph()
        graph_b = other_workload.to_graph()
        assert graph_a.structural_fingerprint() != graph_b.structural_fingerprint()
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        session.sweep([(graph_a, point)], mode="serial")
        session.sweep([(graph_b, point)], mode="serial")
        assert session.sweep_cache_hits == 0
        assert session.sweep_cache_misses == 2

    def test_scheme_and_arch_are_part_of_the_key(self, graph, workload):
        session = Session(arch=workload.arch)
        work = [
            (graph, SweepPoint(scheme="cusync", policy="TileSync", arch="V100")),
            (graph, SweepPoint(scheme="streamsync", policy=None, arch="V100")),
            (graph, SweepPoint(scheme="cusync", policy="TileSync", arch="A100")),
        ]
        session.sweep(work, mode="serial")
        assert session.sweep_cache_misses == 3
        assert session.sweep_cache_hits == 0

    def test_arch_name_and_spec_share_an_entry(self, graph, workload):
        from repro.gpu.arch import ArchSpec

        session = Session(arch=workload.arch)
        work = [
            (graph, SweepPoint(scheme="cusync", policy="TileSync", arch="V100")),
            (graph, SweepPoint(scheme="cusync", policy="TileSync", arch=ArchSpec.coerce("V100"))),
        ]
        results = session.sweep(work, mode="serial")
        assert session.sweep_cache_misses == 1
        assert session.sweep_cache_hits == 1
        assert results[0] == results[1]


class TestOptOut:
    def test_session_opt_out_disables_reuse(self, graph, workload):
        session = Session(arch=workload.arch, sweep_cache=False)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        first = session.sweep([(graph, point)] * 2, mode="serial")
        second = session.sweep([(graph, point)], mode="serial")
        assert session.sweep_cache_hits == 0
        assert session.sweep_cache_misses == 0
        assert session.sweep_cache_size == 0
        assert not any(result.cached for result in first + second)
        # Determinism still makes the values identical — just re-simulated.
        assert first[0] == first[1] == second[0]

    def test_per_call_opt_out_and_opt_in(self, graph, workload):
        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        session.sweep([(graph, point)], mode="serial", cache=False)
        assert session.sweep_cache_size == 0
        session.sweep([(graph, point)], mode="serial")
        assert session.sweep_cache_size == 1

        disabled = Session(arch=workload.arch, sweep_cache=False)
        disabled.sweep([(graph, point)], mode="serial", cache=True)
        assert disabled.sweep_cache_size == 1

    def test_fingerprinted_entries_survive_graph_death(self, workload):
        """Structurally keyed entries outlive their graph object: an equal
        graph rebuilt later replays them, so transient rebuilds of one
        workload cost exactly one simulation."""
        import gc

        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        for _ in range(3):
            transient = workload.to_graph()
            session.sweep([(transient, point)], mode="serial")
            del transient
            gc.collect()
        assert session.sweep_cache_size == 1
        assert session.sweep_cache_misses == 1
        assert session.sweep_cache_hits == 2

    def test_dead_unfingerprintable_graph_entries_are_evicted(self, workload):
        """Graphs without a structural fingerprint (closure range maps) key
        by per-process token; their entries can never be hit again once
        the graph dies and must not accumulate in long-lived sessions."""
        import gc

        from repro.pipeline import Edge, PipelineGraph

        def closure_graph():
            base = workload.to_graph()
            shift = 0  # captured: the range map below is a true closure
            edges = [
                Edge(
                    edge.producer,
                    edge.consumer,
                    edge.tensor,
                    range_map=lambda rows, cols, batch: (rows, cols, batch + shift),
                )
                for edge in base.edges
            ]
            graph = PipelineGraph(stages=base.stages, edges=edges)
            assert graph.structural_fingerprint() is None
            return graph

        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        for _ in range(3):
            transient = closure_graph()
            session.sweep([(transient, point)], mode="serial")
            del transient
            gc.collect()
        assert session.sweep_cache_size == 0
        assert session.sweep_cache_misses == 3
        # A token-keyed graph that stays alive keeps its entry.
        kept = closure_graph()
        session.sweep([(kept, point)], mode="serial")
        gc.collect()
        assert session.sweep_cache_size == 1

    def test_clear_sweep_cache(self, graph, workload):
        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        session.sweep([(graph, point)], mode="serial")
        assert session.sweep_cache_size == 1
        session.clear_sweep_cache()
        assert session.sweep_cache_size == 0
        session.sweep([(graph, point)], mode="serial")
        assert session.sweep_cache_misses == 2


class TestModesAndRegistry:
    def test_thread_mode_dedups_and_replays(self, graph, workload):
        session = Session(arch=workload.arch)
        work = sweep_archs(graph, ("V100", "A100"), policies=("TileSync",))
        cold = session.sweep(work, mode="thread")
        warm = session.sweep(work, mode="thread")
        assert warm == cold
        assert all(result.cached for result in warm)

    def test_registry_change_flushes_the_cache(self, graph, workload):
        from repro.gpu.arch import TESLA_V100, register_arch, unregister_arch

        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        session.sweep([(graph, point)], mode="serial")
        assert session.sweep_cache_size == 1
        register_arch("cache-flush-probe", TESLA_V100)
        try:
            session.sweep([(graph, point)], mode="serial")
            # The registry generation changed, so the first sweep's entry
            # was flushed and the point re-simulated.
            assert session.sweep_cache_misses == 2
        finally:
            unregister_arch("cache-flush-probe")

    def test_policy_registry_change_flushes_the_cache(self, graph, workload):
        """A re-registered family changes what a cached policy key *means*:
        the stale result must not be replayed."""
        from repro.cusync.policies import (
            RowSync,
            TileSync,
            register_policy,
            unregister_policy,
        )

        session = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="FlushProbeSync", arch="V100")
        register_policy("FlushProbeSync", lambda params, ctx: TileSync())
        try:
            session.sweep([(graph, point)], mode="serial")
            assert session.sweep_cache_size == 1
            unregister_policy("FlushProbeSync")
            register_policy("FlushProbeSync", lambda params, ctx: RowSync())
            row_like = session.sweep([(graph, point)], mode="serial")[0]
            # The registry mutation flushed the cache: the point was
            # re-simulated (a stale replay would report cached=True and
            # keep the TileSync-resolved result).
            assert session.sweep_cache_misses == 2
            assert not row_like.cached
            # The family now resolves to RowSync; the fresh simulation must
            # agree with an explicit RowSync point.
            reference = session.sweep(
                [(graph, SweepPoint(scheme="cusync", policy="RowSync", arch="V100"))],
                mode="serial",
            )[0]
            assert row_like.total_time_us == reference.total_time_us
            assert row_like.kernel_durations_us == reference.kernel_durations_us
        finally:
            unregister_policy("FlushProbeSync")
