"""Tests for kernel/program datatypes, streams and trace statistics."""

import math

import pytest

from repro.common.dim3 import Dim3
from repro.gpu.arch import TESLA_V100
from repro.gpu.kernel import KernelLaunch, Segment, SemPost, SemWait, ThreadBlockProgram, simple_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.stream import Stream, StreamManager
from repro.gpu.trace import BlockRecord, ExecutionTrace, KernelStats, analytic_utilization, wave_count


class TestSegmentsAndPrograms:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Segment(duration_us=-1.0)

    def test_program_totals(self):
        program = ThreadBlockProgram(
            tile=Dim3(0, 0, 0),
            segments=[
                Segment(duration_us=2.0, waits=[SemWait("s", 0, 1)]),
                Segment(duration_us=3.0, posts=[SemPost("s", 1)]),
            ],
        )
        assert program.total_duration_us == pytest.approx(5.0)
        assert program.wait_count == 1
        assert program.post_count == 1

    def test_sem_wait_satisfied(self):
        memory = GlobalMemory()
        memory.alloc_semaphores("s", 1)
        wait = SemWait("s", 0, 2)
        assert not wait.satisfied(memory)
        memory.atomic_add("s", 0, 2)
        assert wait.satisfied(memory)

    def test_sem_post_applies(self):
        memory = GlobalMemory()
        memory.alloc_semaphores("s", 1)
        assert SemPost("s", 0, increment=3).apply(memory) == 3


class TestKernelLaunch:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            KernelLaunch("k", Dim3(0, 1, 1), lambda tile: ThreadBlockProgram(tile=tile))

    def test_rejects_bad_occupancy(self):
        with pytest.raises(ValueError):
            simple_kernel("k", Dim3(1, 1, 1), 1.0, occupancy=0)

    def test_default_tile_order_is_row_major(self):
        kernel = simple_kernel("k", Dim3(3, 2, 1), 1.0)
        assert kernel.tile_for_dispatch(0) == Dim3(0, 0, 0)
        assert kernel.tile_for_dispatch(4) == Dim3(1, 1, 0)

    def test_build_program_type_checked(self):
        kernel = KernelLaunch("k", Dim3(1, 1, 1), lambda tile: "not a program")
        with pytest.raises(TypeError):
            kernel.build_program(Dim3(0, 0, 0))

    def test_num_blocks(self):
        assert simple_kernel("k", Dim3(3, 2, 2), 1.0).num_blocks == 12


class TestStreams:
    def test_streams_have_unique_ids(self):
        assert Stream().stream_id != Stream().stream_id

    def test_manager_records_launch_order(self):
        manager = StreamManager()
        stream = manager.create(priority=1, name="s")
        manager.record_launch(stream, "a")
        manager.record_launch(stream, "b")
        assert manager.kernels_on(stream) == ["a", "b"]
        assert len(manager) == 1


class TestTraceStatistics:
    def test_wave_count_matches_paper_table1(self):
        # Table I: 192 blocks at occupancy 2 on 80 SMs -> 1.2 waves, 60%.
        assert wave_count(192, 2, TESLA_V100) == pytest.approx(1.2)
        assert analytic_utilization(192, 2, TESLA_V100) == pytest.approx(0.6)

    def test_utilization_full_wave(self):
        assert analytic_utilization(160, 2, TESLA_V100) == pytest.approx(1.0)

    def test_utilization_zero_blocks(self):
        assert analytic_utilization(0, 1, TESLA_V100) == 0.0

    def test_trace_accumulates_block_records(self):
        trace = ExecutionTrace(arch=TESLA_V100)
        trace.kernels["k"] = KernelStats(
            name="k", launch_index=0, grid=Dim3(1, 1, 1), occupancy=1, num_blocks=2, issue_time_us=0.0
        )
        trace.add_block(
            BlockRecord(
                kernel="k", launch_index=0, tile=Dim3(0, 0, 0), dispatch_index=0, sm_id=0,
                dispatch_time_us=0.0, end_time_us=5.0, wait_time_us=1.0, work_time_us=4.0,
            )
        )
        trace.add_block(
            BlockRecord(
                kernel="k", launch_index=0, tile=Dim3(0, 0, 0), dispatch_index=1, sm_id=1,
                dispatch_time_us=2.0, end_time_us=9.0, wait_time_us=0.0, work_time_us=7.0,
            )
        )
        trace.total_time_us = 9.0
        stats = trace.kernels["k"]
        assert stats.duration_us == pytest.approx(9.0)
        assert stats.total_wait_time_us == pytest.approx(1.0)
        assert trace.total_wait_time_us() == pytest.approx(1.0)
        assert 0.0 < trace.measured_sm_busy_fraction() <= 1.0
        assert "k" in trace.summary()
