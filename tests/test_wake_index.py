"""Differential stress tests for the threshold-indexed wake path.

The simulator's default wake strategy indexes blocked waiters in per-key
min-heaps of value thresholds (O(log n) per post); the pre-existing
brute-force behaviour — re-evaluating every registered waiter's full wait
set on each post — survives as ``wake_strategy="rescan"``.  Both must be
*bit-identical*: every block lands on the same SM at the same time, waits
for the same duration, and the trace rows come out in the same order.

The Hypothesis test drives randomized post/wait interleavings (random
grids, occupancies, stream priorities, posts with increments > 1, waits
with multi-key and duplicate-key conditions, unsatisfiable waits that
deadlock) through both strategies and asserts identical outcomes — the
traces when the pipeline completes, the deadlocked block set when it does
not.  The targeted tests pin the corner cases the index must get right.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.dim3 import Dim3
from repro.errors import DeadlockError
from repro.gpu.kernel import SemPost, SemWait, simple_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator
from repro.gpu.stream import Stream

ARRAY = "stress_sems"
ARRAY_B = "stress_sems_b"


def _run(
    strategy: str,
    kernel_specs: List[dict],
    array_sizes: Dict[str, int],
) -> Tuple[Optional[dict], Optional[List[str]]]:
    """Simulate one pipeline; return (trace payload, deadlocked blocks)."""
    memory = GlobalMemory()
    for name, size in array_sizes.items():
        memory.alloc_semaphores(name, size)
    launches = []
    for spec in kernel_specs:
        posts = spec["posts"]
        waits = spec["waits"]
        launches.append(
            simple_kernel(
                name=spec["name"],
                grid=spec["grid"],
                block_duration_us=spec["duration"],
                occupancy=spec["occupancy"],
                stream=spec["stream"],
                posts_per_block=(lambda tile, p=posts: p.get((tile.x, tile.y, tile.z), []))
                if posts
                else None,
                waits_per_block=(lambda tile, w=waits: w.get((tile.x, tile.y, tile.z), []))
                if waits
                else None,
            )
        )
    simulator = GpuSimulator(memory=memory, wake_strategy=strategy)
    try:
        result = simulator.run(launches)
    except DeadlockError as error:
        return None, list(error.waiting_blocks)
    trace = result.trace
    payload = {
        "total_time_us": result.total_time_us,
        "blocks": [
            (
                record.kernel,
                (record.tile.x, record.tile.y, record.tile.z),
                record.dispatch_index,
                record.sm_id,
                record.dispatch_time_us,
                record.end_time_us,
                record.wait_time_us,
                record.work_time_us,
            )
            for record in trace.blocks
        ],
        "kernels": {
            name: (
                stats.start_time_us,
                stats.end_time_us,
                stats.total_wait_time_us,
                stats.total_work_time_us,
            )
            for name, stats in sorted(trace.kernels.items())
        },
        "semaphores": memory.snapshot_semaphores(),
    }
    return payload, None


def _assert_strategies_agree(kernel_specs: List[dict], array_sizes: Dict[str, int]) -> None:
    threshold = _run("threshold", kernel_specs, array_sizes)
    rescan = _run("rescan", kernel_specs, array_sizes)
    assert threshold == rescan, (
        "threshold-indexed wake diverged from the brute-force rescanner\n"
        f"threshold: {threshold}\nrescan:    {rescan}"
    )


# ----------------------------------------------------------------------
# Hypothesis: randomized post/wait interleavings
# ----------------------------------------------------------------------
@st.composite
def _pipelines(draw):
    size_a = draw(st.integers(min_value=2, max_value=6))
    size_b = draw(st.integers(min_value=2, max_value=4))
    array_sizes = {ARRAY: size_a, ARRAY_B: size_b}

    def tiles_of(grid: Dim3) -> List[Tuple[int, int, int]]:
        return [
            (x, y, z)
            for z in range(grid.z)
            for y in range(grid.y)
            for x in range(grid.x)
        ]

    num_kernels = draw(st.integers(min_value=2, max_value=3))
    specs = []
    for index in range(num_kernels):
        grid = Dim3(
            draw(st.integers(min_value=1, max_value=4)),
            draw(st.integers(min_value=1, max_value=3)),
            1,
        )
        # Producers early in launch order, waiters later; every kernel may
        # both post and wait so chained wakes and multi-key blocking occur.
        posts: Dict[Tuple[int, int, int], List[SemPost]] = {}
        waits: Dict[Tuple[int, int, int], List[SemWait]] = {}
        for tile in tiles_of(grid):
            tile_posts = draw(
                st.lists(
                    st.tuples(
                        st.sampled_from([ARRAY, ARRAY_B]),
                        st.integers(min_value=0, max_value=size_a - 1),
                        st.integers(min_value=1, max_value=3),
                    ),
                    max_size=2,
                )
            )
            posts[tile] = [
                SemPost(array, min(sem, array_sizes[array] - 1), increment)
                for array, sem, increment in tile_posts
            ]
            if index > 0:
                tile_waits = draw(
                    st.lists(
                        st.tuples(
                            st.sampled_from([ARRAY, ARRAY_B]),
                            st.integers(min_value=0, max_value=size_a - 1),
                            st.integers(min_value=1, max_value=4),
                        ),
                        max_size=3,
                    )
                )
                waits[tile] = [
                    SemWait(array, min(sem, array_sizes[array] - 1), required)
                    for array, sem, required in tile_waits
                ]
        specs.append(
            {
                "name": f"k{index}",
                "grid": grid,
                "duration": draw(st.sampled_from([1.0, 2.0, 3.5])),
                "occupancy": draw(st.integers(min_value=1, max_value=2)),
                "stream": Stream(
                    stream_id=draw(st.integers(min_value=0, max_value=1)),
                    priority=draw(st.integers(min_value=0, max_value=1)),
                    name=f"s{index}",
                ),
                "posts": posts,
                "waits": waits,
            }
        )
    return specs, array_sizes


class TestRandomizedInterleavings:
    @settings(max_examples=60, deadline=None)
    @given(_pipelines())
    def test_threshold_index_matches_rescan(self, pipeline):
        kernel_specs, array_sizes = pipeline
        _assert_strategies_agree(kernel_specs, array_sizes)


# ----------------------------------------------------------------------
# Targeted corner cases
# ----------------------------------------------------------------------
def _spec(name, grid, duration, occupancy, stream, posts=None, waits=None) -> dict:
    return {
        "name": name,
        "grid": grid,
        "duration": duration,
        "occupancy": occupancy,
        "stream": stream,
        "posts": posts or {},
        "waits": waits or {},
    }


PRODUCER_STREAM = Stream(stream_id=0, priority=0, name="producer")
CONSUMER_STREAM = Stream(stream_id=1, priority=1, name="consumer")


class TestThresholdCornerCases:
    def test_one_post_crosses_several_thresholds(self):
        """An increment > 1 must pop every crossed threshold at once."""
        specs = [
            _spec(
                "producer",
                Dim3(1, 1, 1),
                2.0,
                1,
                PRODUCER_STREAM,
                posts={(0, 0, 0): [SemPost(ARRAY, 0, 3)]},
            ),
            _spec(
                "consumers",
                Dim3(3, 1, 1),
                1.0,
                2,
                CONSUMER_STREAM,
                waits={
                    (0, 0, 0): [SemWait(ARRAY, 0, 1)],
                    (1, 0, 0): [SemWait(ARRAY, 0, 2)],
                    (2, 0, 0): [SemWait(ARRAY, 0, 3)],
                },
            ),
        ]
        _assert_strategies_agree(specs, {ARRAY: 1, ARRAY_B: 1})

    def test_block_waiting_on_two_arrays_resumes_on_last(self):
        """The unsatisfied-wait counter reaches zero only when every key posts."""
        specs = [
            _spec(
                "producer",
                Dim3(2, 1, 1),
                2.0,
                1,
                PRODUCER_STREAM,
                posts={
                    (0, 0, 0): [SemPost(ARRAY, 0, 1)],
                    (1, 0, 0): [SemPost(ARRAY_B, 0, 1)],
                },
            ),
            _spec(
                "consumer",
                Dim3(1, 1, 1),
                1.0,
                1,
                CONSUMER_STREAM,
                waits={(0, 0, 0): [SemWait(ARRAY, 0, 1), SemWait(ARRAY_B, 0, 1)]},
            ),
        ]
        _assert_strategies_agree(specs, {ARRAY: 1, ARRAY_B: 1})

    def test_duplicate_key_waits_use_the_max_threshold(self):
        """Two waits on one key register once, at the larger required value."""
        specs = [
            _spec(
                "producer",
                Dim3(3, 1, 1),
                2.0,
                1,
                PRODUCER_STREAM,
                posts={(x, 0, 0): [SemPost(ARRAY, 0, 1)] for x in range(3)},
            ),
            _spec(
                "consumer",
                Dim3(1, 1, 1),
                1.0,
                1,
                CONSUMER_STREAM,
                waits={(0, 0, 0): [SemWait(ARRAY, 0, 1), SemWait(ARRAY, 0, 3)]},
            ),
        ]
        _assert_strategies_agree(specs, {ARRAY: 1, ARRAY_B: 1})

    def test_registration_order_breaks_same_instant_ties(self):
        """Blocks woken by one post resume in registration order."""
        specs = [
            _spec(
                "producer",
                Dim3(1, 1, 1),
                4.0,
                1,
                PRODUCER_STREAM,
                posts={(0, 0, 0): [SemPost(ARRAY, 0, 1)]},
            ),
            _spec(
                "consumers",
                Dim3(4, 1, 1),
                1.0,
                4,
                CONSUMER_STREAM,
                waits={(x, 0, 0): [SemWait(ARRAY, 0, 1)] for x in range(4)},
            ),
        ]
        _assert_strategies_agree(specs, {ARRAY: 1, ARRAY_B: 1})

    def test_unsatisfiable_wait_deadlocks_identically(self):
        specs = [
            _spec(
                "producer",
                Dim3(1, 1, 1),
                2.0,
                1,
                PRODUCER_STREAM,
                posts={(0, 0, 0): [SemPost(ARRAY, 0, 1)]},
            ),
            _spec(
                "consumer",
                Dim3(2, 1, 1),
                1.0,
                1,
                CONSUMER_STREAM,
                waits={
                    (0, 0, 0): [SemWait(ARRAY, 0, 5)],
                    (1, 0, 0): [SemWait(ARRAY_B, 0, 1)],
                },
            ),
        ]
        threshold = _run("threshold", specs, {ARRAY: 1, ARRAY_B: 1})
        rescan = _run("rescan", specs, {ARRAY: 1, ARRAY_B: 1})
        assert threshold == rescan
        assert threshold[0] is None and threshold[1], "expected a deadlock"

    def test_unknown_strategy_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            GpuSimulator(wake_strategy="psychic")


class TestSmHeapCompaction:
    def test_lazy_sm_heap_stays_bounded(self):
        """Releases push one stale entry each; compaction must cap growth."""
        from repro.gpu import simulator as simulator_module

        memory = GlobalMemory()
        memory.alloc_semaphores(ARRAY, 1)
        launch = simple_kernel(
            name="churn",
            grid=Dim3(60, 40, 1),  # 2400 blocks, many waves of take/release
            block_duration_us=1.0,
            occupancy=2,
            stream=PRODUCER_STREAM,
        )
        sim = GpuSimulator(memory=memory)
        result = sim.run([launch])
        assert len(result.trace.blocks) == 2400
        limit = max(
            simulator_module._SM_HEAP_COMPACT_FACTOR * sim.arch.num_sms,
            simulator_module._SM_HEAP_COMPACT_MIN,
        )
        # The peak may overshoot the limit by at most one coalesced wave of
        # releases (compaction runs on the release path), never monotonically.
        per_wave = sim.arch.num_sms * 2
        assert sim.sm_heap_peak <= limit + per_wave + 1
