"""Tests for the declarative PipelineGraph: validation and policy resolution."""

import pytest

from repro.common.dim3 import Dim3
from repro.errors import GraphValidationError, ModelConfigError
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem
from repro.cusync.policies import RowSync, StridedSync, TileSync
from repro.cusync.tile_orders import GroupedColumnsOrder, RowMajorOrder
from repro.pipeline import Edge, PipelineGraph, StageSpec, linear_graph
from repro.pipeline.executors import resolve_order, resolve_policy
from repro.models.workload import DependencySpec, KernelSpec, make_order, make_policy


def _gemm(name, m=128, n=128, k=128, a="A", b="B", c="C"):
    problem = GemmProblem(m=m, n=n, k=k, a=a, b=b, c=c)
    return GemmKernel(name, problem, config=GemmConfig(tile_m=64, tile_n=64, tile_k=32))


def _pair():
    producer = _gemm("producer", c="MID")
    consumer = _gemm("consumer", a="MID", c="OUT")
    return producer, consumer


class TestGraphValidation:
    def test_valid_two_stage_graph(self):
        producer, consumer = _pair()
        graph = PipelineGraph(
            stages=[StageSpec("producer", producer), StageSpec("consumer", consumer)],
            edges=[Edge("producer", "consumer", tensor="MID")],
        )
        assert graph.stage_names == ("producer", "consumer")
        assert [stage.name for stage in graph.topological_order] == ["producer", "consumer"]
        assert graph.in_edges("consumer")[0].tensor == "MID"
        assert graph.out_edges("producer")[0].consumer == "consumer"

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError, match="at least one stage"):
            PipelineGraph(stages=[])

    def test_duplicate_stage_name_rejected(self):
        producer, consumer = _pair()
        with pytest.raises(GraphValidationError, match="duplicate stage name"):
            PipelineGraph(stages=[StageSpec("same", producer), StageSpec("same", consumer)])

    def test_shared_kernel_object_rejected(self):
        kernel = _gemm("shared")
        with pytest.raises(GraphValidationError, match="share one kernel"):
            PipelineGraph(stages=[StageSpec("a", kernel), StageSpec("b", kernel)])

    def test_dangling_edge_rejected(self):
        producer, consumer = _pair()
        with pytest.raises(GraphValidationError, match="dangling edge"):
            PipelineGraph(
                stages=[StageSpec("producer", producer), StageSpec("consumer", consumer)],
                edges=[Edge("producer", "ghost", tensor="MID")],
            )

    def test_self_edge_rejected(self):
        producer, _ = _pair()
        with pytest.raises(GraphValidationError, match="depend on itself"):
            PipelineGraph(
                stages=[StageSpec("producer", producer)],
                edges=[Edge("producer", "producer", tensor="MID")],
            )

    def test_unknown_tensor_rejected(self):
        producer, consumer = _pair()
        with pytest.raises(GraphValidationError, match="writes 'MID'"):
            PipelineGraph(
                stages=[StageSpec("producer", producer), StageSpec("consumer", consumer)],
                edges=[Edge("producer", "consumer", tensor="NOT_A_TENSOR")],
            )

    def test_range_mapped_alias_tensor_allowed(self):
        producer, consumer = _pair()
        graph = PipelineGraph(
            stages=[StageSpec("producer", producer), StageSpec("consumer", consumer)],
            edges=[
                Edge(
                    "producer",
                    "consumer",
                    tensor="MID_SLICE",
                    range_map=lambda rows, cols, batch: (rows, cols, batch),
                )
            ],
        )
        assert graph.in_edges("consumer")[0].tensor == "MID_SLICE"

    def test_duplicate_consumer_tensor_rejected(self):
        producer, consumer = _pair()
        other = _gemm("other", c="MID")
        with pytest.raises(GraphValidationError, match="two dependencies"):
            PipelineGraph(
                stages=[
                    StageSpec("producer", producer),
                    StageSpec("other", other),
                    StageSpec("consumer", consumer),
                ],
                edges=[
                    Edge("producer", "consumer", tensor="MID"),
                    Edge("other", "consumer", tensor="MID"),
                ],
            )

    def test_cycle_rejected(self):
        first = _gemm("first", a="C2", c="C1")
        second = _gemm("second", a="C1", c="C2")
        with pytest.raises(GraphValidationError, match="cycle"):
            PipelineGraph(
                stages=[StageSpec("first", first), StageSpec("second", second)],
                edges=[
                    Edge("first", "second", tensor="C1"),
                    Edge("second", "first", tensor="C2"),
                ],
            )

    def test_topological_order_reorders_declarations(self):
        producer, consumer = _pair()
        graph = PipelineGraph(
            stages=[StageSpec("consumer", consumer), StageSpec("producer", producer)],
            edges=[Edge("producer", "consumer", tensor="MID")],
        )
        assert graph.stage_names == ("producer", "consumer")
        assert graph.stages[0].name == "consumer"  # declaration order preserved

    def test_unknown_stage_lookup(self):
        producer, _ = _pair()
        graph = PipelineGraph(stages=[StageSpec("producer", producer)])
        with pytest.raises(GraphValidationError, match="no stage named"):
            graph.stage("missing")

    def test_linear_graph_builder(self):
        a = _gemm("a", c="T1")
        b = _gemm("b", a="T1", c="T2")
        c = _gemm("c", a="T2", c="T3")
        graph = linear_graph([a, b, c], tensors=["T1", "T2"])
        assert graph.stage_names == ("a", "b", "c")
        assert len(graph.edges) == 2
        with pytest.raises(GraphValidationError, match="one tensor per edge"):
            linear_graph([a, b], tensors=[])


class TestPolicyResolution:
    def test_family_names(self):
        stage = StageSpec("s", _gemm("s"))
        assert isinstance(resolve_policy("TileSync", stage), TileSync)
        assert isinstance(resolve_policy("rowsync", stage), RowSync)

    def test_unknown_family_raises(self):
        stage = StageSpec("s", _gemm("s"))
        with pytest.raises(ModelConfigError, match="unknown synchronization policy"):
            resolve_policy("MagicSync", stage)
        with pytest.raises(ModelConfigError):
            make_policy("MagicSync", KernelSpec(kernel=_gemm("k")))

    def test_strided_resolves_when_groups_divide_grid(self):
        # n=384 with tile_n=64 -> grid.x = 6, divisible into 3 groups.
        kernel = _gemm("qkv", n=384)
        stage = StageSpec("qkv", kernel, strided_groups=3)
        policy = resolve_policy("StridedTileSync", stage)
        assert isinstance(policy, StridedSync)
        assert policy.stride == 2
        assert isinstance(resolve_order("StridedTileSync", stage), GroupedColumnsOrder)

    def test_strided_falls_back_to_tilesync_on_indivisible_grid(self):
        # n=320 with tile_n=64 -> grid.x = 5, not divisible by 3 groups.
        kernel = _gemm("qkv", n=320)
        stage = StageSpec("qkv", kernel, strided_groups=3)
        assert kernel.stage_geometry().logical_grid.x % 3 != 0
        policy = resolve_policy("StridedTileSync", stage)
        assert isinstance(policy, TileSync)
        assert not isinstance(policy, StridedSync)
        assert isinstance(resolve_order("StridedTileSync", stage), RowMajorOrder)

    def test_strided_falls_back_without_groups(self):
        stage = StageSpec("s", _gemm("s", n=384))
        assert isinstance(resolve_policy("StridedTileSync", stage), TileSync)

    def test_legacy_make_policy_make_order_shims(self):
        spec = KernelSpec(kernel=_gemm("k", n=384), strided_groups=3)
        assert isinstance(make_policy("StridedTileSync", spec), StridedSync)
        assert isinstance(make_order("StridedTileSync", spec), GroupedColumnsOrder)
        assert isinstance(make_order("TileSync", spec), RowMajorOrder)


class TestAutoFlagsPerEdge:
    def test_mixed_sizes_give_per_stage_flags(self, small_arch):
        """A small edge keeps W/T; an edge with a large endpoint loses them."""
        from repro.gpu.costmodel import CostModel
        from repro.pipeline.executors import auto_flags

        cost_model = CostModel(arch=small_arch)
        # 2x2 grid of 64x64 tiles: tiny producer; 32x32 consumer grid: many
        # blocks -> multiple waves on the 8-SM test GPU.
        small = _gemm("small", m=128, n=128, c="MID")
        big = GemmKernel(
            "big",
            GemmProblem(m=2048, n=2048, k=128, a="MID", c="OUT"),
            config=GemmConfig(tile_m=64, tile_n=64, tile_k=32),
        )
        small.cost_model = cost_model
        big.cost_model = cost_model
        graph = PipelineGraph(
            stages=[StageSpec("small", small), StageSpec("big", big)],
            edges=[Edge("small", "big", tensor="MID")],
        )
        flags = auto_flags(graph, small_arch)
        # The edge is not small (the consumer spans many waves), so neither
        # endpoint may skip the custom tile order and the consumer keeps
        # its wait-kernel.
        assert not flags["big"].avoid_wait_kernel
        assert not flags["big"].avoid_custom_tile_order
        assert not flags["small"].avoid_custom_tile_order
        # The producer has no incoming edges: the wait-kernel question is
        # moot and defaults to elided.
        assert flags["small"].avoid_wait_kernel
        assert flags["small"].reorder_loads and flags["big"].reorder_loads

    def test_chain_flags_differ_per_stage(self, small_arch):
        """In a chain small-big-small, only edges touching `big` lose W/T."""
        from repro.gpu.costmodel import CostModel
        from repro.pipeline.executors import auto_flags

        cost_model = CostModel(arch=small_arch)
        first = _gemm("first", m=128, n=128, c="T1")
        middle = GemmKernel(
            "middle",
            GemmProblem(m=2048, n=2048, k=128, a="T1", c="T2"),
            config=GemmConfig(tile_m=64, tile_n=64, tile_k=32),
        )
        last = GemmKernel(
            "last",
            GemmProblem(m=128, n=128, k=2048, a="T2", c="T3"),
            config=GemmConfig(tile_m=64, tile_n=64, tile_k=32),
        )
        for kernel in (first, middle, last):
            kernel.cost_model = cost_model
        graph = PipelineGraph(
            stages=[StageSpec("first", first), StageSpec("middle", middle), StageSpec("last", last)],
            edges=[Edge("first", "middle", tensor="T1"), Edge("middle", "last", tensor="T2")],
        )
        flags = auto_flags(graph, small_arch)
        assert not flags["middle"].avoid_wait_kernel  # edge first->middle is large
        assert not flags["last"].avoid_wait_kernel    # edge middle->last is large
        assert not flags["first"].avoid_custom_tile_order
        # The old aggregate computation would have given every stage the
        # same flags; per-edge flags distinguish the endpoints.
        assert flags["first"].avoid_wait_kernel
