"""Tests for the model workloads: configs, MLPs, Attention and Conv chains."""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.gpu.arch import TESLA_V100
from repro.models import (
    Attention,
    ConvChain,
    GPT3_145B,
    GptMlp,
    LLAMA_65B,
    LlamaMlp,
    RESNET38_LAYERS,
    VGG19_LAYERS,
    TransformerConfig,
    resnet38_config,
    vgg19_config,
)
from repro.models.mlp import gpt3_mlp_gemm_configs
from repro.models.workload import make_policy
from repro.cusync.policies import RowSync, StridedSync, TileSync

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)
TINY_SWIGLU = TransformerConfig(name="tiny-swiglu", hidden=192, layers=2, tensor_parallel=8, swiglu=True)


class TestConfigs:
    def test_gpt3_shapes_match_paper(self):
        assert GPT3_145B.hidden == 12288
        assert GPT3_145B.mlp_intermediate_per_gpu == 6144
        assert GPT3_145B.attention_qkv_per_gpu == 4608
        assert GPT3_145B.attention_head_dim_per_gpu == 1536

    def test_llama_shapes_match_paper(self):
        assert LLAMA_65B.hidden == 8192
        assert LLAMA_65B.swiglu
        assert LLAMA_65B.mlp_intermediate_per_gpu == 8192 // 3

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ModelConfigError):
            TransformerConfig(name="bad", hidden=100, layers=1, tensor_parallel=8)

    def test_table2_layer_counts(self):
        assert sum(spec.layers for spec in RESNET38_LAYERS) == 16
        assert all(spec.convs_per_layer == 2 for spec in RESNET38_LAYERS)
        assert [spec.convs_per_layer for spec in VGG19_LAYERS] == [2, 2, 4, 4]
        assert resnet38_config().total_conv_layers() == 32
        assert vgg19_config().name == "VGG-19"

    def test_table_iv_grid_presets(self):
        # Batch 512 uses 256x256 tiles with split-K 2 / 1 (Table IV).
        first, second = gpt3_mlp_gemm_configs(512)
        assert (first.tile_n, first.split_k) == (256, 2)
        assert (second.tile_n, second.split_k) == (256, 1)
        small_first, _ = gpt3_mlp_gemm_configs(64)
        assert small_first.split_k == 4


class TestPolicySelection:
    def test_named_policies(self):
        workload = GptMlp(config=TINY, batch_seq=64)
        spec = workload.build()[0]
        assert isinstance(make_policy("TileSync", spec), TileSync)
        assert isinstance(make_policy("RowSync", spec), RowSync)

    def test_strided_policy_uses_group_hint(self):
        attention = Attention(config=TINY, batch=1, seq=64)
        qkv_spec = attention.build()[0]
        policy = make_policy("StridedTileSync", qkv_spec)
        assert isinstance(policy, (StridedSync, TileSync))

    def test_unknown_policy_rejected(self):
        workload = GptMlp(config=TINY, batch_seq=64)
        with pytest.raises(ModelConfigError):
            make_policy("MagicSync", workload.build()[0])


class TestGptMlp:
    def test_build_structure(self):
        specs = GptMlp(config=TINY, batch_seq=96).build()
        assert len(specs) == 2
        assert specs[1].dependencies[0].tensor == "XW1"

    def test_grid_matches_table_i_at_batch_256(self):
        specs = GptMlp(batch_seq=256).build()
        producer = specs[0].kernel
        assert producer.grid.volume == 192
        assert producer.occupancy() == 2

    def test_functional_correctness_tilesync(self):
        workload = GptMlp(config=TINY, batch_seq=96, functional=True)
        result = workload.run_cusync(policy="TileSync")
        np.testing.assert_allclose(
            result.tensor("XW12"), workload.reference_output(), rtol=1e-3, atol=1e-3
        )

    def test_functional_correctness_streamsync(self):
        workload = GptMlp(config=TINY, batch_seq=96, functional=True)
        result = workload.run_streamsync()
        np.testing.assert_allclose(
            result.tensor("XW12"), workload.reference_output(), rtol=1e-3, atol=1e-3
        )

    def test_cusync_beats_streamsync_at_512(self):
        workload = GptMlp(batch_seq=512)
        improvement = workload.improvement_over_streamsync(policy="RowSync")
        assert improvement > 0.10

    def test_best_policy_returns_all_candidates(self):
        results = GptMlp(config=TINY, batch_seq=96).best_policy()
        assert set(results) == {"StreamSync", "TileSync", "RowSync"}


class TestLlamaMlp:
    def test_combined_gemm_width(self):
        specs = LlamaMlp(config=TINY_SWIGLU, batch_seq=64).build()
        first = specs[0].kernel
        assert first.problem.n == 2 * (TINY_SWIGLU.hidden // 3)

    def test_functional_correctness(self):
        workload = LlamaMlp(config=TINY_SWIGLU, batch_seq=64, functional=True)
        result = workload.run_cusync(policy="RowSync")
        np.testing.assert_allclose(
            result.tensor("XW12"), workload.reference_output(), rtol=1e-3, atol=1e-3
        )

    def test_timing_improvement_at_1024(self):
        workload = LlamaMlp(batch_seq=1024)
        assert workload.improvement_over_streamsync(policy="TileSync") > 0.05


class TestAttention:
    def test_build_has_five_kernels_and_strided_hint(self):
        specs = Attention(config=TINY, batch=1, seq=64).build()
        assert len(specs) == 5
        assert specs[0].strided_groups == 3
        assert {d.tensor for d in specs[1].dependencies} == {"XQ", "Kall"}

    def test_rows_and_keys(self):
        attention = Attention(config=TINY, batch=2, seq=4, cached=16)
        assert attention.rows == 8
        assert attention.keys == 20

    @pytest.mark.parametrize("policy", ["TileSync", "RowSync", "StridedTileSync"])
    def test_functional_correctness(self, policy):
        workload = Attention(config=TINY, batch=1, seq=64, cached=0, functional=True, dropout=0.0)
        result = workload.run_cusync(policy=policy)
        np.testing.assert_allclose(
            result.tensor("XW12"), workload.reference_output(), rtol=1e-2, atol=1e-2
        )

    def test_streamsync_functional(self):
        workload = Attention(config=TINY, batch=1, seq=64, cached=0, functional=True, dropout=0.0)
        result = workload.run_streamsync()
        np.testing.assert_allclose(
            result.tensor("XW12"), workload.reference_output(), rtol=1e-2, atol=1e-2
        )

    def test_kv_cache_changes_key_count(self):
        specs = Attention(config=TINY, batch=1, seq=1, cached=32).build()
        score_kernel = specs[1].kernel
        assert score_kernel.problem.n == 33


class TestConvChain:
    def test_build_chain_dependencies(self):
        chain = ConvChain(RESNET38_LAYERS[1], batch=1)
        specs = chain.build()
        assert len(specs) == 2
        assert specs[1].dependencies[0].tensor == "act1"

    def test_vgg_four_conv_chain(self):
        spec = VGG19_LAYERS[2]
        chain = ConvChain(spec, batch=1)
        assert len(chain.build()) == 4

    def test_functional_correctness(self):
        from repro.models.config import ConvLayerSpec

        spec = ConvLayerSpec(image=8, channels=16, kernel=3, convs_per_layer=2, layers=1)
        chain = ConvChain(spec, batch=1, functional=True)
        result = chain.run_cusync(policy="Conv2DTileSync")
        np.testing.assert_allclose(
            result.tensor("act2"), chain.reference_output(), rtol=1e-2, atol=1e-2
        )

    def test_cusync_improves_conv_layer(self):
        chain = ConvChain(RESNET38_LAYERS[1], batch=4)
        assert chain.improvement_over_streamsync(policy="Conv2DTileSync") > 0.05
