"""Tests for the asyncio sweep service: coalescing, tiers, streaming.

The acceptance bar pinned here: N concurrent clients submitting
overlapping grids trigger exactly one simulation per novel point,
asserted on the worker's and store's own call counters.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import SimulationError
from repro.models.config import TransformerConfig
from repro.models.mlp import GptMlp
from repro.pipeline import Session, SweepPoint, sweep_archs
from repro.service import SweepResultStore, SweepService
from repro.service.fakes import FakeResultStore, FakeWorker

TINY = TransformerConfig(name="tiny-service", hidden=256, layers=2, tensor_parallel=8)


@pytest.fixture()
def workload():
    return GptMlp(config=TINY, batch_seq=96)


@pytest.fixture()
def graph(workload):
    return workload.to_graph()


def _grid(graph):
    return sweep_archs(graph, ("V100", "A100"), policies=("TileSync", "RowSync"))


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_clients_simulate_each_novel_point_once(self, graph):
        """The acceptance property: overlapping grids from concurrent
        clients coalesce onto one evaluation per novel point."""
        work = _grid(graph)
        worker = FakeWorker(delay_s=0.02)
        store = FakeResultStore()

        async def scenario():
            with SweepService(store=store, worker=worker) as service:
                jobs = await asyncio.gather(
                    *[service.submit(list(work)) for _ in range(5)]
                )
                batches = await asyncio.gather(*[job.results() for job in jobs])
                return service, batches

        service, batches = run(scenario())
        assert worker.calls == len(work)
        assert store.writes == len(work)
        assert service.points_simulated == len(work)
        assert service.points_coalesced == 4 * len(work)
        assert service.points_submitted == 5 * len(work)
        for batch in batches[1:]:
            assert batch == batches[0]

    def test_duplicates_within_one_submission_coalesce(self, graph, workload):
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        worker = FakeWorker(delay_s=0.02)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=worker) as service:
                outcomes = await (await service.submit([(graph, point)] * 4)).outcomes()
                return service, outcomes

        service, outcomes = run(scenario())
        assert worker.calls == 1
        assert sorted(o.source for o in outcomes) == [
            "coalesced",
            "coalesced",
            "coalesced",
            "simulated",
        ]
        assert len({o.result.total_time_us for o in outcomes}) == 1

    def test_coalesced_failures_share_fate_but_next_submission_retries(
        self, graph, workload
    ):
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        worker = FakeWorker(delay_s=0.02, fail=lambda g, p: worker.calls == 1)
        store = FakeResultStore()

        async def scenario():
            with SweepService(
                session=Session(arch=workload.arch), store=store, worker=worker
            ) as service:
                first = await (await service.submit([(graph, point)] * 3)).results()
                second = await (await service.submit([(graph, point)])).results()
                return service, first, second

        service, first, second = run(scenario())
        # One evaluation failed; all three submissions of the point saw it.
        assert worker.calls == 2
        assert [r.ok for r in first] == [False, False, False]
        assert service.failures == 1
        # Failures are never persisted or cached: the retry simulated fresh
        # and succeeded, and only the success was written to the store.
        assert second[0].ok
        assert store.writes == 1

    def test_uncacheable_points_never_coalesce(self, graph):
        # A policy that cannot coerce to a PolicyAssignment has no trace
        # key; every submission evaluates independently.
        point = SweepPoint(scheme="cusync", policy=1234, arch="V100")
        worker = FakeWorker()

        async def scenario():
            with SweepService(worker=worker) as service:
                assert service.session.sweep_trace_key(graph, point) is None
                await service.sweep([(graph, point)])
                await service.sweep([(graph, point)])

        run(scenario())
        assert worker.calls == 2


class TestTiers:
    def test_memory_tier_replays_without_worker_or_store(self, graph, workload):
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        worker = FakeWorker()
        store = FakeResultStore()

        async def scenario():
            with SweepService(
                session=Session(arch=workload.arch), store=store, worker=worker
            ) as service:
                await service.sweep([(graph, point)])
                job = await service.submit([(graph, point)])
                (outcome,) = await job.outcomes()
                return service, outcome

        service, outcome = run(scenario())
        assert outcome.source == "memory"
        assert outcome.result.cached
        assert worker.calls == 1
        assert service.memory_hits == 1
        # The memory probe never touched the store.
        assert len(store.get_log) == 1

    def test_store_tier_warms_memory(self, graph, workload):
        session_a = Session(arch=workload.arch)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        store = FakeResultStore()
        worker = FakeWorker()

        async def warm_store():
            with SweepService(session=session_a, store=store, worker=worker) as service:
                return await service.sweep([(graph, point)])

        (first,) = run(warm_store())
        assert store.writes == 1

        # A brand-new session: memory cold, store warm.
        session_b = Session(arch=workload.arch)

        async def replay():
            with SweepService(session=session_b, store=store, worker=worker) as service:
                job = await service.submit([(graph, point)])
                (hit,) = await job.outcomes()
                job2 = await service.submit([(graph, point)])
                (warm,) = await job2.outcomes()
                return service, hit, warm

        service, hit, warm = run(replay())
        assert worker.calls == 1  # never re-simulated
        assert hit.source == "store"
        assert warm.source == "memory"  # the store hit warmed the memory tier
        assert service.store_hits == 1 and service.memory_hits == 1
        assert hit.result == first

    def test_store_errors_fall_through_to_simulation(self, graph, workload):
        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)
        store = FakeResultStore(fail_reads=True, fail_writes=True)
        worker = FakeWorker()

        async def scenario():
            with SweepService(
                session=Session(arch=workload.arch), store=store, worker=worker
            ) as service:
                (result,) = await service.sweep([(graph, point)])
                return service, result

        service, result = run(scenario())
        assert result.ok
        assert worker.calls == 1
        assert service.store_errors == 2  # one failed read, one failed write

    def test_worker_must_return_result_or_failure(self, graph, workload):
        class BrokenWorker:
            def evaluate(self, graph, point):
                return "nonsense"

        point = SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)

        async def scenario():
            with SweepService(
                session=Session(arch=workload.arch), worker=BrokenWorker()
            ) as service:
                await service.sweep([(graph, point)])

        with pytest.raises(SimulationError, match="SweepResult or SweepFailure"):
            run(scenario())


class TestJobInterface:
    def test_results_are_position_aligned(self, graph, workload):
        work = _grid(graph)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=FakeWorker()) as service:
                job = await service.submit(list(work))
                results = await job.results()
                outcomes = await job.outcomes()
                return results, outcomes

        results, outcomes = run(scenario())
        assert len(results) == len(work)
        assert [o.position for o in outcomes] == list(range(len(work)))
        for (g, point), result in zip(work, results):
            assert result.scheme == point.scheme
            assert result.policy == point.policy

    def test_stream_yields_every_outcome(self, graph, workload):
        work = _grid(graph)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=FakeWorker()) as service:
                job = await service.submit(list(work))
                streamed = [outcome async for outcome in job.stream()]
                assert job.done
                return streamed

        streamed = run(scenario())
        assert sorted(o.position for o in streamed) == list(range(len(work)))

    def test_replays_carry_requested_spelling_and_label(self, workload):
        from repro.cusync.policies import PolicyAssignment

        graph = workload.to_graph()
        worker = FakeWorker(delay_s=0.02)
        spellings = ["TileSync", PolicyAssignment(default="TileSync")]
        work = [
            (graph, SweepPoint(scheme="cusync", policy=policy, arch=workload.arch))
            for policy in spellings
        ]

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=worker) as service:
                return await (await service.submit(work)).results()

        results = run(scenario())
        assert worker.calls == 1  # equivalent spellings coalesced
        assert [r.policy for r in results] == spellings
        assert results[0].total_time_us == results[1].total_time_us

    def test_invalid_work_items_rejected(self, graph):
        async def scenario():
            with SweepService(worker=FakeWorker()) as service:
                await service.submit([(graph, "not a point")])

        with pytest.raises(SimulationError, match="pairs"):
            run(scenario())


class TestEndToEnd:
    """Real session, real simulations, real disk store."""

    def test_disk_backed_service_replays_across_sessions(self, workload, tmp_path):
        work = [
            (
                workload.to_graph(),
                SweepPoint(scheme="cusync", policy="TileSync", arch="V100"),
            ),
            (
                workload.to_graph(),
                SweepPoint(scheme="streamsync", policy=None, arch="V100"),
            ),
        ]
        root = tmp_path / "results"

        async def cold():
            with SweepService(
                session=Session(arch=workload.arch), store=SweepResultStore(root)
            ) as service:
                results = await service.sweep(list(work))
                return service, results

        service_a, first = run(cold())
        assert service_a.points_simulated == len(work)
        assert all(r.ok for r in first)

        async def warm():
            with SweepService(
                session=Session(arch=workload.arch), store=SweepResultStore(root)
            ) as service:
                results = await service.sweep(
                    [
                        (
                            workload.to_graph(),
                            SweepPoint(scheme="cusync", policy="TileSync", arch="V100"),
                        ),
                        (
                            workload.to_graph(),
                            SweepPoint(scheme="streamsync", policy=None, arch="V100"),
                        ),
                    ]
                )
                return service, results

        service_b, replayed = run(warm())
        assert service_b.points_simulated == 0
        assert service_b.store_hits == len(work)
        assert replayed == first
        for fresh, again in zip(first, replayed):
            assert again.total_time_us == fresh.total_time_us
            assert again.kernel_durations_us == fresh.kernel_durations_us

    def test_session_worker_inherits_collect_semantics(self, workload, graph):
        # An injected evaluation fault surfaces as the session layer's
        # structured failure — the service never raises for a failing
        # point and never caches it.
        from repro.testing import FaultPlan, FaultSpec, inject_faults

        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        session = Session(arch=workload.arch)

        async def scenario():
            with SweepService(session=session) as service:
                with inject_faults(FaultPlan([FaultSpec(kind="error", point=0)])):
                    (failure,) = await service.sweep([(graph, point)])
                (recovered,) = await service.sweep([(graph, point)])
                return failure, recovered

        failure, recovered = run(scenario())
        assert not failure.ok
        assert failure.attempts == 1
        assert failure.error_type
        assert recovered.ok and not recovered.cached


class TestCancellationAndTimeouts:
    """Graceful cancellation: waiters release, evaluations are never poisoned."""

    def point(self, workload):
        return SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)

    def test_cancel_before_start_skips_evaluation(self, graph, workload):
        from repro.service import JobCancelled

        worker = FakeWorker(delay_s=0.05)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=worker) as service:
                job = await service.submit([(graph, self.point(workload))])
                job.cancel()
                assert job.cancelled
                (outcome,) = await job.outcomes()
                await service.drain()
                return service, outcome

        service, outcome = run(scenario())
        assert outcome.source == "cancelled"
        assert isinstance(outcome.result, JobCancelled)
        assert outcome.result.reason == "cancelled"
        assert not outcome.result.ok and not outcome.ok
        assert "cancelled" in outcome.result.describe()
        assert worker.calls == 0  # nothing was ever evaluated
        assert service.points_cancelled == 1
        assert service.stats()["points_cancelled"] == 1

    def test_cancel_does_not_poison_coalesced_jobs(self, graph, workload):
        """The headline property: job A cancels mid-flight; job B, coalesced
        on the same point, still receives the real result."""
        from repro.service import JobCancelled

        point = self.point(workload)
        worker = FakeWorker(delay_s=0.05)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=worker) as service:
                job_a = await service.submit([(graph, point)])
                await asyncio.sleep(0.01)  # resolver is now in flight
                job_b = await service.submit([(graph, point)])
                job_a.cancel()
                (outcome_a,) = await job_a.outcomes()
                (outcome_b,) = await job_b.outcomes()
                await service.drain()
                return service, outcome_a, outcome_b

        service, outcome_a, outcome_b = run(scenario())
        assert isinstance(outcome_a.result, JobCancelled)
        assert outcome_a.result.waited_s >= 0.0
        assert outcome_b.ok
        assert outcome_b.source == "coalesced"
        assert outcome_b.result.total_time_us > 0.0
        assert worker.calls == 1  # the evaluation ran exactly once, to completion

    def test_cancel_keeps_already_resolved_points(self, graph, workload):
        from repro.service import JobCancelled

        point = self.point(workload)
        slow_graph = graph  # same graph, different (uncacheable) point
        slow_point = SweepPoint(scheme="streamsync", policy=None, arch=workload.arch)
        worker = FakeWorker(delay_s=0.05)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=worker) as service:
                await service.sweep([(graph, point)])  # pre-warm the memory tier
                job = await service.submit([(graph, point), (slow_graph, slow_point)])
                await asyncio.sleep(0.01)  # memory hit resolves immediately
                job.cancel()
                outcomes = await job.outcomes()
                await service.drain()
                return outcomes

        first, second = run(scenario())
        assert first.source == "memory" and first.ok
        assert isinstance(second.result, JobCancelled)

    def test_timeout_releases_job_but_evaluation_completes(self, graph, workload):
        from repro.service import JobCancelled

        point = self.point(workload)
        worker = FakeWorker(delay_s=0.1)

        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=worker) as service:
                (result,) = await service.sweep([(graph, point)], timeout_s=0.01)
                await service.drain()  # abandoned evaluation finishes anyway
                job = await service.submit([(graph, point)])
                (warm,) = await job.outcomes()
                return service, result, warm

        service, result, warm = run(scenario())
        assert isinstance(result, JobCancelled)
        assert result.reason == "timeout"
        assert warm.ok and warm.source == "memory"  # cached by the background finish
        assert worker.calls == 1
        assert service.points_cancelled == 1

    def test_invalid_timeout_rejected(self, graph, workload):
        async def scenario():
            with SweepService(session=Session(arch=workload.arch), worker=FakeWorker()) as service:
                await service.submit([(graph, self.point(workload))], timeout_s=0.0)

        with pytest.raises(SimulationError, match="timeout_s"):
            run(scenario())
