"""Tests for the analytical cost model."""

import pytest

from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel


@pytest.fixture
def model():
    return CostModel(arch=TESLA_V100, duration_jitter=0.1)


class TestRoofline:
    def test_compute_time_scales_with_flops(self, model):
        assert model.compute_time_us(2e6) == pytest.approx(2 * model.compute_time_us(1e6))

    def test_memory_time_scales_with_bytes(self, model):
        assert model.memory_time_us(2e6) == pytest.approx(2 * model.memory_time_us(1e6))

    def test_roofline_takes_max(self, model):
        compute_bound = model.roofline_time_us(flops=1e9, bytes_moved=1)
        assert compute_bound == pytest.approx(model.compute_time_us(1e9))
        memory_bound = model.roofline_time_us(flops=1, bytes_moved=1e9)
        assert memory_bound == pytest.approx(model.memory_time_us(1e9))

    def test_occupancy_divides_throughput(self, model):
        assert model.compute_time_us(1e6, occupancy=2) == pytest.approx(2 * model.compute_time_us(1e6))

    def test_zero_work_is_free(self, model):
        assert model.compute_time_us(0.0) == 0.0
        assert model.memory_time_us(0.0) == 0.0

    def test_unknown_precision(self, model):
        with pytest.raises(ValueError):
            model.compute_time_us(1.0, precision="fp64x")

    def test_fp32_slower_than_fp16(self, model):
        assert model.compute_time_us(1e6, precision="fp32") > model.compute_time_us(1e6, precision="fp16")


class TestKernelCosts:
    def test_gemm_chunk_positive(self, model):
        assert model.gemm_mainloop_chunk_us(256, 256, 32) > 0.0

    def test_gemm_chunk_monotone_in_k(self, model):
        assert model.gemm_mainloop_chunk_us(256, 256, 64) > model.gemm_mainloop_chunk_us(256, 256, 32)

    def test_epilogue_includes_fixed_overhead(self, model):
        assert model.gemm_epilogue_us(1, 1) >= model.epilogue_overhead_us

    def test_softmax_tile_positive(self, model):
        assert model.softmax_tile_us(8, 1024) > 0.0

    def test_streamk_fixup_zero_for_single_contributor(self, model):
        assert model.streamk_fixup_us(128, 128, 1) == 0.0
        assert model.streamk_fixup_us(128, 128, 4) > 0.0


class TestSynchronizationCosts:
    def test_wait_cheaper_when_satisfied(self, model):
        assert model.satisfied_wait_overhead_us() < model.wait_overhead_us()

    def test_post_overhead_positive(self, model):
        assert model.post_overhead_us() > 0.0

    def test_launch_latency_matches_arch(self, model):
        assert model.kernel_launch_us() == TESLA_V100.kernel_launch_latency_us


class TestJitter:
    def test_factor_deterministic(self, model):
        assert model.block_duration_factor("k", 3) == model.block_duration_factor("k", 3)

    def test_factor_in_range(self, model):
        for index in range(50):
            factor = model.block_duration_factor("kernel", index)
            assert 1.0 <= factor < 1.0 + model.duration_jitter

    def test_zero_jitter_gives_unity(self):
        model = CostModel(arch=TESLA_V100, duration_jitter=0.0)
        assert model.block_duration_factor("kernel", 7) == 1.0

    def test_different_blocks_differ(self, model):
        factors = {model.block_duration_factor("kernel", index) for index in range(20)}
        assert len(factors) > 1

    def test_vectorized_factors_bit_identical_to_scalar(self, model):
        """The numpy splitmix64 lane must match the scalar path exactly."""
        for name in ("kernel", "mlp_gemm1", "synthetic_consumer"):
            batch = model.block_duration_factors(name, 257)
            scalar = [model.block_duration_factor(name, index) for index in range(257)]
            assert batch == scalar

    def test_vectorized_factors_zero_jitter_and_empty(self):
        model = CostModel(arch=TESLA_V100, duration_jitter=0.0)
        assert model.block_duration_factors("kernel", 3) == [1.0, 1.0, 1.0]
        assert CostModel(arch=TESLA_V100).block_duration_factors("kernel", 0) == []
