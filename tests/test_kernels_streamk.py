"""Tests for the Stream-K decomposition."""

import pytest

from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.simulator import GpuSimulator
from repro.kernels.gemm import GemmConfig, GemmProblem
from repro.kernels.streamk import StreamKGemmKernel


@pytest.fixture
def cost_model():
    return CostModel(arch=TESLA_V100, duration_jitter=0.0)


class TestStreamKSchedule:
    def test_full_waves_plus_remainder(self, cost_model):
        problem = GemmProblem(m=2048, n=6144, k=4096)
        kernel = StreamKGemmKernel("sk", problem, GemmConfig(256, 256, 32), cost_model=cost_model)
        schedule = kernel.schedule()
        assert schedule.total_tiles == schedule.data_parallel_tiles + schedule.streamk_tiles
        assert schedule.data_parallel_tiles % schedule.blocks_per_wave == 0
        assert 0 < schedule.streamk_tiles < schedule.blocks_per_wave

    def test_assignments_cover_all_iterations(self, cost_model):
        problem = GemmProblem(m=512, n=6144, k=4096)
        kernel = StreamKGemmKernel("sk", problem, GemmConfig(256, 256, 32), cost_model=cost_model)
        schedule = kernel.schedule()
        total = schedule.streamk_tiles * schedule.iters_per_tile
        assert sum(a.iterations for a in schedule.assignments) == total
        spans = sorted((a.start, a.stop) for a in schedule.assignments)
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == total

    def test_no_streamk_kernel_when_exact_waves(self, cost_model):
        # 160 tiles at occupancy 1 on 80 SMs -> exactly 2 full waves.
        problem = GemmProblem(m=256 * 8, n=256 * 20, k=1024)
        kernel = StreamKGemmKernel("sk", problem, GemmConfig(256, 256, 32), cost_model=cost_model)
        schedule = kernel.schedule()
        assert schedule.streamk_tiles == 0
        launches = kernel.build_launches()
        assert len(launches) == 1

    def test_split_tiles_counted(self, cost_model):
        problem = GemmProblem(m=256, n=6144, k=4096)
        kernel = StreamKGemmKernel("sk", problem, GemmConfig(256, 256, 32), cost_model=cost_model)
        schedule = kernel.schedule()
        assert schedule.tiles_split_across_blocks > 0


class TestStreamKExecution:
    def test_launches_run_on_simulator(self, cost_model):
        problem = GemmProblem(m=512, n=6144, k=2048)
        kernel = StreamKGemmKernel("sk", problem, GemmConfig(256, 256, 32), cost_model=cost_model)
        launches = kernel.build_launches()
        result = GpuSimulator(TESLA_V100, cost_model=cost_model).run(launches)
        assert result.total_time_us > 0.0

    def test_improves_partial_wave_utilization(self, cost_model):
        """Stream-K should beat the plain kernel when the final wave is small."""
        from repro.kernels.gemm import GemmKernel
        from repro.baselines.streamsync import StreamSyncExecutor
        from repro.baselines.streamk import StreamKExecutor

        problem = GemmProblem(m=256, n=6144, k=8192)
        config = GemmConfig(256, 256, 32)
        plain = GemmKernel("gemm", problem, config, cost_model=cost_model)
        baseline = StreamSyncExecutor(cost_model=cost_model).run([plain]).total_time_us

        streamk = StreamKGemmKernel("gemm", problem, config, cost_model=cost_model)
        result = StreamKExecutor(cost_model=cost_model).run([streamk]).total_time_us
        assert result < baseline
