"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.common.dim3 import Dim3, ceil_div
from repro.common.tiles import delinearize, iter_tiles, linearize
from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.gpu.occupancy import KernelResources, OccupancyCalculator
from repro.gpu.trace import analytic_utilization, wave_count
from repro.kernels.base import StageGeometry
from repro.cusync.custage import CuStage
from repro.cusync.policies import (
    BatchSync,
    Conv2DTileSync,
    PolicyContext,
    PolicySpec,
    RowSync,
    StridedSync,
    TileSync,
    registered_policies,
    resolve_policy,
)
from repro.cusync.tile_orders import ColumnMajorOrder, GroupedColumnsOrder, RowMajorOrder

grids = st.builds(
    Dim3,
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=4),
)

policies = st.sampled_from([TileSync(), RowSync(), Conv2DTileSync(), BatchSync()])


def _registered_policy_instances(grid: Dim3):
    """One instance of every registered family, resolved for ``grid``.

    Parameterized families get a context-derived instantiation; families
    whose requirements the grid cannot meet (e.g. StridedSync on a prime
    grid.x) are instantiated with stride 1, which is always legal.
    """
    ctx = PolicyContext(
        stage_name="prop", logical_grid=grid,
        strided_groups=2 if grid.x % 2 == 0 and grid.x > 2 else None,
    )
    instances = []
    for family in registered_policies():
        if family == "StridedSync":
            spec = PolicySpec(family, stride=1)
        else:
            spec = PolicySpec(family)
        instances.append(resolve_policy(spec, ctx))
    return instances


class TestArithmeticProperties:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_ceil_div_bounds(self, numerator, denominator):
        result = ceil_div(numerator, denominator)
        assert result * denominator >= numerator
        assert (result - 1) * denominator < numerator or result == 0

    @given(grids, st.data())
    def test_linearize_roundtrip(self, grid, data):
        index = data.draw(st.integers(min_value=0, max_value=grid.volume - 1))
        assert linearize(delinearize(index, grid), grid) == index

    @given(grids)
    def test_iter_tiles_is_bijective(self, grid):
        tiles = list(iter_tiles(grid))
        assert len(tiles) == grid.volume == len(set(tiles))


class TestOccupancyProperties:
    @given(
        st.integers(min_value=32, max_value=1024),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=96 * 1024),
    )
    def test_occupancy_within_architecture_limits(self, threads, registers, shared):
        resources = KernelResources(
            threads_per_block=threads, registers_per_thread=registers, shared_memory_per_block=shared
        )
        occupancy = OccupancyCalculator(TESLA_V100).blocks_per_sm(resources)
        assert 1 <= occupancy <= TESLA_V100.max_blocks_per_sm

    @given(st.integers(min_value=0, max_value=4000), st.integers(min_value=1, max_value=4))
    def test_utilization_bounds(self, blocks, occupancy):
        utilization = analytic_utilization(blocks, occupancy, TESLA_V100)
        assert 0.0 <= utilization <= 1.0
        if blocks:
            assert wave_count(blocks, occupancy, TESLA_V100) > 0.0


class TestPolicyProperties:
    @given(grids, policies)
    def test_semaphore_indices_in_range(self, grid, policy):
        count = policy.num_semaphores(grid)
        for tile in iter_tiles(grid):
            index = policy.semaphore_index(tile, grid)
            assert 0 <= index < count
            assert policy.expected_value(tile, grid) >= 1

    @given(grids, policies)
    def test_expected_posts_cover_semaphores(self, grid, policy):
        """If every tile posts once, every semaphore reaches its expected value."""
        counts = {}
        for tile in iter_tiles(grid):
            counts[policy.semaphore_index(tile, grid)] = counts.get(policy.semaphore_index(tile, grid), 0) + 1
        for tile in iter_tiles(grid):
            semaphore = policy.semaphore_index(tile, grid)
            assert counts[semaphore] >= policy.expected_value(tile, grid)

    @given(grids, st.integers(min_value=1, max_value=6))
    def test_strided_sync_indices_in_range(self, grid, stride):
        if grid.x % stride != 0:
            return
        policy = StridedSync(stride=stride)
        count = policy.num_semaphores(grid)
        for tile in iter_tiles(grid):
            assert 0 <= policy.semaphore_index(tile, grid) < count

    @given(grids)
    @settings(max_examples=60, deadline=None)
    def test_every_registered_family_upholds_invariants(self, grid):
        """semaphore_index / expected_value invariants for every registered
        policy family (including user registrations) over randomized grids:
        indices in range, values >= 1, posts cover every semaphore's
        expectation, and validate() accepts the grid."""
        for policy in _registered_policy_instances(grid):
            count = policy.num_semaphores(grid)
            posted = {}
            for tile in iter_tiles(grid):
                index = policy.semaphore_index(tile, grid)
                assert 0 <= index < count, (policy.name, tile)
                assert policy.expected_value(tile, grid) >= 1, (policy.name, tile)
                posted[index] = posted.get(index, 0) + 1
            for tile in iter_tiles(grid):
                index = policy.semaphore_index(tile, grid)
                assert posted[index] >= policy.expected_value(tile, grid), (policy.name, tile)
            policy.validate(grid)

    @given(grids)
    @settings(max_examples=60, deadline=None)
    def test_batched_evaluation_matches_scalar(self, grid):
        """The vectorized semaphore_indices / expected_values wrappers agree
        element-for-element with the scalar methods for every registered
        family (the hot-path planner and validate() rely on this)."""
        zs, ys, xs = np.indices((grid.z, grid.y, grid.x))
        for policy in _registered_policy_instances(grid):
            batched_indices = policy.semaphore_indices(xs, ys, zs, grid)
            batched_values = policy.expected_values(xs, ys, zs, grid)
            for tile in iter_tiles(grid):
                assert batched_indices[tile.z, tile.y, tile.x] == policy.semaphore_index(tile, grid)
                assert batched_values[tile.z, tile.y, tile.x] == policy.expected_value(tile, grid)

    @given(grids)
    @settings(max_examples=30, deadline=None)
    def test_scalar_override_disables_inherited_batch_path(self, grid):
        """A subclass overriding only the scalar mapping must not silently
        reuse the parent's vectorized batch method."""

        class ShiftedTileSync(TileSync):
            def semaphore_index(self, tile, grid):
                flat = (tile.z * grid.y + tile.y) * grid.x + tile.x
                return (flat + 1) % grid.volume

        policy = ShiftedTileSync()
        zs, ys, xs = np.indices((grid.z, grid.y, grid.x))
        batched = policy.semaphore_indices(xs, ys, zs, grid)
        for tile in iter_tiles(grid):
            assert batched[tile.z, tile.y, tile.x] == policy.semaphore_index(tile, grid)
        policy.validate(grid)  # the shifted mapping is still a bijection


class TestTileOrderProperties:
    @given(grids, st.sampled_from(["row", "col"]))
    def test_orders_are_permutations(self, grid, kind):
        order = RowMajorOrder() if kind == "row" else ColumnMajorOrder()
        permutation = order.permutation(grid)
        assert len(permutation) == grid.volume
        assert set(permutation) == set(iter_tiles(grid))

    @given(grids, st.integers(min_value=1, max_value=6))
    def test_grouped_order_is_permutation_when_divisible(self, grid, group):
        if grid.x % group != 0:
            return
        permutation = GroupedColumnsOrder(group=group).permutation(grid)
        assert set(permutation) == set(iter_tiles(grid))


class TestStagePlanningProperties:
    @given(
        st.integers(min_value=1, max_value=8),   # producer grid x
        st.integers(min_value=1, max_value=6),   # producer grid y
        st.integers(min_value=1, max_value=64),  # requested column span
        st.integers(min_value=1, max_value=64),  # requested row span
        st.sampled_from([TileSync(), RowSync(), Conv2DTileSync()]),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_reads_covers_requested_range(self, gx, gy, col_span, row_span, policy):
        """Every consumer read is covered by plan steps, in order, with valid waits."""
        tile_rows, tile_cols = 16, 32
        geometry = StageGeometry(
            grid=Dim3(gx, gy, 1), tile_rows=tile_rows, tile_cols=tile_cols, output="OUT"
        )
        producer = CuStage("producer", geometry, policy=policy)
        consumer = CuStage("consumer", geometry, policy=TileSync())
        consumer.depends_on(producer, "OUT")

        max_rows = gy * tile_rows
        max_cols = gx * tile_cols
        rows = (0, min(row_span, max_rows))
        cols = (0, min(col_span, max_cols))
        steps = consumer.plan_reads("OUT", rows, cols)

        assert steps, "plan must contain at least one step"
        assert steps[0].cols[0] <= cols[0]
        assert steps[-1].cols[1] >= cols[1]
        semaphore_count = policy.num_semaphores(geometry.logical_grid)
        for step in steps:
            for wait in step.waits:
                assert 0 <= wait.index < semaphore_count
                assert wait.required >= 1

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_rowsync_never_needs_more_steps_than_tilesync(self, gx, gy):
        geometry = StageGeometry(grid=Dim3(gx, gy, 1), tile_rows=16, tile_cols=32, output="OUT")
        consumer_geometry = StageGeometry(grid=Dim3(1, 1, 1), tile_rows=16, tile_cols=32, output="X")
        counts = {}
        for name, policy in (("tile", TileSync()), ("row", RowSync())):
            producer = CuStage("producer", geometry, policy=policy)
            consumer = CuStage("consumer", consumer_geometry, policy=TileSync())
            consumer.depends_on(producer, "OUT")
            steps = consumer.plan_reads("OUT", (0, 16 * gy), (0, 32 * gx))
            counts[name] = sum(len(step.waits) for step in steps)
        assert counts["row"] <= counts["tile"]


class TestCostModelProperties:
    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0, max_value=1e9))
    @settings(max_examples=50)
    def test_roofline_at_least_each_component(self, flops, bytes_moved):
        model = CostModel(arch=TESLA_V100)
        roofline = model.roofline_time_us(flops, bytes_moved)
        assert roofline >= model.compute_time_us(flops) - 1e-9
        assert roofline >= model.memory_time_us(bytes_moved) - 1e-9

    @given(st.text(min_size=1, max_size=10), st.integers(min_value=0, max_value=10000))
    @settings(max_examples=50)
    def test_jitter_factor_bounds(self, name, index):
        model = CostModel(arch=TESLA_V100, duration_jitter=0.2)
        factor = model.block_duration_factor(name, index)
        assert 1.0 <= factor < 1.2
