"""Tests for the discrete-event GPU simulator.

These exercise the behaviours the paper's mechanisms rely on: wave
quantization, stream ordering, launch-order block scheduling, busy-wait
slot occupancy, fine-grained overlap and deadlock detection.
"""

import pytest

from repro.common.dim3 import Dim3
from repro.common.tiles import linearize
from repro.errors import DeadlockError, SimulationError
from repro.gpu.kernel import KernelLaunch, Segment, SemPost, SemWait, ThreadBlockProgram, simple_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator
from repro.gpu.stream import Stream


def _fixed_kernel(name, blocks, duration, stream, occupancy=1):
    return simple_kernel(name, Dim3(blocks, 1, 1), duration, occupancy=occupancy, stream=stream)


class TestWaveQuantization:
    def test_single_wave(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = _fixed_kernel("k", 8, 10.0, stream)
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([kernel])
        assert result.total_time_us == pytest.approx(10.0, abs=1e-6)

    def test_partial_second_wave_costs_full_wave(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = _fixed_kernel("k", 9, 10.0, stream)
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([kernel])
        assert result.total_time_us == pytest.approx(20.0, abs=1e-6)

    def test_occupancy_two_doubles_blocks_per_wave(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = _fixed_kernel("k", 16, 10.0, stream, occupancy=2)
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([kernel])
        assert result.total_time_us == pytest.approx(10.0, abs=1e-6)

    def test_kernel_stats_record_waves(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = _fixed_kernel("k", 12, 10.0, stream)
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([kernel])
        assert result.trace.kernels["k"].waves == pytest.approx(1.5)
        assert result.trace.kernels["k"].utilization == pytest.approx(0.75)


class TestStreamSemantics:
    def test_same_stream_serializes(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        first = _fixed_kernel("first", 8, 10.0, stream)
        second = _fixed_kernel("second", 8, 10.0, stream)
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([first, second])
        assert result.total_time_us == pytest.approx(20.0, abs=1e-6)
        assert result.trace.kernels["second"].start_time_us >= result.trace.kernels["first"].end_time_us

    def test_different_streams_run_concurrently(self, small_arch, small_cost_model):
        first = _fixed_kernel("first", 4, 10.0, Stream(name="a"))
        second = _fixed_kernel("second", 4, 10.0, Stream(name="b"))
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([first, second])
        assert result.total_time_us == pytest.approx(10.0, abs=1e-6)

    def test_launch_order_prioritizes_earlier_kernel(self, small_arch, small_cost_model):
        # Both kernels need all 8 SMs; the kernel launched first must get them first.
        first = _fixed_kernel("first", 8, 10.0, Stream(name="a"))
        second = _fixed_kernel("second", 8, 10.0, Stream(name="b"))
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([first, second])
        assert result.trace.kernels["first"].end_time_us <= result.trace.kernels["second"].start_time_us + 1e-9

    def test_launch_latency_delays_start(self, small_cost_model, small_arch):
        arch = small_arch.with_overrides(kernel_launch_latency_us=5.0)
        model = small_cost_model.__class__(arch=arch, duration_jitter=0.0)
        kernel = _fixed_kernel("k", 4, 10.0, Stream(name="s"))
        result = GpuSimulator(arch, cost_model=model).run([kernel])
        assert result.trace.kernels["k"].start_time_us == pytest.approx(5.0)

    def test_dispatch_gap_exposed_between_stream_kernels(self, small_arch):
        from repro.gpu.costmodel import CostModel

        arch = small_arch.with_overrides(kernel_dispatch_latency_us=4.0)
        model = CostModel(arch=arch, duration_jitter=0.0)
        stream = Stream(name="s")
        first = _fixed_kernel("first", 8, 10.0, stream)
        second = _fixed_kernel("second", 8, 10.0, stream)
        result = GpuSimulator(arch, cost_model=model).run([first, second])
        assert result.total_time_us == pytest.approx(24.0, abs=1e-6)


class TestFineGrainedSync:
    def _dependent_pair(self, grid, duration, memory):
        memory.alloc_semaphores("sems", grid.volume)

        def producer_program(tile):
            post = SemPost("sems", linearize(tile, grid))
            return ThreadBlockProgram(tile=tile, segments=[Segment(duration_us=duration, posts=[post])])

        def consumer_program(tile):
            wait = SemWait("sems", linearize(tile, grid), 1)
            return ThreadBlockProgram(tile=tile, segments=[Segment(duration_us=duration, waits=[wait])])

        producer = KernelLaunch("producer", grid, producer_program, stream=Stream(name="p"))
        consumer = KernelLaunch("consumer", grid, consumer_program, stream=Stream(name="c"))
        return producer, consumer

    def test_figure1_overlap(self, small_arch, small_cost_model):
        """The paper's Figure 1: 6+6 tiles on 4 SMs -> 3 waves, not 4."""
        arch = small_arch.with_overrides(num_sms=4)
        model = small_cost_model.__class__(arch=arch, duration_jitter=0.0)
        memory = GlobalMemory()
        grid = Dim3(3, 2, 1)
        producer, consumer = self._dependent_pair(grid, 10.0, memory)
        result = GpuSimulator(arch, memory=memory, cost_model=model).run([producer, consumer])
        # Stream synchronization would need 4 waves (40 us); fine-grained
        # synchronization packs the work into 3 waves plus small overheads.
        assert result.total_time_us < 36.0
        assert result.total_time_us >= 30.0

    def test_waiting_blocks_occupy_slots(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        # 6 producer blocks on 8 SMs leave 2 slots free, which early consumer
        # blocks occupy while busy-waiting for their producer tiles.
        grid = Dim3(3, 2, 1)
        producer, consumer = self._dependent_pair(grid, 10.0, memory)
        result = GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
            [producer, consumer]
        )
        assert result.trace.total_wait_time_us() > 0.0

    def test_deadlock_when_consumer_launched_first(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        grid = Dim3(4, 2, 1)
        producer, consumer = self._dependent_pair(grid, 10.0, memory)
        with pytest.raises(DeadlockError) as excinfo:
            GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [consumer, producer]
            )
        assert excinfo.value.waiting_blocks

    def test_semaphores_reach_expected_values(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        grid = Dim3(2, 2, 1)
        producer, consumer = self._dependent_pair(grid, 1.0, memory)
        GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run([producer, consumer])
        assert memory.snapshot_semaphores()["sems"] == (1, 1, 1, 1)

    def test_on_first_block_start_posts(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        memory.alloc_semaphores("start", 1)
        kernel = simple_kernel("k", Dim3(2, 1, 1), 1.0, stream=Stream(name="s"))
        kernel.on_first_block_start.append(SemPost("start", 0))
        GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run([kernel])
        assert memory.semaphore_value("start", 0) == 1


class TestPollAccounting:
    """Duration-stepped poll accounting for busy-wait segments.

    A segment with ``poll_interval_us`` set parks in the wake index like
    any other waiter (woken exactly once) but back-charges the polls its
    busy-wait loop would have issued — one per wait per elapsed
    interval.  The charge must be accounting-only: times and traces are
    identical with and without it.
    """

    def _run(self, arch, cost_model, producer_us, poll_interval):
        memory = GlobalMemory()
        memory.alloc_semaphores("sems", 1)

        def producer_program(tile):
            return ThreadBlockProgram(
                tile=tile,
                segments=[Segment(duration_us=producer_us, posts=[SemPost("sems", 0)])],
            )

        def waiter_program(tile):
            return ThreadBlockProgram(
                tile=tile,
                segments=[
                    Segment(
                        duration_us=1.0,
                        waits=[SemWait("sems", 0, 1)],
                        poll_interval_us=poll_interval,
                    )
                ],
            )

        producer = KernelLaunch("producer", Dim3(1, 1, 1), producer_program, stream=Stream(name="p"))
        waiter = KernelLaunch("waiter", Dim3(1, 1, 1), waiter_program, stream=Stream(name="w"))
        result = GpuSimulator(arch, memory=memory, cost_model=cost_model).run([producer, waiter])
        return result, memory

    def test_stepped_polls_charged_per_interval(self, small_arch, small_cost_model):
        baseline, baseline_memory = self._run(small_arch, small_cost_model, 40.0, 0.0)
        stepped, stepped_memory = self._run(small_arch, small_cost_model, 40.0, 4.0)
        waited = stepped.trace.total_wait_time_us()
        assert waited > 0.0
        expected_extra = int(waited / 4.0)
        assert expected_extra > 0
        assert (
            stepped_memory.semaphore_reads
            == baseline_memory.semaphore_reads + expected_extra
        )

    def test_poll_interval_is_timing_neutral(self, small_arch, small_cost_model):
        baseline, _ = self._run(small_arch, small_cost_model, 40.0, 0.0)
        stepped, _ = self._run(small_arch, small_cost_model, 40.0, 4.0)
        assert stepped.total_time_us == baseline.total_time_us
        assert stepped.trace.total_wait_time_us() == baseline.trace.total_wait_time_us()
        for name in ("producer", "waiter"):
            assert stepped.trace.kernels[name] == baseline.trace.kernels[name]

    def test_interval_under_one_step_charges_nothing(self, small_arch, small_cost_model):
        # An interval longer than the parked time rounds to zero whole
        # polls: the stepped charge only counts *completed* spin
        # iterations, so a short wait costs the same as interval 0.
        baseline, baseline_memory = self._run(small_arch, small_cost_model, 40.0, 0.0)
        waited = baseline.trace.total_wait_time_us()
        assert waited > 0.0
        stepped, stepped_memory = self._run(
            small_arch, small_cost_model, 40.0, waited * 2.0
        )
        assert stepped_memory.semaphore_reads == baseline_memory.semaphore_reads


class TestValidation:
    def test_duplicate_kernel_names_rejected(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        a = _fixed_kernel("same", 1, 1.0, stream)
        b = _fixed_kernel("same", 1, 1.0, stream)
        with pytest.raises(SimulationError):
            GpuSimulator(small_arch, cost_model=small_cost_model).run([a, b])

    def test_empty_launch_list_rejected(self, small_arch, small_cost_model):
        with pytest.raises(SimulationError):
            GpuSimulator(small_arch, cost_model=small_cost_model).run([])

    def test_all_blocks_complete(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = _fixed_kernel("k", 13, 3.0, stream)
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([kernel])
        assert len(result.trace.blocks_of("k")) == 13

    def test_custom_tile_order_applied(self, small_arch, small_cost_model):
        grid = Dim3(4, 1, 1)
        order = [Dim3(3, 0, 0), Dim3(2, 0, 0), Dim3(1, 0, 0), Dim3(0, 0, 0)]

        def program(tile):
            return ThreadBlockProgram(tile=tile, segments=[Segment(duration_us=1.0)])

        kernel = KernelLaunch(
            "k", grid, program, stream=Stream(name="s"), tile_order=lambda index: order[index]
        )
        result = GpuSimulator(small_arch, cost_model=small_cost_model).run([kernel])
        records = result.trace.blocks_of("k")
        assert [record.tile for record in records] == order
