"""Shared fixtures for the test suite.

Tests that exercise the simulator use a scaled-down GPU (8 SMs) so pipelines
with a handful of thread blocks already show multi-wave behaviour and run in
milliseconds; architecture-accuracy tests use the real V100 preset.
"""

import os
import threading

import numpy as np
import pytest

from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel

#: Per-test wall-clock budget for the fallback watchdog, in seconds.
#: Overridable via REPRO_TEST_TIMEOUT; 0 disables the watchdog.
_FALLBACK_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))

_HAVE_TIMEOUT_PLUGIN = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long multi-mode sweep tests; the fast CI lane deselects them "
        'with -m "not slow"',
    )
    global _HAVE_TIMEOUT_PLUGIN
    _HAVE_TIMEOUT_PLUGIN = config.pluginmanager.hasplugin("timeout")


@pytest.fixture(autouse=True)
def _hang_watchdog(request):
    """Fallback per-test timeout for environments without pytest-timeout.

    CI installs pytest-timeout (which supersedes this); locally, a hung
    test — the robustness suite deliberately exercises hangs, deadlocks
    and worker kills — would otherwise wedge the whole run.  A stuck test
    thread cannot be interrupted politely, so on expiry the watchdog
    reports the offender and aborts the process.
    """
    if _HAVE_TIMEOUT_PLUGIN or _FALLBACK_TIMEOUT_S <= 0:
        yield
        return

    def expired():
        message = (
            f"\n[conftest watchdog] test {request.node.nodeid} exceeded "
            f"{_FALLBACK_TIMEOUT_S:g}s (set REPRO_TEST_TIMEOUT to adjust); "
            "aborting the test run\n"
        )
        # Suspend pytest's fd-level capture first, or the message dies in
        # a capture buffer that os._exit never replays.
        capman = request.config.pluginmanager.getplugin("capturemanager")
        try:
            if capman is not None:
                capman.suspend_global_capture(in_=True)
        except Exception:
            pass
        os.write(2, message.encode())
        os._exit(70)

    timer = threading.Timer(_FALLBACK_TIMEOUT_S, expired)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


@pytest.fixture
def small_arch():
    """An 8-SM GPU with no launch latency, for fast deterministic tests."""
    return TESLA_V100.with_overrides(
        name="test-gpu",
        num_sms=8,
        kernel_launch_latency_us=0.0,
        kernel_dispatch_latency_us=0.0,
    )


@pytest.fixture
def small_cost_model(small_arch):
    """Cost model for the small test GPU with jitter disabled."""
    return CostModel(arch=small_arch, duration_jitter=0.0)


@pytest.fixture
def v100_cost_model():
    """Cost model for the paper's Tesla V100."""
    return CostModel(arch=TESLA_V100)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
