"""Shared fixtures for the test suite.

Tests that exercise the simulator use a scaled-down GPU (8 SMs) so pipelines
with a handful of thread blocks already show multi-wave behaviour and run in
milliseconds; architecture-accuracy tests use the real V100 preset.
"""

import numpy as np
import pytest

from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long multi-mode sweep tests; the fast CI lane deselects them "
        'with -m "not slow"',
    )


@pytest.fixture
def small_arch():
    """An 8-SM GPU with no launch latency, for fast deterministic tests."""
    return TESLA_V100.with_overrides(
        name="test-gpu",
        num_sms=8,
        kernel_launch_latency_us=0.0,
        kernel_dispatch_latency_us=0.0,
    )


@pytest.fixture
def small_cost_model(small_arch):
    """Cost model for the small test GPU with jitter disabled."""
    return CostModel(arch=small_arch, duration_jitter=0.0)


@pytest.fixture
def v100_cost_model():
    """Cost model for the paper's Tesla V100."""
    return CostModel(arch=TESLA_V100)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
