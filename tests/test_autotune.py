"""Tests for the ``repro.tune`` autotuning subsystem.

Pins the revived autotuner's contract:

* search spaces validate their axes and lower candidates to the exact
  ``(graph, point)`` pairs ``Session.sweep`` evaluates, with
  deterministic graph names per tile choice;
* strategies are deterministic (same seed → same trajectory → same
  winner) and identical across serial/thread/process sweep modes;
* tuner reruns replay every previously-visited point from the sweep
  cache — zero novel simulations, bit-identical trajectory;
* successive halving never persists partial results: tuner-populated
  store entries are byte-identical to entries a direct ``Session.sweep``
  of the same points writes;
* ``TUNED_CONFIGS.json`` round-trips through the resolver and model
  constructors (``tuned=True``), with the documented one-time V100
  fallback warning;
* the legacy ``repro.dsl.AutoTuner`` shim keeps its surface and raises
  structured :class:`~repro.errors.TuningError` instead of bare
  ``KeyError``.
"""

from __future__ import annotations

import warnings

import pytest

from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import PolicySpec
from repro.dsl import AutoTuner, TuningResult
from repro.errors import ReproError, TuningError
from repro.gpu import resolve_arch
from repro.kernels.gemm import GemmConfig
from repro.models.config import TransformerConfig
from repro.models.llama_mlp import LlamaMlp
from repro.models.mlp import GptMlp
from repro.pipeline import Session, SweepPoint
from repro.service import SweepResultStore
from repro.tune import (
    DEFAULT_TILE,
    GridSearch,
    RandomSearch,
    SearchSpace,
    SuccessiveHalving,
    TileChoice,
    TunedConfigTable,
    TunedEntry,
    Tuner,
    gpt3_mlp_space,
    reset_default_table,
    tuned_gemm_configs,
)
from repro.tune.presets import mlp_tile_grid
from repro.tune.table import DEFAULT_TABLE_PATH, TUNED_CONFIGS_ENV

TINY = TransformerConfig(name="tiny-tune", hidden=256, layers=2, tensor_parallel=8)


def tiny_space(
    arches=("V100", "A100"),
    policies=("TileSync", "RowSync"),
    tiles=4,
):
    """A small GPT-3-shaped space that simulates in well under a second."""
    return gpt3_mlp_space(
        batch_seq=96,
        config=TINY,
        arches=arches,
        policies=policies,
        tile_choices=mlp_tile_grid("mlp_gemm1", "mlp_gemm2")[:tiles],
    )


@pytest.fixture()
def isolated_table(tmp_path, monkeypatch):
    """Point the process-wide table at a temporary path, reset around."""
    path = tmp_path / "tuned.json"
    monkeypatch.setenv(TUNED_CONFIGS_ENV, str(path))
    reset_default_table()
    yield path
    reset_default_table()


# ----------------------------------------------------------------------
# Search spaces
# ----------------------------------------------------------------------
class TestSearchSpace:
    def test_axes_are_validated(self):
        builder = lambda configs: None  # noqa: E731 - never called
        with pytest.raises(TuningError):
            SearchSpace(name="", builder=builder)
        with pytest.raises(TuningError):
            SearchSpace(name="x", builder=builder, tile_choices=())
        with pytest.raises(TuningError):
            SearchSpace(name="x", builder=builder, policies=())
        with pytest.raises(TuningError):
            SearchSpace(name="x", builder=builder, arches=())
        with pytest.raises(TuningError):
            SearchSpace(
                name="x",
                builder=builder,
                tile_choices=(DEFAULT_TILE, TileChoice("default", None)),
            )

    def test_tuning_error_is_a_repro_error(self):
        assert issubclass(TuningError, ReproError)
        with pytest.raises(ReproError):
            TileChoice("")

    def test_candidates_enumerate_arch_major_and_deterministically(self):
        space = tiny_space(tiles=3)
        candidates = space.candidates()
        assert len(candidates) == len(space) == 2 * 3 * 2
        assert candidates == space.candidates()
        arches = [resolve_arch(c.arch).name for c in candidates]
        assert arches == ["Tesla V100"] * 6 + ["A100"] * 6
        # Within one arch: tile-major, then policy.
        first_arch = candidates[:6]
        assert [c.tile.label for c in first_arch] == [
            "default", "default", "128x128/k1.1", "128x128/k1.1",
            "128x128/k2.1", "128x128/k2.1",
        ]
        assert [c.policy for c in first_arch] == ["TileSync", "RowSync"] * 3

    def test_graphs_are_memoized_and_renamed_per_tile(self):
        space = tiny_space(tiles=3)
        default = space.graph_for(DEFAULT_TILE)
        assert default.name == "mlp_tiny-tune_b96"
        assert space.graph_for(DEFAULT_TILE) is default

        tile = space.tile_choices[1]
        renamed = space.graph_for(tile)
        assert renamed.name == f"mlp_tiny-tune_b96@{tile.label}"
        assert space.graph_for(tile) is renamed
        # Same structure, different split-K -> different fingerprints
        # (the name itself is excluded from the structural state).
        other = space.graph_for(space.tile_choices[2])
        assert renamed.structural_fingerprint() != other.structural_fingerprint()
        assert renamed.renamed(other.name).structural_fingerprint() == (
            renamed.structural_fingerprint()
        )

    def test_tile_choice_canonicalizes_configs(self):
        config = GemmConfig(tile_m=128, tile_n=128, tile_k=32, split_k=1)
        choice = TileChoice("t", (("b_stage", config), ("a_stage", config)))
        assert [stage for stage, _ in choice.configs] == ["a_stage", "b_stage"]
        assert TileChoice.of("t", {"b_stage": config, "a_stage": config}) == choice
        assert choice.config_map() == {"a_stage": config, "b_stage": config}
        assert DEFAULT_TILE.config_map() is None


# ----------------------------------------------------------------------
# Strategies (driven by a fake evaluate)
# ----------------------------------------------------------------------
class TestStrategies:
    def _record(self, times):
        """An evaluate stub scoring candidates by their tile/policy order."""
        batches = []

        def evaluate(batch, rung):
            batches.append((rung, list(batch)))
            return [times[c] for c in batch]

        return batches, evaluate

    def test_grid_visits_every_candidate_once(self):
        space = tiny_space(arches=("V100",), tiles=3)
        candidates = space.candidates()
        times = {c: float(i) for i, c in enumerate(candidates)}
        batches, evaluate = self._record(times)
        GridSearch().run(candidates, evaluate)
        assert len(batches) == 1
        assert batches[0] == (0, list(candidates))

    def test_random_search_is_seed_deterministic(self):
        space = tiny_space(arches=("V100",), tiles=4)
        candidates = space.candidates()
        times = {c: float(i) for i, c in enumerate(candidates)}

        def sample(seed):
            batches, evaluate = self._record(times)
            RandomSearch(samples=3, seed=seed).run(candidates, evaluate)
            return batches[0][1]

        assert sample(7) == sample(7)
        assert sample(7) != sample(8)
        # Oversampling clamps to the space.
        batches, evaluate = self._record(times)
        RandomSearch(samples=10_000).run(candidates, evaluate)
        assert sorted(batches[0][1], key=candidates.index) == list(candidates)
        with pytest.raises(TuningError):
            RandomSearch(samples=0)

    def test_halving_keeps_per_arch_survivors(self):
        space = tiny_space(arches=("V100", "A100"), tiles=4)
        candidates = space.candidates()
        # Score so the *last* candidate of each arch group is fastest.
        times = {c: float(len(candidates) - i) for i, c in enumerate(candidates)}
        batches, evaluate = self._record(times)
        SuccessiveHalving(eta=2).run(candidates, evaluate)

        assert [rung for rung, _ in batches] == list(range(len(batches)))
        assert batches[0][1] == list(candidates)
        # Every rung halves each arch group: 8+8 -> 4+4 -> 2+2 -> 1+1.
        assert [len(batch) for _, batch in batches] == [16, 8, 4, 2]
        final = batches[-1][1]
        assert [resolve_arch(c.arch).name for c in final] == ["Tesla V100", "A100"]
        assert all(times[c] == min(times[d] for d in candidates if d.arch == c.arch)
                   for c in final)
        with pytest.raises(TuningError):
            SuccessiveHalving(eta=1)


# ----------------------------------------------------------------------
# The tuner
# ----------------------------------------------------------------------
class TestTuner:
    def test_grid_search_finds_the_per_arch_winner(self):
        space = tiny_space()
        report = Tuner().tune(space, GridSearch())

        # One baseline per arch plus the full grid.
        assert len(report.trials) == len(space) + 2
        searched = [t for t in report.trials if not t.is_baseline]
        assert len(searched) == len(space)
        for arch in ("Tesla V100", "A100"):
            best = report.best_for(arch)
            assert best.time_us == min(
                t.time_us for t in searched if t.arch == arch
            )
            assert report.baseline_for(arch) > 0
        assert set(report.winners()) == {"Tesla V100", "A100"}

        by_arch = {entry.arch: entry for entry in report.entries}
        assert set(by_arch) == {"Tesla V100", "A100"}
        for arch, entry in by_arch.items():
            assert entry.workload == space.name
            assert entry.time_us == report.best_for(arch).time_us
            assert entry.baseline_us == report.baseline_for(arch)
            assert entry.default_best_us is not None
            assert entry.time_us <= entry.default_best_us

        with pytest.raises(TuningError):
            report.best_for("H100-SXM")
        with pytest.raises(TuningError):
            report.baseline_for("H100-SXM")

    def test_modes_produce_identical_trajectories(self):
        # The same search must be bit-identical in every sweep mode.
        reports = {
            mode: Tuner(mode=mode).tune(tiny_space(), SuccessiveHalving(eta=2))
            for mode in ("serial", "thread", "process")
        }
        serial = reports["serial"]
        assert serial.trajectory() == reports["thread"].trajectory()
        assert serial.trajectory() == reports["process"].trajectory()
        assert serial.entries == reports["thread"].entries
        assert serial.entries == reports["process"].entries

    def test_warm_rerun_replays_everything_from_cache(self):
        tuner = Tuner(mode="serial")
        space = tiny_space()
        cold = tuner.tune(space, SuccessiveHalving(eta=2))
        # Halving re-measures survivors every rung, so even the cold
        # search partly replays; every simulation it did was novel.
        assert cold.novel_simulations > 0
        assert cold.cache_hits > 0
        assert cold.novel_simulations + cold.cache_hits == len(cold.trials)

        warm = tuner.tune(space, SuccessiveHalving(eta=2))
        assert warm.novel_simulations == 0
        assert warm.cache_hits == len(warm.trials)
        assert all(trial.cached for trial in warm.trials)
        assert warm.trajectory() == cold.trajectory()
        assert warm.entries == cold.entries

    def test_llama_space_tunes_in_thread_mode(self):
        # SwiGLU closures keep LLaMA graphs out of process mode and the
        # store, but in-memory tuning works; exercise the preset wiring.
        from repro.tune import llama_mlp_space

        space = llama_mlp_space(
            batch_seq=96,
            config=TransformerConfig(
                name="tiny-llama", hidden=256, layers=2, tensor_parallel=8, swiglu=True
            ),
            arches=("A100",),
            policies=("TileSync",),
            tile_choices=mlp_tile_grid("llama_gemm1", "llama_gemm2")[:3],
        )
        report = Tuner(mode="thread").tune(space, GridSearch())
        assert len(report.entries) == 1
        assert report.entries[0].time_us <= report.entries[0].baseline_us


# ----------------------------------------------------------------------
# Store parity: tuner-populated entries == direct-sweep entries
# ----------------------------------------------------------------------
class TestStoreParity:
    def test_halving_persists_byte_identical_entries(self, tmp_path):
        # A halving search through a store-backed session...
        tuner_store = SweepResultStore(tmp_path / "tuner")
        tuner = Tuner(result_store=tuner_store, mode="serial")
        tuner.tune(tiny_space(), SuccessiveHalving(eta=2))
        tuner_files = {
            path.relative_to(tuner_store.root): path.read_bytes()
            for path in tuner_store.root.glob("??/*.json")
        }
        assert tuner_files

        # ...and a direct Session.sweep of the full grid through an
        # *independently built* space (fresh graphs, same parameters).
        direct_store = SweepResultStore(tmp_path / "direct")
        session = Session(result_store=direct_store)
        space = tiny_space()
        work = [(space.graph_for(DEFAULT_TILE), space.baseline_point(arch))
                for arch in space.arches]
        work += [(space.graph_for(c.tile), space.point_for(c))
                 for c in space.candidates()]
        session.sweep(work, mode="serial")
        direct_files = {
            path.relative_to(direct_store.root): path.read_bytes()
            for path in direct_store.root.glob("??/*.json")
        }

        # Halving visits a subset of the grid; every entry it persisted
        # must be byte-identical to the direct sweep's entry.
        assert set(tuner_files) <= set(direct_files)
        for name, payload in tuner_files.items():
            assert payload == direct_files[name], f"store entry diverged: {name}"

    def test_fresh_process_replays_tuned_points_from_store(self, tmp_path):
        store = SweepResultStore(tmp_path / "results")
        report = Tuner(result_store=store, mode="serial").tune(
            tiny_space(), SuccessiveHalving(eta=2)
        )

        # A fresh session over the same store replays the whole search.
        replay = Tuner(result_store=SweepResultStore(store.root), mode="serial").tune(
            tiny_space(), SuccessiveHalving(eta=2)
        )
        assert replay.novel_simulations == 0
        assert replay.store_hits > 0
        assert replay.trajectory() == report.trajectory()
        assert replay.entries == report.entries


# ----------------------------------------------------------------------
# The tuned-config table and model resolution
# ----------------------------------------------------------------------
class TestTunedConfigTable:
    CONFIG1 = GemmConfig(tile_m=256, tile_n=128, tile_k=32, split_k=2)
    CONFIG2 = GemmConfig(tile_m=128, tile_n=256, tile_k=32, split_k=1)

    def _entry(self, workload="mlp_tiny-tune_b96", arch="A100"):
        return TunedEntry(
            workload=workload,
            arch=arch,
            policy="TileSync",
            time_us=10.0,
            baseline_us=20.0,
            default_best_us=12.5,
            tile="256x128/k2.1",
            configs=(("mlp_gemm1", self.CONFIG1), ("mlp_gemm2", self.CONFIG2)),
        )

    def test_round_trips_through_json_and_disk(self, tmp_path):
        table = TunedConfigTable([
            self._entry(),
            TunedEntry(workload="w", arch="H100-SXM", policy="RowSync",
                       time_us=1.0, baseline_us=2.0),  # default tile won
        ])
        assert TunedConfigTable.from_json(table.to_json()).entries() == table.entries()

        path = tmp_path / "tuned.json"
        table.save(path)
        loaded = TunedConfigTable.load(path)
        assert loaded.entries() == table.entries()
        entry = loaded.get("mlp_tiny-tune_b96", "A100")
        assert entry is not None
        assert entry.config_map() == {"mlp_gemm1": self.CONFIG1, "mlp_gemm2": self.CONFIG2}
        assert entry.improvement_vs_default == pytest.approx(1.0 - 10.0 / 12.5)
        assert loaded.get("w", "H100-SXM").config_map() is None
        assert loaded.get("w", "H100-SXM").improvement_vs_default is None

    def test_malformed_tables_raise_structured_errors(self, tmp_path):
        with pytest.raises(TuningError):
            TunedConfigTable.from_json({"version": "tuned-configs/v0", "entries": []})
        with pytest.raises(TuningError):
            TunedConfigTable.from_json({"version": "tuned-configs/v1", "entries": [{}]})
        with pytest.raises(TuningError):
            TunedEntry.from_json({
                "workload": "w", "arch": "A100", "policy": "p",
                "time_us": 1.0, "baseline_us": 2.0,
                "configs": {"stage": {"tile_q": 64}},
            })
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        with pytest.raises(TuningError):
            TunedConfigTable.load(corrupt)
        # A missing file is an empty table, not an error.
        assert len(TunedConfigTable.load(tmp_path / "missing.json")) == 0

    def test_committed_artifact_round_trips_byte_stably(self, tmp_path):
        table = TunedConfigTable.load(DEFAULT_TABLE_PATH)
        assert len(table) > 0
        # Every committed entry names a non-V100 arch and beats StreamSync.
        for entry in table.entries():
            assert entry.arch != "Tesla V100"
            assert entry.time_us < entry.baseline_us
            assert tuned_gemm_configs(entry.workload, entry.arch, table) == entry.config_map()
        # Serialization is canonical: saving reproduces the file byte-for-byte.
        copy = tmp_path / "roundtrip.json"
        table.save(copy)
        assert copy.read_bytes() == DEFAULT_TABLE_PATH.read_bytes()

    def test_fallback_warns_once_per_pair_but_never_on_v100(self, isolated_table):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert tuned_gemm_configs("some_workload", "V100") is None
            assert tuned_gemm_configs("some_workload", "A100") is None
            assert tuned_gemm_configs("some_workload", "A100") is None
            assert tuned_gemm_configs("some_workload", "H100-SXM") is None
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(fallback) == 2  # one per (workload, arch), V100 silent
        assert "A100" in str(fallback[0].message)
        assert "V100-tuned" in str(fallback[0].message)

    def test_models_resolve_tuned_configs_per_arch(self, isolated_table):
        TunedConfigTable([self._entry()]).save(isolated_table)
        reset_default_table()

        a100 = resolve_arch("A100")
        tuned = GptMlp(config=TINY, batch_seq=96, arch=a100, tuned=True)
        assert tuned.gemm_configs == (self.CONFIG1, self.CONFIG2)
        # The graphs the tuned model builds use those tile configs.
        graph = tuned.to_graph()
        assert graph.stage("mlp_gemm1").kernel.config == self.CONFIG1
        assert graph.stage("mlp_gemm2").kernel.config == self.CONFIG2

        # Untuned construction ignores the table entirely.
        untuned = GptMlp(config=TINY, batch_seq=96, arch=a100)
        assert untuned.gemm_configs is None
        # V100 falls back to the built-in defaults silently.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            v100 = GptMlp(config=TINY, batch_seq=96, tuned=True)
        assert v100.gemm_configs is None
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        # Explicit configs always win over the table.
        pinned = GptMlp(
            config=TINY, batch_seq=96, arch=a100, tuned=True,
            gemm_configs=(self.CONFIG2, self.CONFIG1),
        )
        assert pinned.gemm_configs == (self.CONFIG2, self.CONFIG1)

    def test_llama_resolution_uses_llama_stages(self, isolated_table):
        entry = TunedEntry(
            workload="llama_mlp_tiny-llama_b96",
            arch="A100",
            policy="TileSync",
            time_us=1.0,
            baseline_us=2.0,
            tile="t",
            configs=(("llama_gemm1", self.CONFIG1), ("llama_gemm2", self.CONFIG2)),
        )
        TunedConfigTable([entry]).save(isolated_table)
        reset_default_table()
        llama = LlamaMlp(
            config=TransformerConfig(
                name="tiny-llama", hidden=256, layers=2, tensor_parallel=8, swiglu=True
            ),
            batch_seq=96,
            arch=resolve_arch("A100"),
            tuned=True,
        )
        assert llama.gemm_configs == (self.CONFIG1, self.CONFIG2)


# ----------------------------------------------------------------------
# SweepPoint optimizations axis
# ----------------------------------------------------------------------
class TestSweepPointOptimizations:
    def test_labels_carry_the_flag_suffix(self):
        base = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        assert base.label() == "cusync:TileSync@Tesla V100"
        vanilla = SweepPoint(
            scheme="cusync", policy="TileSync", arch="V100",
            optimizations=OptimizationFlags.none(),
        )
        assert vanilla.label() == "cusync:TileSync+none@Tesla V100"
        # Non-cusync schemes ignore the flags in labels and keys alike.
        baseline = SweepPoint(
            scheme="streamsync", policy=None, arch="V100",
            optimizations=OptimizationFlags.none(),
        )
        assert baseline.label() == "streamsync@Tesla V100"

    def test_flags_separate_cache_entries(self):
        graph = GptMlp(config=TINY, batch_seq=96).to_graph()
        session = Session()
        automatic = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        vanilla = SweepPoint(
            scheme="cusync", policy="TileSync", arch="V100",
            optimizations=OptimizationFlags.none(),
        )
        first = session.sweep_point(graph, automatic)
        assert session.sweep_cache_misses == 1
        second = session.sweep_point(graph, vanilla)
        assert session.sweep_cache_misses == 2  # distinct cache identity
        assert not second.cached
        # Vanilla (no optimizations) must not beat the default W/R/T path.
        assert second.total_time_us >= first.total_time_us
        # Replays hit the right entry.
        assert session.sweep_point(graph, vanilla).cached


# ----------------------------------------------------------------------
# The legacy DSL shim
# ----------------------------------------------------------------------
class TestAutoTunerShim:
    def test_tunes_a_workload_with_the_historic_surface(self):
        workload = GptMlp(config=TINY, batch_seq=96)
        result = AutoTuner(include_streamk=True).tune(workload)
        assert result.workload == workload.name
        assert {"StreamSync", "StreamK", "TileSync", "RowSync"} <= set(result.times_us)
        assert result.best_policy in {"TileSync", "RowSync"}
        assert result.best_time_us == result.times_us[result.best_policy]
        assert result.best_time_us <= min(
            result.times_us["TileSync"], result.times_us["RowSync"]
        )
        assert result.improvement == pytest.approx(
            (result.streamsync_time_us - result.best_time_us)
            / result.streamsync_time_us
        )
        assert workload.name in result.summary()
        assert "<= best" in result.summary()

    def test_accepts_policy_specs(self):
        result = AutoTuner(policies=[PolicySpec("TileSync")]).tune(
            GptMlp(config=TINY, batch_seq=96)
        )
        assert result.best_policy == "TileSync"

    def test_empty_policy_list_is_a_structured_error(self):
        with pytest.raises(TuningError):
            AutoTuner(policies=[]).tune(GptMlp(config=TINY, batch_seq=96))

    def test_unmeasured_quantities_raise_tuning_errors(self):
        sparse = TuningResult(workload="w", times_us={"RowSync": 1.0}, best_policy="TileSync")
        with pytest.raises(TuningError):
            sparse.best_time_us
        with pytest.raises(TuningError):
            sparse.streamsync_time_us
        with pytest.raises(TuningError):
            sparse.improvement
        # Structured ReproError, never a bare KeyError.
        try:
            sparse.streamsync_time_us
        except ReproError as exc:
            assert not isinstance(exc, KeyError)
            assert "StreamSync" in str(exc)
