"""Tests for the content-addressed sweep-result store.

Covers the store's three promises (never wrong, never crash, never
torn), the session's persistent tier built on it, and the acceptance
bar: a fresh process replays a persisted arch-comparison grid
bit-identically with zero simulations.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.models.config import TransformerConfig
from repro.models.mlp import GptMlp
from repro.pipeline import Session, SweepPoint, sweep_archs
from repro.service import (
    STORE_VERSION,
    SweepResultStore,
    content_address,
    decode_result,
    encode_result,
    normalize_key,
)

TINY = TransformerConfig(name="tiny-store", hidden=256, layers=2, tensor_parallel=8)


@pytest.fixture()
def workload():
    return GptMlp(config=TINY, batch_seq=96)


@pytest.fixture()
def graph(workload):
    return workload.to_graph()


@pytest.fixture()
def store(tmp_path):
    return SweepResultStore(tmp_path / "results")


def _grid(graph):
    return sweep_archs(graph, ("V100", "A100"), policies=("TileSync", "RowSync"))


def _entry_files(store):
    return sorted(store.root.glob("??/*.json"))


class TestRoundTrip:
    def test_put_get_round_trips_bit_identically(self, graph, store):
        session = Session(result_store=store)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        fresh = session.sweep([(graph, point)], mode="serial")[0]
        assert store.writes == 1

        key = session.sweep_store_key(graph, point)
        reread = SweepResultStore(store.root).get(key)
        assert reread is not None and reread.cached
        assert reread.total_time_us == fresh.total_time_us
        assert reread.total_wait_time_us == fresh.total_wait_time_us
        assert reread.kernel_durations_us == fresh.kernel_durations_us
        assert reread.arch_name == fresh.arch_name
        assert reread.scheme == fresh.scheme

    def test_fresh_session_replays_from_disk_without_simulating(self, workload, store):
        cold = Session(result_store=store).sweep(_grid(workload.to_graph()), mode="serial")
        assert store.writes == len(cold)

        replay_store = SweepResultStore(store.root)
        session = Session(result_store=replay_store)
        warm = session.sweep(_grid(workload.to_graph()), mode="serial")
        assert session.sweep_store_hits == len(cold)
        assert session.sweep_cache_misses == 0
        assert replay_store.hits == len(cold)
        assert warm == cold
        assert all(result.cached for result in warm)

    def test_content_address_is_stable_and_sharded(self, graph, store):
        session = Session(result_store=store)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        key = session.sweep_store_key(graph, point)
        address = content_address(key)
        assert address == content_address(key)
        session.sweep([(graph, point)], mode="serial")
        (entry,) = _entry_files(store)
        assert entry.name == f"{address}.json"
        assert entry.parent.name == address[:2]

    def test_encode_decode_preserve_float_precision(self, graph, store):
        session = Session(result_store=store)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        result = session.sweep([(graph, point)], mode="serial")[0]
        decoded = decode_result(json.loads(json.dumps(encode_result(result))))
        assert decoded.total_time_us == result.total_time_us
        assert decoded.kernel_durations_us == result.kernel_durations_us


class TestRobustness:
    """Corrupt, truncated, alien and stale entries all read as misses."""

    def _seeded(self, graph, store):
        session = Session(result_store=store)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        session.sweep([(graph, point)], mode="serial")
        key = session.sweep_store_key(graph, point)
        (entry,) = _entry_files(store)
        return key, entry

    def _assert_miss(self, store, key, *, corrupt=0, ignored=0):
        reader = SweepResultStore(store.root)
        assert reader.get(key) is None
        assert reader.hits == 0
        assert reader.misses == 1
        assert reader.corrupt_entries == corrupt
        assert reader.ignored_versions == ignored

    def test_truncated_entry_is_a_miss(self, graph, store):
        key, entry = self._seeded(graph, store)
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        self._assert_miss(store, key, corrupt=1)

    def test_garbage_bytes_are_a_miss(self, graph, store):
        key, entry = self._seeded(graph, store)
        entry.write_bytes(b"\x00\xff not json at all \x80")
        self._assert_miss(store, key, corrupt=1)

    def test_partial_entry_is_a_miss(self, graph, store):
        key, entry = self._seeded(graph, store)
        payload = json.loads(entry.read_text())
        del payload["result"]
        entry.write_text(json.dumps(payload))
        self._assert_miss(store, key, corrupt=1)

    def test_wrong_field_types_are_a_miss(self, graph, store):
        key, entry = self._seeded(graph, store)
        payload = json.loads(entry.read_text())
        payload["result"]["total_time_us"] = "fast"
        entry.write_text(json.dumps(payload))
        self._assert_miss(store, key, corrupt=1)

    def test_version_mismatch_is_ignored(self, graph, store):
        key, entry = self._seeded(graph, store)
        payload = json.loads(entry.read_text())
        payload["version"] = STORE_VERSION + 1
        entry.write_text(json.dumps(payload))
        self._assert_miss(store, key, ignored=1)

    def test_key_echo_mismatch_is_a_miss(self, graph, store):
        # A file sitting at this key's address but echoing a different key
        # (hash collision, copied-over file) must never be returned.
        key, entry = self._seeded(graph, store)
        payload = json.loads(entry.read_text())
        payload["key"][3] = "streamsync"
        entry.write_text(json.dumps(payload))
        self._assert_miss(store, key, corrupt=1)

    def test_missing_entry_is_a_plain_miss(self, graph, store):
        key, entry = self._seeded(graph, store)
        entry.unlink()
        self._assert_miss(store, key)

    def test_corrupt_entry_heals_on_next_sweep(self, graph, workload, store):
        key, entry = self._seeded(graph, store)
        entry.write_bytes(b"garbage")
        session = Session(result_store=SweepResultStore(store.root))
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        result = session.sweep([(workload.to_graph(), point)], mode="serial")[0]
        assert result.ok and not result.cached
        # The re-simulation rewrote a valid entry over the corrupt one.
        healed = SweepResultStore(store.root).get(key)
        assert healed is not None
        assert healed.total_time_us == result.total_time_us

    def test_non_result_values_are_rejected_not_raised(self, store):
        assert store.put(("sweep-result/v1", "k"), "not a result") is False
        assert store.rejected_writes == 1
        assert store.get(("unhashable", object())) is None  # bad key: miss
        assert store.misses == 1

    def test_concurrent_writers_never_corrupt(self, workload, store):
        session = Session(result_store=None)
        graph = workload.to_graph()
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        result = session.sweep([(graph, point)], mode="serial")[0]
        key = session.sweep_store_key(graph, point)

        def hammer(_):
            return store.put(key, result)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(hammer, range(64)))
        assert all(outcomes)
        assert store.writes == 64
        # Whatever interleaving happened, the surviving entry is complete.
        reader = SweepResultStore(store.root)
        replay = reader.get(key)
        assert replay is not None and reader.corrupt_entries == 0
        assert replay.total_time_us == result.total_time_us
        # No stray temp files leaked.
        assert list(store.root.glob("**/*.tmp")) == []

    def test_unportable_points_bypass_the_store(self, workload, store):
        from repro.pipeline import Edge, PipelineGraph

        base = workload.to_graph()
        shift = 0  # captured: the range map below is a true closure
        edges = [
            Edge(
                edge.producer,
                edge.consumer,
                edge.tensor,
                range_map=lambda rows, cols, batch: (rows, cols, batch + shift),
            )
            for edge in base.edges
        ]
        closure = PipelineGraph(stages=base.stages, edges=edges)
        assert closure.structural_fingerprint() is None

        session = Session(result_store=store)
        point = SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        assert session.sweep_store_key(closure, point) is None
        result = session.sweep([(closure, point)], mode="serial")[0]
        assert result.ok
        assert store.writes == 0 and len(store) == 0


class TestFreshProcessReplay:
    """Acceptance: a brand-new process replays the persisted grid
    bit-identically with zero simulations."""

    SCRIPT = textwrap.dedent(
        """
        import json, sys
        from repro.models.config import TransformerConfig
        from repro.models.mlp import GptMlp
        from repro.pipeline import Session, sweep_archs
        from repro.service import SweepResultStore

        root, expect_replay = sys.argv[1], sys.argv[2] == "replay"
        config = TransformerConfig(name="tiny-store", hidden=256, layers=2, tensor_parallel=8)
        graph = GptMlp(config=config, batch_seq=96).to_graph()
        work = sweep_archs(graph, ("V100", "A100"), policies=("TileSync", "RowSync"))
        store = SweepResultStore(root)
        session = Session(result_store=store)
        results = session.sweep(work, mode="serial")
        if expect_replay:
            assert session.sweep_store_hits == len(work), session.sweep_store_hits
            assert session.sweep_cache_misses == 0, session.sweep_cache_misses
            assert store.writes == 0
            assert all(r.cached for r in results)
        else:
            assert store.writes == len(work)
        print(json.dumps([
            {
                "scheme": r.scheme,
                "arch": r.arch_name,
                "total": r.total_time_us,
                "wait": r.total_wait_time_us,
                "kernels": [[n, d] for n, d in r.kernel_durations_us],
            }
            for r in results
        ]))
        """
    )

    def _run(self, root: Path, phase: str) -> str:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, str(root), phase],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        return completed.stdout.strip().splitlines()[-1]

    def test_replay_across_processes_is_bit_identical(self, tmp_path):
        root = tmp_path / "results"
        cold = self._run(root, "cold")
        warm = self._run(root, "replay")
        # String equality of the JSON dumps is the strongest form of
        # bit-identity: every float serialized exactly the same.
        assert warm == cold


class TestAudit:
    """Offline integrity audit mirrors the read path's classification."""

    def _seed_grid(self, workload, store):
        session = Session(result_store=store)
        session.sweep(_grid(workload.to_graph()), mode="serial")
        entries = _entry_files(store)
        assert len(entries) >= 3
        return entries

    def _battery(self, entries):
        """Corrupt three entries three different ways; return the victims."""
        garbage, stale, echo = entries[0], entries[1], entries[2]
        garbage.write_bytes(b"\x00\xff not json \x80")
        payload = json.loads(stale.read_text())
        payload["version"] = STORE_VERSION + 1
        stale.write_text(json.dumps(payload))
        payload = json.loads(echo.read_text())
        payload["key"][3] = "streamsync"  # echo no longer matches the address
        echo.write_text(json.dumps(payload))
        return garbage, stale, echo

    def test_audit_counts_the_corruption_battery(self, workload, store):
        entries = self._seed_grid(workload, store)
        garbage, stale, echo = self._battery(entries)
        audit = SweepResultStore(store.root).audit()
        assert audit.scanned == len(entries)
        assert audit.valid == len(entries) - 3
        assert audit.corrupt == 2
        assert audit.version_mismatched == 1
        assert audit.quarantined == 0
        assert not audit.clean
        assert set(audit.corrupt_paths) == {str(garbage), str(echo)}
        assert audit.version_mismatched_paths == (str(stale),)
        assert audit.summary()["corrupt"] == 2
        assert "2 corrupt" in audit.describe()
        # The walk is read-only: nothing moved, nothing deleted.
        assert _entry_files(store) == entries

    def test_clean_store_audits_clean(self, workload, store):
        entries = self._seed_grid(workload, store)
        audit = store.audit()
        assert audit.clean
        assert audit.valid == audit.scanned == len(entries)
        assert audit.corrupt_paths == ()

    def test_quarantine_moves_corrupt_out_of_the_read_path(self, workload, store):
        from repro.service import QUARANTINE_DIR

        entries = self._seed_grid(workload, store)
        garbage, stale, echo = self._battery(entries)
        audit = store.audit(quarantine=True)
        assert audit.quarantined == audit.corrupt == 2
        assert audit.clean
        # Corrupt files moved, never deleted; version mismatch stays put.
        assert not garbage.exists() and not echo.exists()
        assert (store.root / QUARANTINE_DIR / garbage.name).exists()
        assert (store.root / QUARANTINE_DIR / echo.name).exists()
        assert stale.exists()
        # Quarantined entries are invisible to the normal read/walk path.
        assert len(_entry_files(store)) == len(entries) - 2
        reaudit = SweepResultStore(store.root).audit()
        assert reaudit.scanned == len(entries) - 2
        assert reaudit.corrupt == 0
        # Reads of the quarantined keys are now plain misses, not
        # corruption events.
        reader = SweepResultStore(store.root)
        for result in (
            reader.get(("sweep-result/v1", "missing")),
        ):
            assert result is None
        assert reader.corrupt_entries == 0

    def test_empty_or_missing_root_audits_clean(self, tmp_path):
        audit = SweepResultStore(tmp_path / "never-written").audit()
        assert audit.scanned == 0 and audit.clean


class TestAuditCli:
    """``python -m repro.service.audit`` wraps the audit for cron/CI."""

    def _seed_and_corrupt(self, workload, store):
        session = Session(result_store=store)
        session.sweep(_grid(workload.to_graph()), mode="serial")
        victim = _entry_files(store)[0]
        victim.write_bytes(b"garbage")
        return victim

    def test_cli_reports_corruption_and_exits_nonzero(self, workload, store, capsys):
        from repro.service.audit import main

        victim = self._seed_and_corrupt(workload, store)
        assert main([str(store.root)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert str(victim) in out
        assert victim.exists()  # report-only: nothing moved

    def test_cli_quarantine_then_clean(self, workload, store, capsys):
        from repro.service.audit import main

        victim = self._seed_and_corrupt(workload, store)
        assert main([str(store.root), "--quarantine"]) == 0
        assert not victim.exists()
        assert main([str(store.root)]) == 0  # read path is clean now
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_cli_json_output(self, workload, store, capsys):
        from repro.service.audit import main

        self._seed_and_corrupt(workload, store)
        assert main([str(store.root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt"] == 1
        assert len(payload["corrupt_paths"]) == 1

    def test_cli_rejects_missing_root(self, tmp_path):
        from repro.service.audit import main

        with pytest.raises(SystemExit) as info:
            main([str(tmp_path / "nowhere")])
        assert info.value.code == 2
