"""Fault-injection machinery, deadlock/livelock forensics, and the chaos
acceptance test.

The chaos test is the PR's headline invariant: a seeded fault plan that
faults well over 20% of a sweep's points, run with ``on_error="collect"``
and ``retries=2``, must return *every* point as either a bit-identical
:class:`SweepResult` (vs the fault-free sweep) or a structured
:class:`SweepFailure` — and must never write a poisoned cache entry.
"""

import math
import pickle
import time

import pytest

from repro.common.dim3 import Dim3
from repro.common.tiles import linearize
from repro.errors import (
    DeadlockError,
    InjectedCrashError,
    InjectedFaultError,
    LivelockError,
    SimulationError,
)
from repro.gpu.kernel import (
    KernelLaunch,
    Segment,
    SemPost,
    SemWait,
    ThreadBlockProgram,
    simple_kernel,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator
from repro.gpu.stream import Stream
from repro.models import GptMlp, TransformerConfig
from repro.pipeline import Session, SweepFailure, SweepResult
from repro.testing import FAULT_KINDS, FaultPlan, FaultSpec, active_fault_plan, inject_faults
from repro.testing.faults import run_point_with_faults

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        first = FaultPlan.seeded(32, seed=11, crash=0.1, error=0.2, hang=0.1)
        second = FaultPlan.seeded(32, seed=11, crash=0.1, error=0.2, hang=0.1)
        assert first.faults == second.faults

    def test_seeded_full_fraction_faults_every_point(self):
        plan = FaultPlan.seeded(16, seed=0, error=1.0)
        assert plan.fault_fraction(16) == 1.0
        assert all(spec.kind == "error" for spec in plan.faults)

    def test_fractions_over_one_rejected(self):
        with pytest.raises(SimulationError, match="fractions"):
            FaultPlan.seeded(4, seed=0, crash=0.7, error=0.7)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultSpec(kind="gremlin", point=0)

    def test_two_faults_per_point_rejected(self):
        with pytest.raises(SimulationError, match="two faults"):
            FaultPlan([FaultSpec(kind="error", point=0), FaultSpec(kind="hang", point=0)])

    def test_fault_fires_only_on_planned_attempts(self):
        plan = FaultPlan([FaultSpec(kind="error", point=2, attempts=(0, 1))])
        assert plan.fault_for(2, 0) is not None
        assert plan.fault_for(2, 1) is not None
        assert plan.fault_for(2, 2) is None
        assert plan.fault_for(3, 0) is None

    def test_plan_is_picklable(self):
        plan = FaultPlan.seeded(8, seed=3, crash=0.25, corrupt_result=0.25)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.faults == plan.faults
        assert clone.fault_points == plan.fault_points

    def test_inject_faults_installs_and_restores(self):
        assert active_fault_plan() is None
        plan = FaultPlan([FaultSpec(kind="error", point=0)])
        with inject_faults(plan):
            assert active_fault_plan() is plan
            inner = FaultPlan([])
            with inject_faults(inner):
                assert active_fault_plan() is inner
            assert active_fault_plan() is plan
        assert active_fault_plan() is None


class TestRunPointWithFaults:
    def _result(self):
        return SweepResult(
            scheme="cusync",
            policy="TileSync",
            arch_name="V100",
            total_time_us=1.0,
            total_wait_time_us=0.0,
            kernel_durations_us=(("k", 1.0),),
            graph_label="g",
        )

    def test_no_plan_is_a_passthrough(self):
        sentinel = object()
        assert run_point_with_faults(None, 0, 0, lambda: sentinel) is sentinel

    def test_unfaulted_point_is_a_passthrough(self):
        plan = FaultPlan([FaultSpec(kind="error", point=5)])
        sentinel = object()
        assert run_point_with_faults(plan, 0, 0, lambda: sentinel) is sentinel

    def test_error_fault_raises(self):
        plan = FaultPlan([FaultSpec(kind="error", point=0)])
        with pytest.raises(InjectedFaultError):
            run_point_with_faults(plan, 0, 0, self._result)

    def test_crash_fault_in_process_raises(self):
        plan = FaultPlan([FaultSpec(kind="crash", point=0)])
        with pytest.raises(InjectedCrashError):
            run_point_with_faults(plan, 0, 0, self._result, in_worker_process=False)

    def test_hang_fault_sleeps_then_evaluates(self):
        plan = FaultPlan([FaultSpec(kind="hang", point=0, hang_seconds=0.05)])
        started = time.monotonic()
        result = run_point_with_faults(plan, 0, 0, self._result)
        assert time.monotonic() - started >= 0.05
        assert isinstance(result, SweepResult)

    def test_corrupt_result_fault_produces_nan(self):
        plan = FaultPlan([FaultSpec(kind="corrupt_result", point=0)])
        result = run_point_with_faults(plan, 0, 0, self._result)
        assert math.isnan(result.total_time_us)


def _dependent_pair(grid, duration, memory):
    memory.alloc_semaphores("sems", grid.volume)

    def producer_program(tile):
        post = SemPost("sems", linearize(tile, grid))
        return ThreadBlockProgram(tile=tile, segments=[Segment(duration_us=duration, posts=[post])])

    def consumer_program(tile):
        wait = SemWait("sems", linearize(tile, grid), 1)
        return ThreadBlockProgram(tile=tile, segments=[Segment(duration_us=duration, waits=[wait])])

    producer = KernelLaunch("producer", grid, producer_program, stream=Stream(name="p"))
    consumer = KernelLaunch("consumer", grid, consumer_program, stream=Stream(name="c"))
    return producer, consumer


class TestSimulatorPostFaults:
    def test_drop_post_produces_deadlock_with_forensics(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        grid = Dim3(2, 1, 1)
        producer, consumer = _dependent_pair(grid, 1.0, memory)
        plan = FaultPlan([FaultSpec(kind="drop_post", point=0, post_index=0)])

        def evaluate():
            return GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [producer, consumer]
            )

        with pytest.raises(DeadlockError) as excinfo:
            run_point_with_faults(plan, 0, 0, evaluate)
        error = excinfo.value
        assert error.waiters
        waiter = error.waiters[0]
        assert waiter.array == "sems"
        assert waiter.required == 1
        assert waiter.observed == 0
        assert waiter.deficit == 1

    def test_dup_post_taints_the_result(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        grid = Dim3(2, 1, 1)
        producer, consumer = _dependent_pair(grid, 1.0, memory)
        plan = FaultPlan([FaultSpec(kind="dup_post", point=0, post_index=0)])

        def evaluate():
            return GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [producer, consumer]
            )

        with pytest.raises(InjectedFaultError, match="tainted"):
            run_point_with_faults(plan, 0, 0, evaluate)
        # The duplicated post really was applied twice.
        assert 2 in memory.snapshot_semaphores()["sems"]

    def test_unfired_post_fault_returns_clean_result(self, small_arch, small_cost_model):
        # post_index beyond the run's post count: the fault never fires
        # and the (trustworthy) result passes through.
        memory = GlobalMemory()
        grid = Dim3(2, 1, 1)
        producer, consumer = _dependent_pair(grid, 1.0, memory)
        plan = FaultPlan([FaultSpec(kind="drop_post", point=0, post_index=999)])

        def evaluate():
            return GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [producer, consumer]
            )

        result = run_point_with_faults(plan, 0, 0, evaluate)
        assert result.total_time_us > 0.0

    def test_fault_free_run_unaffected_by_other_points_fault(
        self, small_arch, small_cost_model
    ):
        plan = FaultPlan([FaultSpec(kind="drop_post", point=7, post_index=0)])

        def evaluate():
            memory = GlobalMemory()
            grid = Dim3(2, 1, 1)
            producer, consumer = _dependent_pair(grid, 1.0, memory)
            return GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [producer, consumer]
            )

        baseline = evaluate()
        faulted = run_point_with_faults(plan, 0, 0, evaluate)
        assert faulted.total_time_us == baseline.total_time_us


class TestDeadlockForensics:
    """Satellite: DeadlockError must name, per waiter, the semaphore array,
    index, required threshold and observed value."""

    def test_waiters_carry_semaphore_details(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        grid = Dim3(4, 2, 1)
        producer, consumer = _dependent_pair(grid, 10.0, memory)
        with pytest.raises(DeadlockError) as excinfo:
            GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [consumer, producer]
            )
        error = excinfo.value
        # Legacy field (stuck block names) is preserved...
        assert error.waiting_blocks
        assert all(isinstance(name, str) for name in error.waiting_blocks)
        # ...and the structured forensics ride alongside.
        assert error.waiters
        for waiter in error.waiters:
            assert waiter.array == "sems"
            assert waiter.required == 1
            assert waiter.observed == 0
            assert waiter.deficit == 1
            assert "consumer" in waiter.block
            assert "sems[" in waiter.describe()
        # The report embeds the per-waiter lines.
        assert "sems[" in str(error)
        assert "observed 0" in str(error)

    def test_dependency_cycle_is_reported(self, small_arch, small_cost_model):
        memory = GlobalMemory()
        memory.alloc_semaphores("a_done", 1)
        memory.alloc_semaphores("b_done", 1)
        grid = Dim3(1, 1, 1)

        def program_a(tile):
            return ThreadBlockProgram(
                tile=tile,
                segments=[
                    Segment(
                        duration_us=1.0,
                        waits=[SemWait("b_done", 0, 1)],
                        posts=[SemPost("a_done", 0)],
                    )
                ],
            )

        def program_b(tile):
            return ThreadBlockProgram(
                tile=tile,
                segments=[
                    Segment(
                        duration_us=1.0,
                        waits=[SemWait("a_done", 0, 1)],
                        posts=[SemPost("b_done", 0)],
                    )
                ],
            )

        kernel_a = KernelLaunch("alpha", grid, program_a, stream=Stream(name="sa"))
        kernel_b = KernelLaunch("beta", grid, program_b, stream=Stream(name="sb"))
        with pytest.raises(DeadlockError) as excinfo:
            GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [kernel_a, kernel_b]
            )
        error = excinfo.value
        assert error.cycle is not None
        cycle_kernels = {name.split("[")[0] for name in error.cycle}
        assert cycle_kernels == {"alpha", "beta"}
        assert "cycle" in str(error).lower()

    def test_launch_order_deadlock_has_no_false_cycle(self, small_arch, small_cost_model):
        # Consumer-before-producer deadlocks by slot exhaustion, not by a
        # circular wait: forensics must not invent a cycle.
        memory = GlobalMemory()
        grid = Dim3(4, 2, 1)
        producer, consumer = _dependent_pair(grid, 10.0, memory)
        with pytest.raises(DeadlockError) as excinfo:
            GpuSimulator(small_arch, memory=memory, cost_model=small_cost_model).run(
                [consumer, producer]
            )
        assert excinfo.value.cycle is None


class TestLivelockWatchdog:
    def test_max_events_guard_raises_structured_error(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = simple_kernel("k", Dim3(64, 1, 1), 1.0, stream=stream)
        with pytest.raises(LivelockError) as excinfo:
            GpuSimulator(small_arch, cost_model=small_cost_model, max_events=10).run([kernel])
        error = excinfo.value
        assert error.guard == "max_events"
        assert error.limit == 10
        assert error.events_processed > 10
        assert error.total_blocks == 64
        assert error.completed_blocks < 64

    def test_max_sim_time_guard_raises_structured_error(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = simple_kernel("k", Dim3(64, 1, 1), 10.0, stream=stream)
        with pytest.raises(LivelockError) as excinfo:
            GpuSimulator(
                small_arch, cost_model=small_cost_model, max_sim_time_us=15.0
            ).run([kernel])
        error = excinfo.value
        assert error.guard == "max_sim_time_us"
        assert error.limit == 15.0
        assert error.simulated_time_us > 15.0

    def test_invalid_watchdog_limits_rejected(self, small_arch, small_cost_model):
        with pytest.raises(SimulationError):
            GpuSimulator(small_arch, cost_model=small_cost_model, max_sim_time_us=0.0)
        with pytest.raises(SimulationError):
            GpuSimulator(small_arch, cost_model=small_cost_model, max_events=0)

    def test_generous_limits_do_not_trip(self, small_arch, small_cost_model):
        stream = Stream(name="s")
        kernel = simple_kernel("k", Dim3(8, 1, 1), 10.0, stream=stream)
        result = GpuSimulator(
            small_arch,
            cost_model=small_cost_model,
            max_events=100_000,
            max_sim_time_us=1e9,
        ).run([kernel])
        assert result.total_time_us == pytest.approx(10.0, abs=1e-6)


class TestChaosAcceptance:
    """The PR's acceptance criterion, pinned as a test."""

    POLICIES = ("TileSync", "RowSync", "StridedTileSync")
    ARCHES = ("V100", "A100")

    def _plan(self, num_points):
        # Seed 6 faults half the grid with a mix of crash / error /
        # corrupt_result on attempt 0; one extra fault exhausts every
        # attempt so the structured-failure path is exercised too.
        seeded = FaultPlan.seeded(num_points, seed=6, crash=0.15, error=0.2, corrupt_result=0.15)
        exhausted_point = next(
            point for point in range(num_points) if point not in seeded.fault_points
        )
        return FaultPlan(
            list(seeded.faults)
            + [FaultSpec(kind="error", point=exhausted_point, attempts=(0, 1, 2))],
            seed=6,
        ), exhausted_point

    @pytest.mark.parametrize("mode", ["serial", "process"])
    def test_chaos_sweep_every_point_accounted_for(self, mode):
        graph = GptMlp(config=TINY, batch_seq=96).to_graph()
        num_points = len(self.POLICIES) * len(self.ARCHES)
        plan, exhausted_point = self._plan(num_points)
        assert plan.fault_fraction(num_points) >= 0.2  # the criterion's floor

        baseline = Session(sweep_cache=False).sweep(
            graph, policies=self.POLICIES, arches=self.ARCHES, mode="serial"
        )

        session = Session()  # caching on: the poisoning check is part of the criterion
        with inject_faults(plan):
            results = session.sweep(
                graph,
                policies=self.POLICIES,
                arches=self.ARCHES,
                mode=mode,
                on_error="collect",
                retries=2,
            )

        assert len(results) == num_points
        failures = []
        for position, (result, reference) in enumerate(zip(results, baseline)):
            if isinstance(result, SweepFailure):
                failures.append(position)
                assert result.attempts >= 1
                assert result.error_type
                continue
            # Recovered points are bit-identical to the fault-free sweep.
            assert isinstance(result, SweepResult)
            assert result.total_time_us == reference.total_time_us
            assert result.total_wait_time_us == reference.total_wait_time_us
            assert result.kernel_durations_us == reference.kernel_durations_us
        # Only the deliberately exhausted point may fail; every transient
        # fault (attempt 0 only, retries=2) must have recovered.
        assert failures == [exhausted_point]

        # Zero poisoned cache entries: every cached value is finite, and a
        # fault-free re-sweep replays bit-identically.
        assert session.sweep_cache_size == num_points - 1
        for cached in session._sweep_cache.values():
            assert math.isfinite(cached.total_time_us)
        replay = session.sweep(
            graph, policies=self.POLICIES, arches=self.ARCHES, mode="serial"
        )
        assert [r.total_time_us for r in replay] == [r.total_time_us for r in baseline]
        assert all(
            result.cached == (position != exhausted_point)
            for position, result in enumerate(replay)
        )
        assert session.sweep_cache_size == num_points
