"""Overload resilience: admission control, shedding, preemption, chaos.

The acceptance contract of the overload subsystem (ISSUE 10):

* **Everything resolves** — under any shedding policy, every generated
  request terminates as exactly one of completed or shed; nothing is
  silently dropped and nothing is double-counted.
* **KV is never exceeded** — the batcher's reservation never passes
  ``max_kv_tokens``, preemption included (final-footprint reservation
  makes this hold by construction; the property test checks it anyway).
* **Structured failure** — a mis-sized scenario raises
  :class:`~repro.errors.ServingStallError` with queue forensics instead
  of spinning.
* **Chaos leaves no residue** — a seeded fault plan perturbs the serving
  loop deterministically, and a fault-free replay of the same scenario
  (same session, warm sweep cache) stays bit-identical to a pristine run.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServingError, ServingStallError
from repro.models.config import TransformerConfig
from repro.pipeline import Session
from repro.serving import (
    ContinuousBatcher,
    FixedRateArrivals,
    InferenceRequest,
    PoissonArrivals,
    ServingScenario,
    ServingSimulator,
    SHED_POLICIES,
)
from repro.testing import ServingFaultPlan, ServingFaultSpec

TINY = TransformerConfig(name="srv-tiny", hidden=256, layers=2, tensor_parallel=8)


def request(rid, arrival=0.0, prompt=8, decode=4, deadline=None, priority=0):
    import math

    return InferenceRequest(
        request_id=rid,
        arrival_us=arrival,
        prompt_tokens=prompt,
        decode_tokens=decode,
        deadline_us=math.inf if deadline is None else deadline,
        priority=priority,
    )


class TestBatcherConfigValidation:
    def test_policies_are_registered(self):
        assert SHED_POLICIES == ("none", "reject-on-full", "shed-expired", "priority")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServingError):
            ContinuousBatcher(shed_policy="drop-everything")

    def test_max_queue_requires_a_policy(self):
        with pytest.raises(ServingError):
            ContinuousBatcher(shed_policy="none", max_queue=4)

    def test_reject_on_full_requires_max_queue(self):
        with pytest.raises(ServingError):
            ContinuousBatcher(shed_policy="reject-on-full")

    def test_preemption_requires_priority_policy(self):
        with pytest.raises(ServingError):
            ContinuousBatcher(shed_policy="shed-expired", preemption=True)

    def test_readmit_validates_generated(self):
        batcher = ContinuousBatcher()
        with pytest.raises(ServingError):
            batcher.readmit(request(0, decode=4), generated=4)
        with pytest.raises(ServingError):
            batcher.readmit(request(0, decode=4), generated=-1)


class TestSheddingPolicies:
    def test_none_policy_never_sheds(self):
        batcher = ContinuousBatcher(max_batch=1, shed_policy="none")
        for i in range(50):
            assert batcher.enqueue(request(i, arrival=float(i))) is None
        assert batcher.shed == 0
        assert batcher.queued == 50

    def test_reject_on_full_sheds_the_newcomer(self):
        batcher = ContinuousBatcher(
            max_batch=1, shed_policy="reject-on-full", max_queue=2
        )
        assert batcher.enqueue(request(0)) is None
        assert batcher.enqueue(request(1)) is None
        record = batcher.enqueue(request(2, arrival=5.0), now_us=9.0)
        assert record is not None
        assert record.request_id == 2
        assert record.reason == "queue-full"
        assert record.queue_depth == 2
        assert record.waited_us == pytest.approx(4.0)
        assert batcher.queued == 2  # original entries untouched
        assert batcher.drain_shed() == (record,)
        assert batcher.drain_shed() == ()  # cursor advanced

    def test_shed_expired_on_arrival(self):
        batcher = ContinuousBatcher(shed_policy="shed-expired")
        record = batcher.enqueue(
            request(0, arrival=0.0, deadline=10.0), now_us=25.0
        )
        assert record is not None and record.reason == "deadline-expired"
        assert batcher.queued == 0

    def test_shed_expired_sweeps_queue_at_plan_time(self):
        batcher = ContinuousBatcher(max_batch=1, shed_policy="shed-expired")
        batcher.enqueue(request(0, deadline=100.0))
        batcher.enqueue(request(1, arrival=0.0, deadline=50.0))
        plan = batcher.next_plan(now_us=60.0)  # request 1 expired while queued
        assert plan.request_ids == (0,)
        (record,) = batcher.drain_shed()
        assert record.request_id == 1
        assert record.reason == "deadline-expired"
        assert record.waited_us == pytest.approx(60.0)

    def test_priority_overflow_sheds_lowest_priority(self):
        batcher = ContinuousBatcher(
            max_batch=1, shed_policy="priority", max_queue=2
        )
        batcher.enqueue(request(0, priority=1))
        batcher.enqueue(request(1, priority=0))
        # A high-priority newcomer squeezes out the lowest-priority entry.
        record = batcher.enqueue(request(2, priority=5), now_us=1.0)
        assert record.request_id == 1
        assert record.reason == "queue-full"
        assert batcher.queued == 2

    def test_priority_overflow_sheds_low_priority_newcomer(self):
        batcher = ContinuousBatcher(
            max_batch=1, shed_policy="priority", max_queue=2
        )
        batcher.enqueue(request(0, priority=3))
        batcher.enqueue(request(1, priority=3))
        record = batcher.enqueue(request(2, priority=0), now_us=1.0)
        assert record.request_id == 2  # newcomer loses to queued higher priority
        assert batcher.queued == 2

    def test_priority_admission_order(self):
        batcher = ContinuousBatcher(max_batch=1, shed_policy="priority")
        batcher.enqueue(request(0, arrival=0.0, priority=0))
        batcher.enqueue(request(1, arrival=1.0, priority=7))
        plan = batcher.next_plan(now_us=2.0)
        assert plan.request_ids == (1,)  # priority beats FIFO

    def test_oversized_request_still_an_error_not_a_shed(self):
        batcher = ContinuousBatcher(
            max_kv_tokens=16, shed_policy="reject-on-full", max_queue=4
        )
        with pytest.raises(ServingError):
            batcher.enqueue(request(0, prompt=100, decode=4))


class TestPreemption:
    def make_full(self, **kwargs):
        """Two priority-0 sequences filling a 32-token / 2-slot batcher."""
        batcher = ContinuousBatcher(
            max_batch=2,
            max_kv_tokens=32,
            shed_policy="priority",
            preemption=True,
            **kwargs,
        )
        for rid in (0, 1):
            batcher.enqueue(request(rid, arrival=float(rid), prompt=8, decode=8))
            plan = batcher.next_plan(now_us=float(rid))
            batcher.advance(plan)
        assert batcher.kv_reserved == 32 and batcher.running == 2
        return batcher

    def test_preempts_lower_priority_and_releases_kv(self):
        batcher = self.make_full()
        batcher.enqueue(request(2, arrival=2.0, prompt=8, decode=8, priority=5))
        plan = batcher.next_plan(now_us=2.0)
        assert plan.phase == "prefill" and plan.request_ids == (2,)
        (record,) = batcher.drain_preemptions()
        # Most recently admitted victim (LIFO — least sunk work).
        assert record.request_id == 1
        assert record.kv_released == 16
        assert record.generated_tokens == 1  # one prefill token produced
        assert batcher.kv_reserved == 32  # victim out, candidate in
        assert batcher.kv_reserved_peak == 32  # never exceeded mid-swap
        assert batcher.restarted_tokens == 1
        assert batcher.queued == 1  # victim re-queued, progress preserved

    def test_victim_resumes_with_recompute_prefill(self):
        batcher = self.make_full()
        batcher.enqueue(request(2, arrival=2.0, prompt=8, decode=8, priority=5))
        batcher.advance(batcher.next_plan(now_us=2.0))  # candidate prefills
        # Drain the high-priority winner and the survivor to make room.
        for now in (3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0):
            plan = batcher.next_plan(now_us=now)
            if plan is None:
                break
            batcher.advance(plan)
            if plan.phase == "prefill" and 1 in plan.request_ids:
                # The re-prefill recomputes prompt + generated rows.
                assert plan.rows >= 8 + 1
                return
        pytest.fail("victim was never re-admitted")

    def test_equal_priority_never_preempted(self):
        batcher = self.make_full()
        batcher.enqueue(request(2, arrival=2.0, prompt=8, decode=8, priority=0))
        plan = batcher.next_plan(now_us=2.0)
        assert plan.phase == "decode"  # no room made; running sequences proceed
        assert batcher.preemptions == 0

    def test_anti_thrash_guard_blocks_repreemption(self):
        batcher = self.make_full(min_preempt_gap=100)
        batcher.enqueue(request(2, arrival=2.0, prompt=8, decode=8, priority=5))
        batcher.advance(batcher.next_plan(now_us=2.0))
        assert batcher.preemptions == 1
        # Victim (request 1) is queued; an even higher-priority arrival
        # cannot evict again — only request 0 remains eligible, and
        # evicting it alone is enough.  But re-preempting the *restarted*
        # request 1 is blocked for min_preempt_gap iterations once it is
        # running again.
        records = {r.request_id for r in batcher.preemption_records}
        assert records == {1}
        # Drain until request 1 runs again, then hit it with priority 9.
        for now in range(3, 40):
            plan = batcher.next_plan(now_us=float(now))
            if plan is None:
                break
            batcher.advance(plan)
        # request 1 eventually completed despite the overload: the guard
        # kept it from being evicted a second time.
        assert [r.request_id for r in batcher.preemption_records].count(1) == 1

    def test_no_partial_eviction_when_room_cannot_be_made(self):
        # Candidate needs more KV than evicting everything would free.
        batcher = ContinuousBatcher(
            max_batch=2, max_kv_tokens=40, shed_policy="priority", preemption=True
        )
        batcher.enqueue(request(0, prompt=8, decode=8))
        batcher.advance(batcher.next_plan(now_us=0.0))
        batcher.enqueue(request(1, arrival=1.0, prompt=8, decode=8))
        batcher.advance(batcher.next_plan(now_us=1.0))
        batcher.enqueue(request(2, arrival=2.0, prompt=30, decode=8, priority=9))
        plan = batcher.next_plan(now_us=2.0)
        # 38 > 40 - 32 + 16: one eviction is not enough, two would be —
        # and two ARE enough, so both go.  Now make it impossible:
        batcher2 = ContinuousBatcher(
            max_batch=2, max_kv_tokens=40, shed_policy="priority", preemption=True
        )
        batcher2.enqueue(request(0, prompt=16, decode=8))
        batcher2.advance(batcher2.next_plan(now_us=0.0))
        batcher2.enqueue(request(2, arrival=1.0, prompt=30, decode=9, priority=9))
        plan2 = batcher2.next_plan(now_us=1.0)
        # 39 KV needed, 40 total: fits only if the victim goes; it does.
        assert plan2.request_ids == (2,)
        assert batcher2.kv_reserved == 39
        # Impossible case: candidate bigger than the whole budget is an
        # enqueue-time error (covered elsewhere); candidate that fits the
        # budget but not alongside an unpreemptible peer waits.
        batcher3 = ContinuousBatcher(
            max_batch=2, max_kv_tokens=40, shed_policy="priority", preemption=True
        )
        batcher3.enqueue(request(0, prompt=16, decode=8, priority=9))
        batcher3.advance(batcher3.next_plan(now_us=0.0))
        batcher3.enqueue(request(1, arrival=1.0, prompt=30, decode=9, priority=5))
        plan3 = batcher3.next_plan(now_us=1.0)
        assert plan3.phase == "decode"  # no eviction of higher priority
        assert batcher3.preemptions == 0
        assert batcher3.queued == 1

    def test_preemption_records_are_complete(self):
        batcher = self.make_full()
        batcher.enqueue(request(2, arrival=7.5, prompt=8, decode=8, priority=3))
        batcher.next_plan(now_us=7.5)
        (record,) = batcher.preemption_records
        assert record.preempted_us == 7.5
        assert record.priority == 0
        assert record.iteration == 2
        assert batcher.preemptions == 1


class TestWatchdogs:
    def overloaded(self, **limits):
        return ServingScenario(
            arrivals=FixedRateArrivals(interval_us=10.0, prompt_tokens=16, decode_tokens=4),
            requests=24,
            config=TINY,
            max_batch=4,
            max_kv_tokens=256,
            max_prefill_tokens=64,
            **limits,
        )

    def test_max_iterations_raises_structured_stall(self):
        with pytest.raises(ServingStallError) as info:
            ServingSimulator(scheme="cusync", session=Session()).run(
                self.overloaded(max_iterations=3)
            )
        error = info.value
        assert error.guard == "max_iterations"
        assert error.iterations == 4  # tripped on the iteration past the limit
        assert error.total_requests == 24
        assert error.completed + error.shed < 24
        assert error.queue_depth > 0 or error.running > 0
        assert error.oldest_request_id is not None
        assert error.oldest_waited_us >= 0.0
        report = error.report()
        assert "max_iterations" in report
        assert "queue depth" in report

    def test_max_sim_time_raises_structured_stall(self):
        with pytest.raises(ServingStallError) as info:
            ServingSimulator(scheme="cusync", session=Session()).run(
                self.overloaded(max_sim_time_us=100.0)
            )
        error = info.value
        assert error.guard == "max_sim_time_us"
        assert error.simulated_time_us > 100.0
        assert error.limit == 100.0

    def test_generous_limits_do_not_trip(self):
        report = ServingSimulator(scheme="cusync", session=Session()).run(
            self.overloaded(max_iterations=10_000, max_sim_time_us=1e9)
        )
        assert report.completed == 24

    def test_scenario_validates_watchdog_limits(self):
        with pytest.raises(ServingError):
            self.overloaded(max_iterations=0)
        with pytest.raises(ServingError):
            self.overloaded(max_sim_time_us=-1.0)


def overload_scenario(shed=False):
    """A ~2x-overload mixed-priority scenario (rate calibrated offline)."""
    scenario = ServingScenario(
        arrivals=PoissonArrivals(
            rate_rps=10_000.0,
            prompt_tokens=(16, 96),
            decode_tokens=(2, 8),
            seed=7,
            deadline_slack_us=(3_000.0, 12_000.0),
            priorities=(0, 0, 1, 2),
        ),
        requests=40,
        config=TINY,
        max_batch=4,
        max_kv_tokens=1024,
        max_prefill_tokens=128,
        slo_us=6_000.0,
    )
    if shed:
        scenario = replace(
            scenario, shed_policy="priority", max_queue=6, preemption=True
        )
    return scenario


class TestOverloadScenario:
    def test_priority_bounds_tail_latency_under_overload(self):
        unbounded = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=False)
        )
        bounded = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True)
        )
        # Legacy policy completes everything, late; priority sheds the
        # low class and keeps the tail bounded.
        assert unbounded.completed == 40 and unbounded.shed == 0
        assert bounded.completed + bounded.shed == 40
        assert bounded.shed > 0
        assert bounded.preemptions > 0
        assert bounded.p99_total_us < unbounded.p99_total_us
        assert bounded.kv_reserved_peak <= 1024

    def test_high_priority_classes_fully_served(self):
        report = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True)
        )
        classes = {c.priority: c for c in report.priority_classes}
        priorities = [c.priority for c in report.priority_classes]
        assert priorities == sorted(priorities, reverse=True)
        for priority in (1, 2):
            assert classes[priority].shed == 0
            assert classes[priority].completed > 0
        assert classes[0].shed > 0  # all shedding lands on the low class
        assert report.shed == sum(c.shed for c in report.priority_classes)
        assert report.completed == sum(c.completed for c in report.priority_classes)

    def test_completed_requests_meet_deadlines_under_shedding(self):
        report = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True)
        )
        assert report.deadline_hits == report.completed

    def test_overload_run_is_deterministic(self):
        first = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True)
        )
        second = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True)
        )
        assert first == second  # shed records and priority classes included

    def test_shed_records_surface_in_report(self):
        report = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True)
        )
        assert len(report.shed_records) == report.shed
        for record in report.shed_records:
            assert record.reason in ("queue-full", "deadline-expired")
            assert record.waited_us >= 0.0
        summary = report.summary()
        assert summary["shed"] == report.shed
        assert summary["preemptions"] == report.preemptions
        assert "priority_classes" in summary
        assert "[shed" in report.describe()


class TestChaosAcceptance:
    FAULTS = dict(straggler=0.15, drop_completion=0.1, burst=0.05)

    def test_every_request_resolves_under_chaos_and_overload(self):
        faults = ServingFaultPlan.seeded(40, seed=23, **self.FAULTS)
        assert len(faults) > 0
        report = ServingSimulator(scheme="cusync", session=Session()).run(
            overload_scenario(shed=True), faults=faults
        )
        assert report.completed + report.shed == 40
        assert report.kv_reserved_peak <= 1024

    def test_chaos_is_deterministic(self):
        faults = ServingFaultPlan.seeded(40, seed=23, **self.FAULTS)
        runs = [
            ServingSimulator(scheme="cusync", session=Session()).run(
                overload_scenario(shed=True), faults=faults
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_fault_free_replay_is_bit_identical(self):
        # One shared session: the faulted run in the middle must leave no
        # residue in the sweep cache that a clean replay could observe.
        session = Session()
        scenario = overload_scenario(shed=True)
        pristine = ServingSimulator(scheme="cusync", session=session).run(scenario)
        faults = ServingFaultPlan.seeded(40, seed=23, **self.FAULTS)
        faulted = ServingSimulator(scheme="cusync", session=session).run(
            scenario, faults=faults
        )
        assert faulted != pristine  # the chaos actually did something
        replay = ServingSimulator(scheme="cusync", session=session).run(scenario)
        assert replay.records == pristine.records
        assert replay.shed_records == pristine.shed_records
        assert replay.p99_total_us == pristine.p99_total_us

    def test_dropped_completion_recomputes_and_completes(self):
        # Light load, one targeted drop: the request completes anyway,
        # later, with the retry's recompute visible in iteration counts.
        scenario = ServingScenario(
            arrivals=FixedRateArrivals(
                interval_us=5_000.0, prompt_tokens=16, decode_tokens=4
            ),
            requests=3,
            config=TINY,
            max_batch=4,
            max_kv_tokens=1024,
            max_prefill_tokens=128,
        )
        clean = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        faults = ServingFaultPlan(
            faults=(ServingFaultSpec(kind="drop_completion", target=1),)
        )
        faulted = ServingSimulator(scheme="cusync", session=Session()).run(
            scenario, faults=faults
        )
        assert faulted.completed == 3
        assert faulted.iterations > clean.iterations
        record = next(r for r in faulted.records if r.request_id == 1)
        clean_record = next(r for r in clean.records if r.request_id == 1)
        assert record.total_us > clean_record.total_us

    def test_straggler_stretches_the_run(self):
        scenario = overload_scenario(shed=False)
        clean = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        faults = ServingFaultPlan(
            faults=tuple(
                ServingFaultSpec(kind="straggler", target=i, factor=8.0)
                for i in range(0, 40, 2)
            )
        )
        faulted = ServingSimulator(scheme="cusync", session=Session()).run(
            scenario, faults=faults
        )
        assert faulted.simulated_us > clean.simulated_us

    def test_burst_compresses_arrivals(self):
        requests = PoissonArrivals(rate_rps=1_000.0, seed=3).generate(10)
        plan = ServingFaultPlan(
            faults=(ServingFaultSpec(kind="burst", target=4, span=4),)
        )
        bursty = plan.apply_to_arrivals(requests)
        anchor = bursty[4].arrival_us
        assert all(r.arrival_us == anchor for r in bursty[4:8])
        arrivals = [r.arrival_us for r in bursty]
        assert arrivals == sorted(arrivals)  # monotone preserved


class TestPreemptionProperty:
    """Hypothesis: the batcher invariants hold for arbitrary workloads."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        max_batch=st.integers(min_value=1, max_value=4),
        max_kv=st.integers(min_value=64, max_value=256),
        count=st.integers(min_value=1, max_value=20),
        preemption=st.booleans(),
    )
    def test_kv_bounded_and_everything_resolves(
        self, seed, max_batch, max_kv, count, preemption
    ):
        rng = random.Random(seed)
        clock = 0.0
        requests = []
        for rid in range(count):
            clock += rng.uniform(0.0, 50.0)
            deadline = (
                clock + rng.uniform(20.0, 600.0) if rng.random() < 0.5 else None
            )
            requests.append(
                request(
                    rid,
                    arrival=clock,
                    prompt=rng.randint(1, 32),
                    decode=rng.randint(1, 8),
                    deadline=deadline,
                    priority=rng.randint(0, 2),
                )
            )
        batcher = ContinuousBatcher(
            max_batch=max_batch,
            max_kv_tokens=max_kv,
            max_prefill_tokens=64,
            shed_policy="priority",
            max_queue=4,
            preemption=preemption,
        )
        pending = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        arrived = 0
        clock = 0.0
        completed = []
        shed = []
        for _ in range(5_000):
            if len(completed) + len(shed) >= count:
                break
            while arrived < len(pending) and pending[arrived].arrival_us <= clock:
                batcher.enqueue(pending[arrived], now_us=clock)
                arrived += 1
            plan = batcher.next_plan(now_us=clock)
            shed.extend(batcher.drain_shed())
            assert batcher.kv_reserved <= max_kv
            if plan is None:
                assert arrived < len(pending), "batcher stalled with work left"
                clock = max(clock, pending[arrived].arrival_us)
                continue
            clock += 10.0
            completed.extend(batcher.advance(plan))
            shed.extend(batcher.drain_shed())
        else:
            pytest.fail("workload did not resolve within the iteration bound")
        # KV never exceeded, ever.
        assert batcher.kv_reserved_peak <= max_kv
        # Every request resolves exactly once: completed xor shed.
        resolution = sorted(completed + [r.request_id for r in shed])
        assert resolution == list(range(count))
        # Token accounting across preemption restarts: every generated
        # token thrown away is recorded, nowhere else.
        assert batcher.restarted_tokens == sum(
            r.generated_tokens for r in batcher.preemption_records
        )
        if not preemption:
            assert batcher.preemptions == 0
