"""Tests for tile coordinate helpers."""

import pytest

from repro.common.dim3 import Dim3
from repro.common.tiles import TileRange, delinearize, iter_tiles, linearize


class TestLinearize:
    def test_row_major_order(self):
        grid = Dim3(3, 2, 1)
        assert linearize(Dim3(0, 0, 0), grid) == 0
        assert linearize(Dim3(1, 0, 0), grid) == 1
        assert linearize(Dim3(0, 1, 0), grid) == 3
        assert linearize(Dim3(2, 1, 0), grid) == 5

    def test_roundtrip(self):
        grid = Dim3(4, 3, 2)
        for index in range(grid.volume):
            assert linearize(delinearize(index, grid), grid) == index

    def test_out_of_bounds_tile(self):
        with pytest.raises(IndexError):
            linearize(Dim3(3, 0, 0), Dim3(3, 2, 1))

    def test_out_of_bounds_index(self):
        with pytest.raises(IndexError):
            delinearize(6, Dim3(3, 2, 1))


class TestIterTiles:
    def test_count_matches_volume(self):
        grid = Dim3(3, 4, 2)
        tiles = list(iter_tiles(grid))
        assert len(tiles) == grid.volume
        assert len(set(tiles)) == grid.volume

    def test_first_and_last(self):
        tiles = list(iter_tiles(Dim3(2, 2, 2)))
        assert tiles[0] == Dim3(0, 0, 0)
        assert tiles[-1] == Dim3(1, 1, 1)


class TestTileRange:
    def test_full_range(self):
        grid = Dim3(3, 2, 1)
        assert TileRange.full(grid).count == 6

    def test_single(self):
        single = TileRange.single(Dim3(1, 1, 0))
        assert single.count == 1
        assert Dim3(1, 1, 0) in single

    def test_membership(self):
        r = TileRange(Dim3(1, 0, 0), Dim3(3, 2, 1))
        assert Dim3(2, 1, 0) in r
        assert Dim3(0, 0, 0) not in r

    def test_extent(self):
        r = TileRange(Dim3(1, 0, 0), Dim3(3, 2, 1))
        assert r.extent == Dim3(2, 2, 1)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            TileRange(Dim3(2, 0, 0), Dim3(1, 1, 1))

    def test_iterates_in_row_major(self):
        r = TileRange(Dim3(0, 0, 0), Dim3(2, 2, 1))
        assert r.tiles() == [Dim3(0, 0, 0), Dim3(1, 0, 0), Dim3(0, 1, 0), Dim3(1, 1, 0)]
