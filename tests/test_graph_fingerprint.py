"""Tests for structural graph fingerprints and value canonicalization.

The fingerprint is the identity under which sweep results persist and
replay across processes, so these tests pin what it must (and must not)
depend on.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cusync.policies import PolicyAssignment, PolicySpec
from repro.gpu.arch import ArchSpec
from repro.models.config import TransformerConfig
from repro.models.mlp import GptMlp
from repro.pipeline import Edge, PipelineGraph, Session, SweepPoint
from repro.pipeline.structural import UnportableValueError, canonicalize, fingerprint

TINY = TransformerConfig(name="tiny-fp", hidden=256, layers=2, tensor_parallel=8)


@pytest.fixture()
def workload():
    return GptMlp(config=TINY, batch_seq=96)


class TestFingerprintIdentity:
    def test_rebuilt_graphs_fingerprint_equal(self, workload):
        assert (
            workload.to_graph().structural_fingerprint()
            == workload.to_graph().structural_fingerprint()
        )

    def test_fingerprint_is_memoized(self, workload):
        graph = workload.to_graph()
        assert graph.structural_fingerprint() is graph.structural_fingerprint()

    def test_different_config_changes_fingerprint(self, workload):
        wider = GptMlp(
            config=TransformerConfig(
                name="tiny-fp-b", hidden=512, layers=2, tensor_parallel=8
            ),
            batch_seq=96,
        )
        assert (
            workload.to_graph().structural_fingerprint()
            != wider.to_graph().structural_fingerprint()
        )

    def test_graph_name_is_not_structural(self, workload):
        a = workload.to_graph()
        base = workload.to_graph()
        b = PipelineGraph(stages=base.stages, edges=base.edges, name="renamed-for-display")
        assert a.structural_fingerprint() == b.structural_fingerprint()

    def test_pickle_round_trip_preserves_fingerprint(self, workload):
        graph = workload.to_graph()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.structural_fingerprint() == graph.structural_fingerprint()

    def test_closure_range_maps_have_no_fingerprint(self, workload):
        base = workload.to_graph()
        shift = 0
        edges = [
            Edge(
                edge.producer,
                edge.consumer,
                edge.tensor,
                range_map=lambda rows, cols, batch: (rows, cols, batch + shift),
            )
            for edge in base.edges
        ]
        graph = PipelineGraph(stages=base.stages, edges=edges)
        assert graph.structural_fingerprint() is None
        # The failure is memoized too: asking twice stays None, no raise.
        assert graph.structural_fingerprint() is None


class TestStoreKeys:
    def test_policy_spellings_share_a_store_key(self, workload):
        session = Session(arch=workload.arch)
        graph = workload.to_graph()
        keys = {
            session.sweep_store_key(
                graph, SweepPoint(scheme="cusync", policy=policy, arch="V100")
            )
            for policy in (
                "TileSync",
                PolicySpec("TileSync"),
                PolicyAssignment(default="TileSync"),
            )
        }
        assert len(keys) == 1 and None not in keys

    def test_arch_name_and_spec_share_a_store_key(self, workload):
        session = Session(arch=workload.arch)
        graph = workload.to_graph()
        by_name = session.sweep_store_key(
            graph, SweepPoint(scheme="cusync", policy="TileSync", arch="V100")
        )
        by_spec = session.sweep_store_key(
            graph,
            SweepPoint(scheme="cusync", policy="TileSync", arch=ArchSpec.coerce("V100")),
        )
        assert by_name == by_spec is not None

    def test_unregistered_arch_instance_has_no_store_key(self, workload):
        session = Session(arch=workload.arch)
        graph = workload.to_graph()
        bare = workload.arch.with_overrides(num_sms=3)
        key = session.sweep_store_key(
            graph, SweepPoint(scheme="cusync", policy="TileSync", arch=bare)
        )
        assert key is None

    def test_store_keys_are_primitive_tuples(self, workload):
        session = Session(arch=workload.arch)
        key = session.sweep_store_key(
            workload.to_graph(),
            SweepPoint(scheme="cusync", policy="TileSync", arch="V100"),
        )

        def check(value):
            if isinstance(value, tuple):
                for item in value:
                    check(item)
            else:
                assert isinstance(value, (str, int, float, bool)) or value is None

        check(key)
        # And therefore picklable/hashable and equal across a round trip.
        assert pickle.loads(pickle.dumps(key)) == key
        hash(key)


class TestCanonicalize:
    def test_equal_values_canonicalize_equal(self):
        assert canonicalize({"b": 2, "a": 1}) == canonicalize({"a": 1, "b": 2})
        assert canonicalize((1, 2.5, "x")) == canonicalize([1, 2.5, "x"])

    def test_distinguishes_int_from_float(self):
        assert canonicalize(1) != canonicalize(1.0)
        assert canonicalize(True) != canonicalize(1)

    def test_rejects_lambdas(self):
        with pytest.raises(UnportableValueError):
            canonicalize(lambda x: x)

    def test_rejects_bound_methods(self):
        with pytest.raises(UnportableValueError):
            canonicalize("abc".upper)

    def test_module_level_functions_are_portable(self):
        from repro.common.tiles import linearize

        assert canonicalize(linearize) == canonicalize(linearize)

    def test_fingerprint_is_hex_digest(self):
        digest = fingerprint(canonicalize({"a": 1}))
        assert len(digest) == 32
        int(digest, 16)
