"""Tests for open-loop arrival processes (:mod:`repro.serving.arrivals`).

The serving determinism contract starts here: a seeded arrival process
must produce bit-identical request streams across calls, across fresh
instances, and across pickle round-trips (the property suite drives the
latter two), and longer generations must extend shorter ones
(prefix stability), so growing a scenario never rewrites history.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServingError
from repro.serving import (
    FixedRateArrivals,
    InferenceRequest,
    PoissonArrivals,
    TraceArrivals,
)


class TestInferenceRequest:
    def test_total_tokens_is_final_kv_footprint(self):
        request = InferenceRequest(
            request_id=0, arrival_us=0.0, prompt_tokens=100, decode_tokens=16
        )
        assert request.total_tokens == 116

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(prompt_tokens=0, decode_tokens=4),
            dict(prompt_tokens=8, decode_tokens=0),
            dict(arrival_us=-1.0),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        base = dict(request_id=0, arrival_us=0.0, prompt_tokens=8, decode_tokens=4)
        base.update(kwargs)
        with pytest.raises(ServingError):
            InferenceRequest(**base)


class TestPoissonDeterminism:
    def test_same_seed_same_stream(self):
        a = PoissonArrivals(rate_rps=500.0, prompt_tokens=(8, 64), seed=11)
        b = PoissonArrivals(rate_rps=500.0, prompt_tokens=(8, 64), seed=11)
        assert a.generate(50) == b.generate(50)

    def test_different_seed_different_stream(self):
        a = PoissonArrivals(rate_rps=500.0, seed=1)
        b = PoissonArrivals(rate_rps=500.0, seed=2)
        assert a.generate(20) != b.generate(20)

    def test_prefix_stability(self):
        process = PoissonArrivals(
            rate_rps=300.0, prompt_tokens=(8, 64), decode_tokens=(2, 12), seed=5
        )
        assert process.generate(30)[:10] == process.generate(10)

    def test_repeated_calls_identical(self):
        process = PoissonArrivals(rate_rps=100.0, seed=3)
        assert process.generate(25) == process.generate(25)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=1.0, max_value=1e5),
        count=st.integers(min_value=1, max_value=40),
    )
    def test_pickle_roundtrip_preserves_stream(self, seed, rate, count):
        process = PoissonArrivals(
            rate_rps=rate, prompt_tokens=(4, 128), decode_tokens=(1, 16), seed=seed
        )
        clone = pickle.loads(pickle.dumps(process))
        assert clone.generate(count) == process.generate(count)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_arrivals_sorted_and_lengths_in_range(self, seed):
        process = PoissonArrivals(
            rate_rps=200.0, prompt_tokens=(8, 64), decode_tokens=(2, 12), seed=seed
        )
        requests = process.generate(30)
        arrivals = [request.arrival_us for request in requests]
        assert arrivals == sorted(arrivals)
        assert all(8 <= r.prompt_tokens <= 64 for r in requests)
        assert all(2 <= r.decode_tokens <= 12 for r in requests)
        assert [r.request_id for r in requests] == list(range(30))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ServingError):
            PoissonArrivals(rate_rps=0.0)

    def test_invalid_token_range_rejected(self):
        with pytest.raises(ServingError):
            PoissonArrivals(rate_rps=1.0, prompt_tokens=(64, 8))


class TestFixedRateArrivals:
    def test_even_spacing(self):
        process = FixedRateArrivals(
            interval_us=250.0, prompt_tokens=32, decode_tokens=4, start_us=100.0
        )
        requests = process.generate(4)
        assert [r.arrival_us for r in requests] == [100.0, 350.0, 600.0, 850.0]
        assert all(r.prompt_tokens == 32 and r.decode_tokens == 4 for r in requests)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ServingError):
            FixedRateArrivals(interval_us=0.0)


class TestTraceArrivals:
    def test_replays_tuples(self):
        trace = TraceArrivals(((0.0, 16, 2), (10.0, 32, 4), (10.0, 8, 1)))
        requests = trace.generate(3)
        assert [r.prompt_tokens for r in requests] == [16, 32, 8]
        assert [r.request_id for r in requests] == [0, 1, 2]

    def test_accepts_inference_requests(self):
        source = PoissonArrivals(rate_rps=100.0, seed=9)
        requests = source.generate(5)
        assert TraceArrivals(requests).generate(5) == requests

    def test_request_and_tuple_traces_compare_equal(self):
        requests = PoissonArrivals(rate_rps=100.0, seed=9).generate(4)
        as_tuples = tuple(
            (r.arrival_us, r.prompt_tokens, r.decode_tokens) for r in requests
        )
        assert TraceArrivals(requests) == TraceArrivals(as_tuples)

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ServingError):
            TraceArrivals(((10.0, 16, 2), (5.0, 16, 2)))

    def test_overdraw_rejected(self):
        trace = TraceArrivals(((0.0, 16, 2),))
        with pytest.raises(ServingError):
            trace.generate(2)

    def test_empty_trace_rejected(self):
        with pytest.raises(ServingError):
            TraceArrivals(())


class TestQosFields:
    def test_defaults_are_neutral(self):
        request = InferenceRequest(
            request_id=0, arrival_us=0.0, prompt_tokens=8, decode_tokens=4
        )
        assert request.deadline_us == float("inf")
        assert request.priority == 0
        assert not request.expired(1e30)

    def test_expired_is_strict(self):
        request = InferenceRequest(
            request_id=0, arrival_us=0.0, prompt_tokens=8, decode_tokens=4,
            deadline_us=100.0,
        )
        assert not request.expired(100.0)
        assert request.expired(100.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(arrival_us=float("nan")),  # NaN defeats ordinary comparisons
            dict(arrival_us=float("inf")),
            dict(deadline_us=float("nan")),
            dict(deadline_us=0.0),  # not after arrival
            dict(priority=1.5),
            dict(priority=True),  # bool is not an int here
            dict(arrival_us="soon"),
        ],
    )
    def test_malformed_qos_rejected(self, kwargs):
        base = dict(
            request_id=0, arrival_us=5.0, prompt_tokens=8, decode_tokens=4
        )
        base.update(kwargs)
        with pytest.raises(ServingError):
            InferenceRequest(**base)

    def test_poisson_qos_sampling_is_deterministic(self):
        kwargs = dict(
            rate_rps=500.0,
            prompt_tokens=(8, 64),
            seed=11,
            deadline_slack_us=(1_000.0, 5_000.0),
            priorities=(0, 1, 2),
        )
        a = PoissonArrivals(**kwargs).generate(30)
        b = PoissonArrivals(**kwargs).generate(30)
        assert a == b
        assert {r.priority for r in a} <= {0, 1, 2}
        for request in a:
            assert (
                request.arrival_us + 1_000.0
                <= request.deadline_us
                <= request.arrival_us + 5_000.0
            )
        assert PoissonArrivals(**kwargs).generate(30)[:10] == (
            PoissonArrivals(**kwargs).generate(10)
        )

    def test_qos_sampling_leaves_base_stream_untouched(self):
        """The QoS draws come from a derived RNG: enabling them must not
        perturb the seeded arrival/shape stream existing configs pin."""
        plain = PoissonArrivals(rate_rps=500.0, prompt_tokens=(8, 64), seed=11)
        qos = PoissonArrivals(
            rate_rps=500.0,
            prompt_tokens=(8, 64),
            seed=11,
            deadline_slack_us=2_000.0,
            priorities=(0, 3),
        )
        for before, after in zip(plain.generate(40), qos.generate(40)):
            assert before.arrival_us == after.arrival_us
            assert before.prompt_tokens == after.prompt_tokens
            assert before.decode_tokens == after.decode_tokens

    def test_fixed_rate_qos_is_uniform(self):
        process = FixedRateArrivals(
            interval_us=100.0,
            prompt_tokens=16,
            decode_tokens=4,
            deadline_slack_us=500.0,
            priority=2,
        )
        for request in process.generate(5):
            assert request.deadline_us == request.arrival_us + 500.0
            assert request.priority == 2

    def test_invalid_specs_rejected(self):
        with pytest.raises(ServingError):
            PoissonArrivals(rate_rps=1.0, deadline_slack_us=-1.0)
        with pytest.raises(ServingError):
            PoissonArrivals(rate_rps=1.0, deadline_slack_us=(500.0, 100.0))
        with pytest.raises(ServingError):
            PoissonArrivals(rate_rps=1.0, priorities=())
        with pytest.raises(ServingError):
            FixedRateArrivals(interval_us=1.0, deadline_slack_us=0.0)


class TestTraceValidation:
    """Regression: NaN and malformed trace entries used to slip through
    (NaN defeats ``<``-based monotonicity checks) and produce garbage
    inter-arrival gaps deep inside the serving loop."""

    def test_nan_arrival_rejected(self):
        with pytest.raises(ServingError, match="arrival"):
            TraceArrivals(((0.0, 16, 2), (float("nan"), 16, 2)))

    def test_nan_only_trace_rejected(self):
        with pytest.raises(ServingError):
            TraceArrivals(((float("nan"), 16, 2),))

    def test_infinite_arrival_rejected(self):
        with pytest.raises(ServingError):
            TraceArrivals(((float("inf"), 16, 2),))

    @pytest.mark.parametrize(
        "entry",
        [
            (0.0, 16),  # wrong arity
            (0.0, 16, 2, 100.0),  # wrong arity (4 is neither 3 nor 5)
            ("0.0", 16, 2),  # non-numeric arrival
            (0.0, 16.5, 2),  # fractional tokens
            (0.0, True, 2),  # bool masquerading as int
            (0.0, 16, 0),  # non-positive decode
            (-1.0, 16, 2),  # negative arrival
            "not a tuple",
            (0.0, 16, 2, float("nan"), 0),  # NaN deadline in a 5-tuple
            (0.0, 16, 2, 100.0, 1.5),  # non-int priority
        ],
    )
    def test_malformed_entries_raise_structured_errors(self, entry):
        with pytest.raises(ServingError):
            TraceArrivals(((0.0, 8, 1), entry))

    def test_five_tuple_traces_carry_qos(self):
        trace = TraceArrivals(((0.0, 16, 2, 500.0, 3), (10.0, 8, 1, 700.0, 0)))
        first, second = trace.generate(2)
        assert first.deadline_us == 500.0 and first.priority == 3
        assert second.deadline_us == 700.0 and second.priority == 0

    def test_qos_requests_round_trip_through_traces(self):
        source = PoissonArrivals(
            rate_rps=100.0, seed=9, deadline_slack_us=1_000.0, priorities=(0, 2)
        )
        requests = source.generate(6)
        assert TraceArrivals(requests).generate(6) == requests

    def test_default_qos_five_tuples_equal_three_tuples(self):
        import math

        wide = TraceArrivals(((0.0, 16, 2, math.inf, 0),))
        narrow = TraceArrivals(((0.0, 16, 2),))
        assert wide == narrow
