"""Acceptance tests for the execution layer: one graph, many runs.

The core guarantee of the PipelineGraph API: a graph built once is run
under all three schemes and multiple policy families without rebuilding
kernels (object identity is preserved across runs), and every run is
bit-identical to the legacy ``Workload.run_*`` paths, which rebuild
kernels from scratch.
"""

import pytest

from repro.gpu.arch import TESLA_V100
from repro.models import Attention, GptMlp, TransformerConfig
from repro.pipeline import Session, run

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)


@pytest.fixture
def workload():
    return GptMlp(config=TINY, batch_seq=96)


class TestGraphReuseAcrossSchemes:
    def test_one_graph_all_schemes_without_kernel_rebuilds(self, workload):
        """The acceptance criterion: identity-stable kernels, bit-identical times."""
        graph = workload.to_graph()
        kernel_ids = [id(kernel) for kernel in graph.kernels]

        # Run the *same* graph under all three schemes and two policy
        # families (and one scheme twice, to prove reruns are clean).
        points = [
            ("streamsync", None),
            ("cusync", "TileSync"),
            ("cusync", "RowSync"),
            ("streamk", None),
            ("cusync", "TileSync"),
        ]
        times = {}
        for scheme, policy in points:
            result = run(
                graph,
                scheme=scheme,
                policy=policy if policy is not None else "TileSync",
                arch=workload.arch,
                cost_model=workload.cost_model,
            )
            times[(scheme, policy)] = result.total_time_us

        # Kernel objects were never rebuilt or replaced.
        assert [id(kernel) for kernel in graph.kernels] == kernel_ids

        # Rerunning a point on the reused graph is deterministic.
        rerun = run(
            graph, scheme="cusync", policy="TileSync",
            arch=workload.arch, cost_model=workload.cost_model,
        )
        assert rerun.total_time_us == times[("cusync", "TileSync")]

        # Bit-identical to the legacy paths, which rebuild kernels per run.
        legacy = GptMlp(config=TINY, batch_seq=96)
        assert legacy.run_streamsync().total_time_us == times[("streamsync", None)]
        assert legacy.run_streamk().total_time_us == times[("streamk", None)]
        assert legacy.run_cusync(policy="TileSync").total_time_us == times[("cusync", "TileSync")]
        assert legacy.run_cusync(policy="RowSync").total_time_us == times[("cusync", "RowSync")]

    def test_results_independent_of_run_order(self, workload):
        graph_a = workload.to_graph()
        graph_b = GptMlp(config=TINY, batch_seq=96).to_graph()

        a_stream = run(graph_a, scheme="streamsync").total_time_us
        a_cusync = run(graph_a, scheme="cusync", policy="RowSync").total_time_us

        b_cusync = run(graph_b, scheme="cusync", policy="RowSync").total_time_us
        b_stream = run(graph_b, scheme="streamsync").total_time_us

        assert a_stream == b_stream
        assert a_cusync == b_cusync

    def test_rerun_on_different_arch_is_deterministic(self, workload, small_arch):
        """Auto flags must derive occupancy from the run's arch, so the
        first run on a new architecture matches every rerun bit for bit."""
        graph = workload.to_graph()
        run(graph, scheme="cusync", policy="TileSync", arch=workload.arch)
        first = run(graph, scheme="cusync", policy="TileSync", arch=small_arch).total_time_us
        second = run(graph, scheme="cusync", policy="TileSync", arch=small_arch).total_time_us
        assert first == second

    def test_session_memoizes_and_matches_one_shot_run(self, workload):
        session = Session(arch=workload.arch)
        graph = workload.to_graph()
        first = session.run(graph, scheme="cusync", policy="TileSync").total_time_us
        # Memoized stage summaries are reused on the second run.
        assert graph in session._stage_summaries
        second = session.run(graph, scheme="cusync", policy="TileSync").total_time_us
        assert first == second
        one_shot = run(graph, scheme="cusync", policy="TileSync", arch=workload.arch)
        assert one_shot.total_time_us == first


class TestSweep:
    def test_sweep_matches_serial_loop(self, workload):
        graph = workload.to_graph()
        policies = ("TileSync", "RowSync")
        schemes = ("streamsync", "cusync")

        parallel = Session(arch=workload.arch).sweep(
            graph, policies=policies, schemes=schemes, workers=2
        )
        serial = Session(arch=workload.arch).sweep(
            graph, policies=policies, schemes=schemes, workers=0
        )
        assert parallel == serial
        assert len(serial) == 3  # streamsync + one point per policy
        assert {r.policy for r in serial} == {None, "TileSync", "RowSync"}
        for record in serial:
            assert record.total_time_us > 0.0
            assert record.arch_name == workload.arch.name

    def test_sweep_over_arches(self, workload, small_arch):
        graph = workload.to_graph()
        arches = (workload.arch, small_arch)
        results = Session(arch=workload.arch).sweep(
            graph, policies=("TileSync",), arches=arches, workers=0
        )
        assert [r.arch_name for r in results] == [workload.arch.name, small_arch.name]
        # Different architectures give different simulated times (the 8-SM
        # test GPU has different wave structure and zero launch latency).
        assert results[0].total_time_us != results[1].total_time_us

    def test_sweep_with_unpicklable_graph_falls_back_serial_with_warning(self):
        """Attention graphs carry closure range-maps and cannot cross
        process boundaries; the automatic mode must fall back to the serial
        path with a one-time warning that names the offending stage/edge
        and points at ``mode="thread"``."""
        import warnings

        from repro.pipeline.session import _FALLBACK_WARNED, _closure_culprit

        workload = Attention(config=TINY, batch=1, seq=64)
        graph = workload.to_graph()
        culprit = _closure_culprit(graph)
        assert culprit is not None and "attn_qkv" in culprit  # closures don't pickle

        _FALLBACK_WARNED.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = Session(arch=workload.arch).sweep(
                graph, policies=("TileSync", "StridedTileSync"), workers=2
            )
            # The fallback is announced once, not once per sweep call.
            again = Session(arch=workload.arch).sweep(
                graph, policies=("TileSync", "StridedTileSync"), workers=2
            )
        fallback_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
            and "mode='thread'" in str(w.message)
        ]
        assert len(fallback_warnings) == 1
        assert "attn_qkv" in str(fallback_warnings[0].message)

        serial = Session(arch=workload.arch).sweep(
            graph, policies=("TileSync", "StridedTileSync"), workers=0
        )
        assert results == serial == again

    def test_explicit_process_mode_rejects_closure_graphs(self):
        from repro.errors import SimulationError

        workload = Attention(config=TINY, batch=1, seq=64)
        graph = workload.to_graph()
        with pytest.raises(SimulationError, match="mode='thread'"):
            Session(arch=workload.arch).sweep(
                graph, policies=("TileSync", "RowSync"), mode="process"
            )

    def test_sweep_point_labels(self, workload):
        from repro.pipeline.session import SweepPoint

        point = SweepPoint(scheme="cusync", policy="RowSync", arch=TESLA_V100)
        assert point.label() == f"cusync:RowSync@{TESLA_V100.name}"


class TestMultiGraphSweep:
    """The redesigned Session.sweep: (graph, SweepPoint) work lists, policy
    grids and the three execution modes, all bit-identical."""

    def _work(self, workload):
        from repro.pipeline import PolicyAssignment, SweepPoint, sweep_policies

        mlp_graph = workload.to_graph()
        attention = Attention(config=TINY, batch=1, seq=64)
        attention_graph = attention.to_graph()
        mixed = PolicyAssignment(
            default="TileSync",
            edges={("attn_qkv", "attn_scores"): "StridedTileSync",
                   ("attn_softmax", "attn_values", "R"): "RowSync"},
        )
        work = sweep_policies(mlp_graph, ("TileSync", "RowSync"),
                              arches=(workload.arch,), mixed=True)
        work += sweep_policies(attention_graph, ("TileSync", "StridedTileSync"),
                               arches=(attention.arch,))
        work.append(
            (attention_graph, SweepPoint(scheme="cusync", policy=mixed, arch=attention.arch))
        )
        work.append(
            (mlp_graph, SweepPoint(scheme="streamsync", policy=None, arch=workload.arch))
        )
        return work

    def test_thread_process_serial_modes_bit_identical(self, workload):
        """Mode parity, via the reusable differential harness (which also
        runs the picklable subset of the work through the process pool)."""
        from differential_harness import assert_modes_identical

        work = self._work(workload)
        serial = assert_modes_identical(work, session_arch=workload.arch)
        auto = Session(arch=workload.arch).sweep(list(work))  # fresh session: no shared caches
        assert auto == serial
        assert len(serial) == len(work)
        assert all(result.total_time_us > 0.0 for result in serial)

    def test_results_attributed_to_graphs(self, workload):
        session = Session(arch=workload.arch)
        results = session.sweep(self._work(workload), mode="serial")
        labels = {result.graph_label for result in results}
        assert len(labels) == 2
        assert any(label.startswith("mlp") for label in labels)
        assert any(label.startswith("attn") for label in labels)

    def test_mixed_policy_points_evaluated(self, workload):
        from repro.cusync.policies import PolicyAssignment

        session = Session(arch=workload.arch)
        results = session.sweep(self._work(workload), mode="thread")
        mixed = [r for r in results if isinstance(r.policy, PolicyAssignment) and r.policy.edges]
        assert mixed and all(r.total_time_us > 0.0 for r in mixed)
        assert all("=" in r.policy_label for r in mixed)

    def test_sweep_policies_mixed_grid_is_full_product(self, workload):
        from repro.cusync.policies import PolicyAssignment, PolicySpec
        from repro.pipeline import sweep_policies

        graph = Attention(config=TINY, batch=1, seq=64).to_graph()
        work = sweep_policies(
            graph, ("TileSync", "RowSync"), arches=(workload.arch,), mixed=True
        )
        assert len(work) == 2 ** len(graph.edges)
        policies = [point.policy for _, point in work]
        uniform = [p for p in policies if isinstance(p, PolicySpec)]
        assert len(uniform) == 2  # the product's diagonal stays uniform
        assert len(set(policies)) == len(policies)  # hashable and distinct

    def test_multi_graph_process_mode_with_picklable_graphs(self, workload):
        """Two picklable graphs cross the process pool (or the probe falls
        back serially in sandboxes) with results identical to serial."""
        graph_a = workload.to_graph()
        graph_b = GptMlp(config=TINY, batch_seq=128).to_graph()
        from repro.pipeline.session import SweepPoint

        work = [
            (graph_a, SweepPoint(scheme="cusync", policy="TileSync", arch=workload.arch)),
            (graph_b, SweepPoint(scheme="cusync", policy="RowSync", arch=workload.arch)),
            (graph_b, SweepPoint(scheme="streamsync", policy=None, arch=workload.arch)),
        ]
        session = Session(arch=workload.arch)
        assert session.sweep(list(work), mode="process") == session.sweep(list(work), mode="serial")

    def test_invalid_mode_and_work_items_rejected(self, workload):
        from repro.errors import SimulationError

        session = Session(arch=workload.arch)
        with pytest.raises(SimulationError, match="unknown sweep mode"):
            session.sweep(workload.to_graph(), mode="fleet")
        with pytest.raises(SimulationError, match="work items"):
            session.sweep([("not a graph", "not a point")], mode="serial")
