"""Tests for the continuous batcher (:mod:`repro.serving.batcher`).

Pins the scheduling discipline the simulator's determinism rests on:
prefill-prioritized FIFO admission with head-of-line blocking, final-KV
reservation at admission time, immediate eviction of finished
sequences, and the batch-shape arithmetic (``rows``/``keys``) that the
graph cache buckets.
"""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving import ContinuousBatcher, InferenceRequest
from repro.serving.batcher import DECODE, PREFILL


def request(request_id, prompt=16, decode=2, arrival=0.0):
    return InferenceRequest(
        request_id=request_id,
        arrival_us=arrival,
        prompt_tokens=prompt,
        decode_tokens=decode,
    )


class TestAdmission:
    def test_prefill_batches_queue_head_fifo(self):
        batcher = ContinuousBatcher(max_batch=4, max_kv_tokens=4096)
        for i in range(3):
            batcher.enqueue(request(i, prompt=32))
        plan = batcher.next_plan()
        assert plan.phase == PREFILL
        assert plan.request_ids == (0, 1, 2)
        assert plan.rows == 96  # flattened prompts
        assert plan.keys == 32  # deepest context

    def test_max_batch_caps_admission(self):
        batcher = ContinuousBatcher(max_batch=2, max_kv_tokens=4096)
        for i in range(5):
            batcher.enqueue(request(i))
        plan = batcher.next_plan()
        assert plan.request_ids == (0, 1)
        assert batcher.queued == 3

    def test_kv_budget_blocks_head_of_line(self):
        batcher = ContinuousBatcher(max_batch=8, max_kv_tokens=100)
        batcher.enqueue(request(0, prompt=60, decode=2))  # footprint 62
        batcher.enqueue(request(1, prompt=60, decode=2))  # would overflow
        batcher.enqueue(request(2, prompt=10, decode=2))  # fits, but behind 1
        plan = batcher.next_plan()
        assert plan.request_ids == (0,)  # no reordering past the blocked head
        assert batcher.kv_reserved == 62
        assert batcher.queued == 2

    def test_prefill_token_cap_splits_batches(self):
        batcher = ContinuousBatcher(
            max_batch=8, max_kv_tokens=8192, max_prefill_tokens=100
        )
        for i in range(3):
            batcher.enqueue(request(i, prompt=60))
        plan = batcher.next_plan()
        assert plan.request_ids == (0,)  # 60 + 60 > 100

    def test_lone_oversized_prompt_admissible(self):
        batcher = ContinuousBatcher(
            max_batch=8, max_kv_tokens=8192, max_prefill_tokens=100
        )
        batcher.enqueue(request(0, prompt=300))
        plan = batcher.next_plan()
        assert plan.phase == PREFILL
        assert plan.request_ids == (0,)
        assert plan.rows == 300

    def test_request_larger_than_whole_budget_rejected(self):
        batcher = ContinuousBatcher(max_kv_tokens=64)
        with pytest.raises(ServingError):
            batcher.enqueue(request(0, prompt=63, decode=2))


class TestIterationProgress:
    def test_decode_shape_tracks_deepest_context(self):
        batcher = ContinuousBatcher(max_batch=4, max_kv_tokens=4096)
        batcher.enqueue(request(0, prompt=10, decode=3))
        batcher.enqueue(request(1, prompt=20, decode=3))
        prefill = batcher.next_plan()
        batcher.advance(prefill)  # first token of each
        decode = batcher.next_plan()
        assert decode.phase == DECODE
        assert decode.rows == 2
        assert decode.keys == 22  # 20 + 1 generated + 1 next

    def test_finished_sequences_evicted_and_budget_released(self):
        batcher = ContinuousBatcher(max_batch=4, max_kv_tokens=4096)
        batcher.enqueue(request(0, prompt=10, decode=1))
        batcher.enqueue(request(1, prompt=10, decode=3))
        prefill = batcher.next_plan()
        finished = batcher.advance(prefill)
        assert finished == (0,)  # decode=1: prefill's token completes it
        assert batcher.running == 1
        assert batcher.kv_reserved == 13  # only request 1's footprint

    def test_late_arrival_joins_midflight(self):
        batcher = ContinuousBatcher(max_batch=4, max_kv_tokens=4096)
        batcher.enqueue(request(0, prompt=10, decode=4))
        batcher.advance(batcher.next_plan())  # prefill request 0
        batcher.enqueue(request(1, prompt=12, decode=2))
        plan = batcher.next_plan()
        assert plan.phase == PREFILL  # prefill priority over running decode
        assert plan.request_ids == (1,)
        batcher.advance(plan)
        decode = batcher.next_plan()
        assert set(decode.request_ids) == {0, 1}

    def test_runs_to_completion(self):
        batcher = ContinuousBatcher(max_batch=2, max_kv_tokens=256)
        for i in range(4):
            batcher.enqueue(request(i, prompt=8, decode=3))
        done = []
        for _ in range(64):
            plan = batcher.next_plan()
            if plan is None:
                break
            done.extend(batcher.advance(plan))
        assert sorted(done) == [0, 1, 2, 3]
        assert batcher.idle
        assert batcher.kv_reserved == 0

    def test_advance_unknown_request_rejected(self):
        from repro.serving import BatchPlan

        batcher = ContinuousBatcher()
        with pytest.raises(ServingError):
            batcher.advance(BatchPlan(phase=DECODE, request_ids=(7,), rows=1, keys=8))

    def test_idle_batcher_plans_nothing(self):
        assert ContinuousBatcher().next_plan() is None

    def test_invalid_budgets_rejected(self):
        with pytest.raises(Exception):
            ContinuousBatcher(max_batch=0)
