"""Tests for the architecture presets and occupancy calculation."""

import pytest

from repro.gpu.arch import AMPERE_A100, TESLA_V100, GpuArchitecture
from repro.gpu.occupancy import (
    COPY_KERNEL_RESOURCES,
    GEMM_KERNEL_RESOURCES,
    KernelResources,
    OccupancyCalculator,
)


class TestArchitecture:
    def test_v100_matches_paper(self):
        # The paper's evaluation GPU: 80 SMs, ~6 us kernel launch latency,
        # max occupancy for light kernels of 16 (Section V-D).
        assert TESLA_V100.num_sms == 80
        assert TESLA_V100.kernel_launch_latency_us == pytest.approx(6.0)

    def test_blocks_per_wave(self):
        assert TESLA_V100.blocks_per_wave(1) == 80
        assert TESLA_V100.blocks_per_wave(2) == 160

    def test_with_overrides_preserves_other_fields(self):
        small = TESLA_V100.with_overrides(num_sms=4)
        assert small.num_sms == 4
        assert small.fp16_flops_per_sm_us == TESLA_V100.fp16_flops_per_sm_us

    def test_a100_has_more_sms(self):
        assert AMPERE_A100.num_sms > TESLA_V100.num_sms

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            TESLA_V100.with_overrides(compute_efficiency=1.5)

    def test_rejects_non_positive_sms(self):
        with pytest.raises(ValueError):
            TESLA_V100.with_overrides(num_sms=0)


class TestOccupancy:
    def test_gemm_kernel_occupancy_is_one(self):
        calc = OccupancyCalculator(TESLA_V100)
        assert calc.blocks_per_sm(GEMM_KERNEL_RESOURCES) == 1

    def test_copy_kernel_reaches_paper_occupancy(self):
        # Section V-D: 80 SMs x max occupancy 16 = 1280 blocks per wave.
        calc = OccupancyCalculator(TESLA_V100)
        assert calc.blocks_per_sm(COPY_KERNEL_RESOURCES) == 16
        assert calc.blocks_per_wave(COPY_KERNEL_RESOURCES) == 1280

    def test_thread_limited(self):
        calc = OccupancyCalculator(TESLA_V100)
        resources = KernelResources(threads_per_block=1024, registers_per_thread=0, shared_memory_per_block=0)
        assert calc.blocks_per_sm(resources) == 2

    def test_shared_memory_limited(self):
        calc = OccupancyCalculator(TESLA_V100)
        resources = KernelResources(threads_per_block=64, registers_per_thread=16, shared_memory_per_block=48 * 1024)
        assert calc.blocks_per_sm(resources) == 2

    def test_never_below_one(self):
        calc = OccupancyCalculator(TESLA_V100)
        resources = KernelResources(threads_per_block=1024, registers_per_thread=255, shared_memory_per_block=200 * 1024)
        assert calc.blocks_per_sm(resources) == 1

    def test_waves_fractional(self):
        calc = OccupancyCalculator(TESLA_V100)
        resources = KernelResources(threads_per_block=256, registers_per_thread=255, shared_memory_per_block=96 * 1024)
        assert calc.waves(96, resources) == pytest.approx(1.2)
