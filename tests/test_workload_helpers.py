"""Tests for workload helpers, the k-plan merger and auxiliary pieces."""

import pytest

from repro.common.dim3 import Dim3
from repro.gpu.kernel import SemWait
from repro.kernels.base import ReadPlanStep
from repro.kernels.gemm import _merge_k_plans
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.semaphores import SemaphoreAllocator, stage_semaphore_array
from repro.cusync.custage import CuStage
from repro.cusync.policies import RowSync, TileSync
from repro.gpu.memory import GlobalMemory
from repro.kernels.base import StageGeometry
from repro.models import GptMlp, TransformerConfig
from repro.models.workload import make_order
from repro.cusync.tile_orders import GroupedColumnsOrder, RowMajorOrder

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)


class TestMergeKPlans:
    def test_single_unguarded_plan(self):
        a = [ReadPlanStep(rows=(0, 64), cols=(0, 256))]
        b = [ReadPlanStep(rows=(0, 256), cols=(0, 64))]
        chunks = _merge_k_plans(a, b, (0, 256))
        assert len(chunks) == 1
        assert chunks[0].k_range == (0, 256)

    def test_a_plan_boundaries_split_chunks(self):
        wait0 = SemWait("s", 0, 1)
        wait1 = SemWait("s", 1, 1)
        a = [
            ReadPlanStep(rows=(0, 64), cols=(0, 128), waits=(wait0,)),
            ReadPlanStep(rows=(0, 64), cols=(128, 256), waits=(wait1,)),
        ]
        b = [ReadPlanStep(rows=(0, 256), cols=(0, 64))]
        chunks = _merge_k_plans(a, b, (0, 256))
        assert [chunk.k_range for chunk in chunks] == [(0, 128), (128, 256)]
        assert chunks[0].waits == (wait0,)
        assert chunks[1].waits == (wait1,)

    def test_mixed_boundaries(self):
        wait0 = SemWait("s", 0, 1)
        a = [ReadPlanStep(rows=(0, 64), cols=(0, 192), waits=(wait0,))]
        b = [
            ReadPlanStep(rows=(0, 96), cols=(0, 64)),
            ReadPlanStep(rows=(96, 192), cols=(0, 64)),
        ]
        chunks = _merge_k_plans(a, b, (0, 192))
        assert [chunk.k_range for chunk in chunks] == [(0, 96), (96, 192)]
        assert chunks[0].waits == (wait0,)
        assert chunks[1].waits == ()

    def test_empty_plans_give_single_chunk(self):
        chunks = _merge_k_plans([], [], (32, 64))
        assert chunks[0].k_range == (32, 64)


class TestSemaphoreAllocator:
    def _stage(self, name, policy):
        geometry = StageGeometry(grid=Dim3(4, 2, 1), tile_rows=32, tile_cols=32, output="OUT")
        return CuStage(name, geometry, policy=policy)

    def test_allocates_per_stage_arrays(self):
        memory = GlobalMemory()
        producer = self._stage("producer", TileSync())
        consumer = self._stage("consumer", RowSync())
        SemaphoreAllocator(memory).allocate([producer, consumer])
        assert memory.semaphores(stage_semaphore_array("producer")).size == 8
        assert memory.semaphores(stage_semaphore_array("consumer")).size == 2
        assert memory.semaphores("cusync_stage_start").size == 2

    def test_empty_stage_list_is_noop(self):
        memory = GlobalMemory()
        SemaphoreAllocator(memory).allocate([])
        assert not memory.has_semaphores("cusync_stage_start")


class TestWorkloadPolicyHelpers:
    def test_make_order_defaults_to_row_major(self):
        workload = GptMlp(config=TINY, batch_seq=64)
        spec = workload.build()[0]
        assert isinstance(make_order("TileSync", spec), RowMajorOrder)

    def test_strided_order_for_attention_producer(self):
        from repro.models import Attention

        attention = Attention(config=TINY, batch=1, seq=64)
        qkv_spec = attention.build()[0]
        order = make_order("StridedTileSync", qkv_spec)
        assert isinstance(order, (GroupedColumnsOrder, RowMajorOrder))

    def test_explicit_policy_list(self):
        workload = GptMlp(config=TINY, batch_seq=96)
        result = workload.run_cusync(policy=[TileSync(), RowSync()])
        assert result.total_time_us > 0.0

    def test_explicit_optimizations_respected(self):
        workload = GptMlp(config=TINY, batch_seq=96)
        with_wait_kernel = workload.run_cusync(policy="TileSync", optimizations=OptimizationFlags.none())
        assert any(name.startswith("waitkernel") for name in with_wait_kernel.wait_kernel_names)

    def test_auto_flags_for_small_workload(self):
        workload = GptMlp(config=TINY, batch_seq=96)
        flags = workload._auto_flags(workload.build())
        assert set(flags) == {"mlp_gemm1", "mlp_gemm2"}
        for stage_flags in flags.values():
            assert stage_flags.avoid_wait_kernel and stage_flags.reorder_loads
