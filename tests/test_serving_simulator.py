"""End-to-end tests for the serving simulator (:mod:`repro.serving`).

The two acceptance properties of the serving subsystem:

* **Bit-determinism** — two fresh simulators running the same scenario
  produce ``==`` :class:`~repro.serving.LatencyReport` objects, records
  included.
* **The paper's thesis at request level** — on the seeded reference
  scenario, cuSync's end-to-end p99 is no worse than StreamSync's, and
  repeated batch shapes replay from the session sweep cache
  (``sweep_cache_hits > 0``) and, when a store is attached, from disk
  across sessions.
"""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.models import ServingGraphCache, ServingLayer
from repro.models.config import TransformerConfig
from repro.models.serving import bucketed
from repro.pipeline import Session
from repro.service import SweepResultStore
from repro.serving import (
    PoissonArrivals,
    ServingScenario,
    ServingSimulator,
    compare_schemes,
)

TINY = TransformerConfig(name="srv-tiny", hidden=256, layers=2, tensor_parallel=8)


@pytest.fixture()
def scenario():
    return ServingScenario(
        arrivals=PoissonArrivals(
            rate_rps=400.0, prompt_tokens=(16, 96), decode_tokens=(2, 8), seed=7
        ),
        requests=10,
        config=TINY,
        max_batch=4,
        max_kv_tokens=2048,
        max_prefill_tokens=256,
        slo_us=5_000.0,
    )


class TestServingLayerGraphs:
    def test_graph_validates_and_has_seven_stages(self):
        graph = ServingLayer(config=TINY, rows=24, keys=64).to_graph()
        assert len(graph.kernels) == 7

    def test_graph_is_fingerprintable(self):
        graph = ServingLayer(config=TINY, rows=24, keys=64).to_graph()
        assert graph.structural_fingerprint() is not None

    def test_same_shape_same_fingerprint(self):
        a = ServingLayer(config=TINY, rows=24, keys=64).to_graph()
        b = ServingLayer(config=TINY, rows=24, keys=64).to_graph()
        assert a.structural_fingerprint() == b.structural_fingerprint()

    def test_different_shape_different_fingerprint(self):
        a = ServingLayer(config=TINY, rows=24, keys=64).to_graph()
        b = ServingLayer(config=TINY, rows=32, keys=64).to_graph()
        assert a.structural_fingerprint() != b.structural_fingerprint()

    def test_runs_under_all_schemes(self):
        graph = ServingLayer(config=TINY, rows=16, keys=64).to_graph()
        session = Session()
        from repro.gpu.arch import TESLA_V100
        from repro.pipeline import SweepPoint

        for scheme, policy in (
            ("streamsync", None),
            ("streamk", None),
            ("cusync", "TileSync"),
        ):
            result = session.sweep_point(
                graph, SweepPoint(scheme=scheme, policy=policy, arch=TESLA_V100)
            )
            assert result.total_time_us > 0.0


class TestGraphCacheBucketing:
    def test_bucketed_rounds_up(self):
        assert bucketed(1, 8) == 8
        assert bucketed(8, 8) == 8
        assert bucketed(9, 8) == 16

    def test_shapes_collapse_onto_buckets(self):
        cache = ServingGraphCache(config=TINY, row_bucket=8, kv_bucket=64)
        g1 = cache.graph_for(3, 50)
        g2 = cache.graph_for(7, 64)  # same (8, 64) bucket
        g3 = cache.graph_for(9, 64)  # new (16, 64) bucket
        assert g1 is g2
        assert g3 is not g1
        assert cache.distinct_shapes == 2
        assert cache.builds == 2
        assert cache.reuses == 1


class TestDeterminism:
    def test_two_fresh_runs_identical_reports(self, scenario):
        first = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        second = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        assert first == second  # records included: bit-determinism

    def test_warm_session_changes_counters_not_latencies(self, scenario):
        simulator = ServingSimulator(scheme="cusync", session=Session())
        cold = simulator.run(scenario)
        warm = simulator.run(scenario)
        assert warm.records == cold.records
        assert warm.sweep_cache_misses == 0  # everything replays


class TestAcceptance:
    def test_cusync_p99_no_worse_than_streamsync(self, scenario):
        reports = compare_schemes(scenario, schemes=("streamsync", "cusync"))
        assert reports["cusync"].p99_total_us <= reports["streamsync"].p99_total_us
        assert reports["cusync"].p50_total_us <= reports["streamsync"].p50_total_us

    def test_repeated_shapes_hit_sweep_cache(self, scenario):
        report = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        assert report.sweep_cache_hits > 0
        assert report.iterations == report.sweep_cache_hits + report.sweep_cache_misses
        assert report.distinct_shapes == report.sweep_cache_misses

    def test_all_requests_complete_with_full_decomposition(self, scenario):
        report = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        assert report.completed == scenario.requests
        for record in report.records:
            assert record.queue_us >= 0.0
            assert record.prefill_us > 0.0
            assert record.decode_us >= 0.0
            assert record.total_us == pytest.approx(
                record.queue_us + record.prefill_us + record.decode_us
            )
            assert record.ttft_us == pytest.approx(
                record.queue_us + record.prefill_us
            )

    def test_store_tier_replays_across_sessions(self, scenario, tmp_path):
        first = ServingSimulator(
            scheme="cusync", session=Session(result_store=SweepResultStore(tmp_path))
        ).run(scenario)
        assert first.store_hits == 0  # cold store
        second = ServingSimulator(
            scheme="cusync", session=Session(result_store=SweepResultStore(tmp_path))
        ).run(scenario)
        assert second.store_hits > 0
        assert second.records == first.records


class TestScenarioAndSimulatorSurface:
    def test_non_cusync_scheme_drops_policy(self):
        simulator = ServingSimulator(scheme="streamsync", policy="TileSync")
        assert simulator.policy is None

    def test_scheme_reports_carry_labels(self, scenario):
        report = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        assert report.scheme == "cusync"
        assert report.policy == "TileSync"
        assert report.arch  # resolved arch name

    def test_invalid_scenarios_rejected(self):
        arrivals = PoissonArrivals(rate_rps=100.0, seed=0)
        with pytest.raises(ServingError):
            ServingScenario(arrivals=arrivals, requests=0)
        with pytest.raises(ServingError):
            ServingScenario(arrivals=arrivals, requests=1, iteration_overhead_us=-1.0)
        with pytest.raises(ServingError):
            ServingScenario(arrivals=arrivals, requests=1, slo_us=0.0)

    def test_iteration_overhead_slows_everything(self, scenario):
        from dataclasses import replace

        base = ServingSimulator(scheme="cusync", session=Session()).run(scenario)
        padded = ServingSimulator(scheme="cusync", session=Session()).run(
            replace(scenario, iteration_overhead_us=50.0)
        )
        assert padded.p50_total_us > base.p50_total_us
