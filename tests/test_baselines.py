"""Tests for the StreamSync and Stream-K baseline executors."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels.epilogue import GeLU
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem
from repro.kernels.streamk import StreamKGemmKernel
from repro.baselines import StreamKExecutor, StreamSyncExecutor


def mlp_kernels(cost_model, m=96, n=128, k=128):
    problem1 = GemmProblem(m=m, n=n, k=k, a="X", b="W1", c="XW1")
    problem2 = GemmProblem(m=m, n=n, k=n, a="XW1", b="W2", c="XW12")
    config = GemmConfig(tile_m=32, tile_n=32, tile_k=32)
    return (
        GemmKernel("g1", problem1, config, epilogue=GeLU(), cost_model=cost_model),
        GemmKernel("g2", problem2, config, cost_model=cost_model, sync_inputs=("XW1",)),
    )


class TestStreamSyncExecutor:
    def test_kernels_serialize(self, small_arch, small_cost_model):
        k1, k2 = mlp_kernels(small_cost_model)
        result = StreamSyncExecutor(arch=small_arch, cost_model=small_cost_model).run([k1, k2])
        stats = result.simulation.trace.kernels
        assert stats["g2"].start_time_us >= stats["g1"].end_time_us

    def test_sync_stripped_from_kernels(self, small_arch, small_cost_model):
        from repro.kernels.base import NoSync

        k1, k2 = mlp_kernels(small_cost_model)
        StreamSyncExecutor(arch=small_arch, cost_model=small_cost_model).run([k1, k2])
        assert isinstance(k2.sync, NoSync)

    def test_functional_result(self, small_arch, small_cost_model, rng):
        k1, k2 = mlp_kernels(small_cost_model)
        X = rng.standard_normal((96, 128)).astype(np.float32)
        W1 = rng.standard_normal((128, 128)).astype(np.float32) * 0.1
        W2 = rng.standard_normal((128, 128)).astype(np.float32) * 0.1
        executor = StreamSyncExecutor(arch=small_arch, cost_model=small_cost_model, functional=True)
        result = executor.run([k1, k2], tensors={"X": X, "W1": W1, "W2": W2})
        np.testing.assert_allclose(
            result.tensor("XW12"), GeLU().apply(X @ W1) @ W2, rtol=1e-3, atol=1e-3
        )

    def test_rejects_empty(self, small_arch, small_cost_model):
        with pytest.raises(SimulationError):
            StreamSyncExecutor(arch=small_arch, cost_model=small_cost_model).run([])


class TestStreamKExecutor:
    def test_convert_gemm(self, v100_cost_model):
        k1, _ = mlp_kernels(v100_cost_model, m=256, n=6144, k=4096)
        converted = StreamKExecutor.convert(k1, v100_cost_model)
        assert isinstance(converted, StreamKGemmKernel)

    def test_convert_leaves_non_gemm(self, v100_cost_model):
        from repro.kernels.softmax_dropout import SoftmaxDropoutKernel, SoftmaxDropoutProblem

        softmax = SoftmaxDropoutKernel("s", SoftmaxDropoutProblem(rows=8, row_length=8))
        assert StreamKExecutor.convert(softmax, v100_cost_model) is softmax

    def test_run_mixed_pipeline(self, v100_cost_model):
        problem = GemmProblem(m=256, n=6144, k=2048)
        streamk = StreamKGemmKernel("gemm", problem, GemmConfig(256, 256, 32), cost_model=v100_cost_model)
        result = StreamKExecutor(cost_model=v100_cost_model).run([streamk])
        assert result.total_time_us > 0.0

    def test_rejects_empty(self, v100_cost_model):
        with pytest.raises(SimulationError):
            StreamKExecutor(cost_model=v100_cost_model).run([])
