"""The first-class architecture space: ArchSpec, the registry, validation.

Property tests (hypothesis) pin the acceptance guarantees of the arch
axis: every registered ArchSpec roundtrips through pickle, resolves to a
memoized instance, and produces identical traces across the three sweep
modes.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from differential_harness import TINY_GPT, assert_modes_identical, differential_work
from repro.errors import ModelConfigError
from repro.gpu.arch import (
    ADA_RTX_4090,
    AMPERE_A100,
    ArchSpec,
    GpuArchitecture,
    HOPPER_H100,
    TESLA_V100,
    canonical_arch_key,
    register_arch,
    registered_archs,
    resolve_arch,
    unregister_arch,
)
from repro.models import GptMlp
from repro.pipeline import Session, SweepPoint

ARCH_NAMES = st.sampled_from(registered_archs())

#: Small override grids that keep resolution valid for every preset.
OVERRIDES = st.fixed_dictionaries(
    {},
    optional={
        "num_sms": st.integers(min_value=1, max_value=160),
        "kernel_launch_latency_us": st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        "compute_efficiency": st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    },
)


class TestRegistry:
    def test_presets_registered(self):
        assert set(registered_archs()) >= {"V100", "A100", "H100-SXM", "RTX-4090"}
        assert resolve_arch("V100") is TESLA_V100
        assert resolve_arch("a100") is AMPERE_A100
        assert resolve_arch("h100") is HOPPER_H100  # alias
        assert resolve_arch("4090") is ADA_RTX_4090  # alias
        assert resolve_arch(TESLA_V100) is TESLA_V100  # instance passthrough

    def test_unknown_arch_rejected(self):
        with pytest.raises(ModelConfigError, match="unknown GPU architecture"):
            resolve_arch("MI300X")
        with pytest.raises(ModelConfigError, match="non-empty"):
            ArchSpec("")

    def test_register_unregister_roundtrip(self):
        custom = TESLA_V100.with_overrides(name="Custom-GPU", num_sms=42)
        register_arch("Custom-GPU", custom, aliases=("custom",))
        try:
            assert resolve_arch("custom") is custom
            assert "Custom-GPU" in registered_archs()
            with pytest.raises(ModelConfigError, match="already registered"):
                register_arch("custom", custom)
        finally:
            unregister_arch("Custom-GPU")
        assert "Custom-GPU" not in registered_archs()
        with pytest.raises(ModelConfigError):
            resolve_arch("custom")

    def test_overwrite_replaces_and_cleans_aliases(self):
        first = TESLA_V100.with_overrides(name="Tmp-GPU", num_sms=10)
        second = TESLA_V100.with_overrides(name="Tmp-GPU", num_sms=20)
        register_arch("Tmp-GPU", first, aliases=("tmp",))
        try:
            register_arch("Tmp-GPU", second, overwrite=True)
            assert resolve_arch("Tmp-GPU") is second
            # The whole previous registration is replaced: the old alias
            # does not keep resolving to the stale architecture.
            with pytest.raises(ModelConfigError):
                resolve_arch("tmp")
            register_arch("Tmp-GPU", second, aliases=("tmp",), overwrite=True)
            assert resolve_arch("tmp") is second
        finally:
            unregister_arch("Tmp-GPU")
        with pytest.raises(ModelConfigError):
            resolve_arch("tmp")

    def test_resolution_memoized_per_spec(self):
        spec = ArchSpec("A100", num_sms=54)
        assert resolve_arch(spec) is resolve_arch(ArchSpec("a100", num_sms=54))
        assert resolve_arch(spec).num_sms == 54

    def test_override_specs_resolve_to_distinct_names(self):
        """Distinct override specs must not collide with the preset by
        name — results (sweep baselines, comparison tables) key on it."""
        overridden = resolve_arch(ArchSpec("V100", num_sms=40))
        assert overridden.name != TESLA_V100.name
        assert "num_sms=40" in overridden.name
        # An explicit name override wins unchanged.
        named = resolve_arch(ArchSpec("V100", num_sms=40, name="Half-V100"))
        assert named.name == "Half-V100"

    def test_overwrite_cannot_hijack_other_registrations(self):
        a1 = TESLA_V100.with_overrides(name="Reg-A", num_sms=10)
        a2 = TESLA_V100.with_overrides(name="Reg-B", num_sms=20)
        a3 = TESLA_V100.with_overrides(name="Reg-A", num_sms=30)
        register_arch("Reg-A", a1)
        register_arch("Reg-B", a2)
        try:
            # overwrite=True only covers Reg-A's own previous registration;
            # claiming Reg-B's name as an alias must still be rejected.
            with pytest.raises(ModelConfigError, match="already registered"):
                register_arch("Reg-A", a3, aliases=("reg-b",), overwrite=True)
            assert resolve_arch("Reg-B") is a2
            # The failed call left Reg-A's previous registration intact.
            assert resolve_arch("Reg-A") is a1
        finally:
            unregister_arch("Reg-B")
            unregister_arch("Reg-A")

    def test_canonical_key_coalesces_instance_and_name_paths(self):
        assert canonical_arch_key(TESLA_V100) == ArchSpec("V100")
        assert canonical_arch_key("v100") == ArchSpec("V100")
        bespoke = TESLA_V100.with_overrides(name="bespoke", num_sms=8)
        key = canonical_arch_key(bespoke)
        assert key == ("arch-instance", id(bespoke))

    def test_session_caches_flush_on_registry_mutation(self):
        """An overwrite re-registration must not leave a session pairing
        the new architecture with the old architecture's cost model."""
        first = TESLA_V100.with_overrides(name="Gen-GPU", num_sms=10)
        second = TESLA_V100.with_overrides(name="Gen-GPU", num_sms=80)
        register_arch("Gen-GPU", first)
        try:
            session = Session()
            assert session.cost_model("Gen-GPU").arch.num_sms == 10
            register_arch("Gen-GPU", second, overwrite=True)
            assert session.cost_model("Gen-GPU").arch.num_sms == 80
        finally:
            unregister_arch("Gen-GPU")

    def test_session_custom_cost_model_survives_registry_flush(self):
        from repro.gpu.costmodel import CostModel

        calibrated = CostModel(arch=TESLA_V100, duration_jitter=0.0)
        session = Session(arch="V100", cost_model=calibrated)
        assert session.cost_model() is calibrated
        register_arch("Flush-GPU", TESLA_V100.with_overrides(name="Flush-GPU"))
        try:
            # The registry changed; derived entries flush, the session's
            # own calibrated model is re-pinned.
            assert session.cost_model() is calibrated
            assert session.cost_model("V100") is calibrated
        finally:
            unregister_arch("Flush-GPU")

    def test_session_shares_cost_models_across_paths(self):
        session = Session(arch="V100")
        assert (
            session.cost_model("V100")
            is session.cost_model(TESLA_V100)
            is session.cost_model(ArchSpec("v100"))
        )
        assert session.cost_model("A100") is not session.cost_model("V100")


class TestValidation:
    def test_latencies_must_be_non_negative(self):
        with pytest.raises(ValueError, match="kernel_launch_latency_us"):
            TESLA_V100.with_overrides(kernel_launch_latency_us=-1.0)

    def test_occupancy_bounds_enforced(self):
        with pytest.raises(ValueError, match="max_threads_per_block"):
            TESLA_V100.with_overrides(max_threads_per_block=4096)
        with pytest.raises(ValueError):
            TESLA_V100.with_overrides(num_sms=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ModelConfigError, match="unknown GpuArchitecture field"):
            TESLA_V100.with_overrides(smm_count=80)
        with pytest.raises(ModelConfigError, match="unknown GpuArchitecture field"):
            resolve_arch(ArchSpec("V100", smm_count=80))

    def test_scaled_factors_must_be_positive(self):
        with pytest.raises(ModelConfigError, match="must be positive"):
            ArchSpec("V100").scaled(sms=0.0)

    def test_scaled_derives_quantities(self):
        spec = ArchSpec("V100").scaled(sms=0.5, bandwidth=2.0, latency=0.5)
        arch = resolve_arch(spec)
        assert arch.num_sms == TESLA_V100.num_sms // 2
        assert arch.bytes_per_sm_us == pytest.approx(2 * TESLA_V100.bytes_per_sm_us)
        assert arch.kernel_launch_latency_us == pytest.approx(
            TESLA_V100.kernel_launch_latency_us / 2
        )
        assert "[" in arch.name  # the what-if name records the factors


class TestSpecProperties:
    @given(ARCH_NAMES, OVERRIDES)
    @settings(max_examples=60, deadline=None)
    def test_spec_pickle_roundtrip(self, name, overrides):
        """Any registered ArchSpec roundtrips through pickle: equal, same
        hash, and resolving to the identical memoized instance."""
        spec = ArchSpec(name, **overrides)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert resolve_arch(clone) is resolve_arch(spec)
        assert isinstance(resolve_arch(spec), GpuArchitecture)

    @given(ARCH_NAMES)
    @settings(max_examples=10, deadline=None)
    def test_spec_points_sweep_identically_across_modes(self, name):
        """A SweepPoint carrying any registered ArchSpec produces identical
        results across serial/thread/process modes (the differential
        harness's core guarantee, per architecture)."""
        graph = _TINY_GRAPH
        work = differential_work(
            [graph], arches=(ArchSpec(name),), schemes=("cusync",), policies=("TileSync",)
        )
        results = assert_modes_identical(work)
        assert len(results) == 1
        assert results[0].arch_name == resolve_arch(name).name

    @given(ARCH_NAMES)
    @settings(max_examples=10, deadline=None)
    def test_name_spec_and_instance_points_agree(self, name):
        """The same point expressed as a name, a spec and an instance
        produces one identical result (the shim paths are exact)."""
        graph = _TINY_GRAPH
        session = Session()
        variants = [name, ArchSpec(name), resolve_arch(name)]
        sweeps = [
            session.sweep(
                [(graph, SweepPoint("cusync", "TileSync", arch))], mode="serial"
            )[0]
            for arch in variants
        ]
        assert sweeps[0] == sweeps[1] == sweeps[2]


#: One tiny graph shared by the property tests (building it per example
#: would dominate the runtime).
_TINY_GRAPH = GptMlp(config=TINY_GPT, batch_seq=96).to_graph()
