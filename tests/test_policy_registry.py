"""The first-class policy space: specs, registry, per-edge assignments.

Covers the acceptance criteria of the policy-API redesign:

* ``PolicySpec`` is hashable, picklable and registry-resolvable;
* ``register_policy`` extends the family space without touching executors;
* a single ``PipelineGraph`` runs with *different* policies on different
  edges in one execution (per-edge ``PolicyAssignment`` / ``Edge.policy``),
  and uniform spec/assignment selections stay bit-identical to the legacy
  family strings.
"""

import pickle

import pytest

from repro.common.dim3 import Dim3
from repro.errors import GraphValidationError, ModelConfigError
from repro.cusync.policies import (
    BatchSync,
    PolicyAssignment,
    PolicyContext,
    PolicySpec,
    RowSync,
    StridedSync,
    SyncPolicy,
    TileSync,
    register_policy,
    registered_policies,
    resolve_policy,
    unregister_policy,
)
from repro.gpu.arch import TESLA_V100
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem
from repro.models.config import TransformerConfig
from repro.models.mlp import GptMlp
from repro.pipeline import Edge, PipelineGraph, StageSpec, run

TINY = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)


class TestPolicySpec:
    def test_equality_and_hash(self):
        assert PolicySpec("RowSync") == PolicySpec("rowsync")  # family case-insensitive
        assert hash(PolicySpec("RowSync")) == hash(PolicySpec("rowsync"))
        assert PolicySpec("StridedSync", stride=4) == PolicySpec("StridedSync", stride=4)
        assert PolicySpec("StridedSync", stride=4) != PolicySpec("StridedSync", stride=8)
        assert PolicySpec("TileSync") != PolicySpec("RowSync")

    def test_usable_as_dict_key(self):
        table = {PolicySpec("StridedSync", stride=4): "a"}
        assert table[PolicySpec("StridedSync", stride=4)] == "a"

    def test_pickle_roundtrip(self):
        spec = PolicySpec("StridedSync", stride=4)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_immutable(self):
        spec = PolicySpec("TileSync")
        with pytest.raises(AttributeError):
            spec.family = "RowSync"

    def test_label(self):
        assert PolicySpec("RowSync").label() == "RowSync"
        assert PolicySpec("StridedSync", stride=4).label() == "StridedSync(stride=4)"

    def test_rejects_empty_family(self):
        with pytest.raises(ModelConfigError):
            PolicySpec("")

    def test_coerce(self):
        assert PolicySpec.coerce("RowSync") == PolicySpec("RowSync")
        spec = PolicySpec("TileSync")
        assert PolicySpec.coerce(spec) is spec
        with pytest.raises(ModelConfigError):
            PolicySpec.coerce(TileSync())


class TestRegistry:
    def test_builtin_families_registered(self):
        families = registered_policies()
        for family in ("TileSync", "RowSync", "Conv2DTileSync", "BatchSync",
                       "StridedSync", "StridedTileSync"):
            assert family in families

    def test_resolve_builtins(self):
        assert isinstance(resolve_policy("TileSync"), TileSync)
        assert isinstance(resolve_policy("row"), RowSync)
        assert isinstance(resolve_policy(PolicySpec("BatchSync")), BatchSync)
        instance = RowSync()
        assert resolve_policy(instance) is instance  # instances pass through

    def test_unknown_family(self):
        with pytest.raises(ModelConfigError, match="unknown synchronization policy family"):
            resolve_policy("NoSuchSync")

    def test_builtin_rejects_parameters(self):
        with pytest.raises(ModelConfigError, match="takes no parameters"):
            resolve_policy(PolicySpec("TileSync", stride=2))

    def test_stridedsync_stride_and_groups(self):
        ctx = PolicyContext(logical_grid=Dim3(6, 2, 1))
        assert resolve_policy(PolicySpec("StridedSync", stride=2)).stride == 2
        assert resolve_policy(PolicySpec("StridedSync", groups=3), ctx).stride == 2
        with pytest.raises(ModelConfigError, match="stride=... or groups=..."):
            resolve_policy(PolicySpec("StridedSync"))

    def test_strided_tilesync_adapts_to_context(self):
        divisible = PolicyContext(logical_grid=Dim3(6, 2, 1), strided_groups=3)
        resolved = resolve_policy("StridedTileSync", divisible)
        assert isinstance(resolved, StridedSync) and resolved.stride == 2
        # No groups, or an indivisible grid: falls back to TileSync.
        assert isinstance(resolve_policy("StridedTileSync", PolicyContext()), TileSync)
        indivisible = PolicyContext(logical_grid=Dim3(7, 2, 1), strided_groups=3)
        assert isinstance(resolve_policy("StridedTileSync", indivisible), TileSync)

    def test_register_resolve_unregister_custom_family(self):
        class EverySync(SyncPolicy):
            """One semaphore for the whole grid."""

            name = "EverySync"

            def num_semaphores(self, grid):
                return 1

            def semaphore_index(self, tile, grid):
                return 0

            def expected_value(self, tile, grid):
                return grid.volume

        register_policy("EverySync", lambda params, ctx: EverySync(), aliases=("every",))
        try:
            assert "EverySync" in registered_policies()
            assert isinstance(resolve_policy("every"), EverySync)
            # Re-registering a taken name must be explicit.
            with pytest.raises(ModelConfigError, match="already registered"):
                register_policy("EverySync", lambda params, ctx: EverySync())
            register_policy(
                "EverySync", lambda params, ctx: EverySync(), overwrite=True
            )
        finally:
            unregister_policy("EverySync")
        assert "EverySync" not in registered_policies()
        with pytest.raises(ModelConfigError):
            resolve_policy("every")  # aliases die with the entry

    def test_conflicting_alias_leaves_no_partial_registration(self):
        """A rejected registration must be all-or-nothing: if an alias is
        already taken, the canonical name must not be left registered."""
        with pytest.raises(ModelConfigError, match="already registered"):
            register_policy("FreshSync", lambda params, ctx: TileSync(), aliases=("tile",))
        assert "FreshSync" not in registered_policies()
        register_policy("FreshSync", lambda params, ctx: TileSync())  # retry works
        unregister_policy("FreshSync")

    def test_custom_family_runs_end_to_end(self):
        class WholeGridSync(SyncPolicy):
            name = "WholeGridSync"

            def num_semaphores(self, grid):
                return 1

            def semaphore_index(self, tile, grid):
                return 0

            def expected_value(self, tile, grid):
                return grid.volume

        register_policy("WholeGridSync", lambda params, ctx: WholeGridSync())
        try:
            graph = GptMlp(config=TINY, batch_seq=96).to_graph()
            result = run(graph, scheme="cusync", policy="WholeGridSync")
            assert result.total_time_us > 0.0
        finally:
            unregister_policy("WholeGridSync")


class TestPolicyAssignment:
    def test_precedence_exact_edge_over_pair_over_stage_over_default(self):
        assignment = PolicyAssignment(
            default="TileSync",
            stages={"p": "RowSync"},
            edges={("p", "c"): "BatchSync", ("p", "c", "T"): "StridedTileSync"},
        )
        assert assignment.spec_for_stage("p") == PolicySpec("RowSync")
        assert assignment.spec_for_stage("other") == PolicySpec("TileSync")
        assert assignment.spec_for_edge("p", "c", "T") == PolicySpec("StridedTileSync")
        assert assignment.spec_for_edge("p", "c", "U") == PolicySpec("BatchSync")
        assert assignment.spec_for_edge("p", "x", "T") is None  # inherit stage

    def test_builders_hash_and_pickle(self):
        base = PolicyAssignment(default="TileSync")
        extended = base.with_edge(("a", "b", "T"), "RowSync").with_stage("a", "RowSync")
        assert base != extended
        rebuilt = PolicyAssignment(
            default="TileSync", stages={"a": "RowSync"}, edges={("a", "b", "T"): "RowSync"}
        )
        assert extended == rebuilt
        assert hash(extended) == hash(rebuilt)
        assert pickle.loads(pickle.dumps(extended)) == extended

    def test_coerce(self):
        uniform = PolicyAssignment.coerce("RowSync")
        assert uniform.default == PolicySpec("RowSync") and not uniform.edges
        assignment = PolicyAssignment(default="TileSync")
        assert PolicyAssignment.coerce(assignment) is assignment

    def test_label_mentions_overrides(self):
        assignment = PolicyAssignment(
            default="TileSync", edges={("a", "b", "T"): "RowSync"}
        )
        assert "TileSync" in assignment.label()
        assert "a->b:T=RowSync" in assignment.label()


def _two_gemm_graph(edge_policy=None):
    """Producer feeding one consumer through tensor XW1 (quickstart shape)."""
    problem1 = GemmProblem(m=256, n=512, k=1024, a="X", b="W1", c="XW1")
    problem2 = GemmProblem(m=256, n=1024, k=512, a="XW1", b="W2", c="XW12")
    config = GemmConfig(tile_m=64, tile_n=64, tile_k=32)
    producer = GemmKernel("gemm1", problem1, config)
    consumer = GemmKernel("gemm2", problem2, config, sync_inputs=("XW1",))
    return PipelineGraph(
        stages=[StageSpec("gemm1", producer), StageSpec("gemm2", consumer)],
        edges=[Edge("gemm1", "gemm2", tensor="XW1", policy=edge_policy)],
    )


class TestPerEdgePolicies:
    def test_uniform_spec_and_assignment_match_legacy_string(self):
        graph = _two_gemm_graph()
        legacy = run(graph, scheme="cusync", policy="RowSync").total_time_us
        spec = run(graph, scheme="cusync", policy=PolicySpec("RowSync")).total_time_us
        assignment = run(
            graph, scheme="cusync", policy=PolicyAssignment(default="RowSync")
        ).total_time_us
        assert legacy == spec == assignment

    def test_one_graph_mixes_policies_across_edges(self):
        """The acceptance criterion: a single graph, one execution,
        different policies on different edges of the same producer."""
        from repro.cusync.handle import CuSyncPipeline

        problem1 = GemmProblem(m=256, n=512, k=1024, a="X", b="W1", c="XW1")
        problem2 = GemmProblem(m=256, n=512, k=512, a="XW1", b="W2", c="OUT1")
        problem3 = GemmProblem(m=256, n=512, k=512, a="XW1", b="W3", c="OUT2")
        config = GemmConfig(tile_m=64, tile_n=64, tile_k=32)
        producer = GemmKernel("fanout", problem1, config)
        left = GemmKernel("left", problem2, config, sync_inputs=("XW1",))
        right = GemmKernel("right", problem3, config, sync_inputs=("XW1",))
        graph = PipelineGraph(
            stages=[StageSpec("fanout", producer), StageSpec("left", left), StageSpec("right", right)],
            edges=[
                Edge("fanout", "left", tensor="XW1"),
                Edge("fanout", "right", tensor="XW1"),
            ],
        )
        assignment = PolicyAssignment(
            default="TileSync", edges={("fanout", "right", "XW1"): "RowSync"}
        )
        mixed = run(graph, scheme="cusync", policy=assignment)
        uniform = run(graph, scheme="cusync", policy="TileSync")
        assert mixed.total_time_us > 0.0
        assert mixed.total_time_us != uniform.total_time_us  # policies really differ

        # Inspect the binding the executor builds: the left edge waits on
        # the producer's default (TileSync) array, the right edge on a
        # dedicated RowSync slot, and the producer posts both.
        pipeline = CuSyncPipeline()
        p = pipeline.add_stage(producer, policy=TileSync(), name="fanout")
        l = pipeline.add_stage(left, policy=TileSync(), name="left")
        r = pipeline.add_stage(right, policy=TileSync(), name="right")
        pipeline.add_dependency(p, l, "XW1")
        pipeline.add_dependency(p, r, "XW1", policy=RowSync())
        arrays = dict(p.semaphore_slots())
        assert len(arrays) == 2
        posts = p.posts_for(Dim3(0, 0, 0), producer.grid)
        assert [post.array for post in posts] == list(arrays)
        left_waits = {w.array for step in l.plan_reads("XW1", (0, 64), (0, 512)) for w in step.waits}
        right_waits = {w.array for step in r.plan_reads("XW1", (0, 64), (0, 512)) for w in step.waits}
        assert left_waits == {p.semaphore_array}
        assert right_waits and right_waits != left_waits

    def test_edge_policy_field_overrides_run_family(self):
        pinned = _two_gemm_graph(edge_policy="RowSync")
        free = _two_gemm_graph()
        # The pinned edge synchronizes under RowSync no matter the run family.
        pinned_under_tile = run(pinned, scheme="cusync", policy="TileSync").total_time_us
        free_under_tile = run(free, scheme="cusync", policy="TileSync").total_time_us
        assert pinned_under_tile != free_under_tile

    def test_edge_override_equal_to_stage_default_is_free(self):
        """An override that matches the producer's policy collapses to slot 0
        (no extra semaphore arrays, no extra posts) and stays bit-identical."""
        pinned = _two_gemm_graph(edge_policy="TileSync")
        free = _two_gemm_graph()
        assert (
            run(pinned, scheme="cusync", policy="TileSync").total_time_us
            == run(free, scheme="cusync", policy="TileSync").total_time_us
        )

    def test_assignment_naming_unknown_edge_or_stage_rejected(self):
        graph = _two_gemm_graph()
        with pytest.raises(GraphValidationError, match="no such edge"):
            run(graph, scheme="cusync",
                policy=PolicyAssignment(edges={("gemm1", "gemm2", "BOGUS"): "RowSync"}))
        with pytest.raises(GraphValidationError, match="no edge between"):
            run(graph, scheme="cusync",
                policy=PolicyAssignment(edges={("gemm2", "gemm1"): "RowSync"}))
        with pytest.raises(GraphValidationError, match="no such stage"):
            run(graph, scheme="cusync",
                policy=PolicyAssignment(stages={"nope": "RowSync"}))

    def test_legacy_golden_paths_still_accept_strings(self):
        graph = GptMlp(config=TINY, batch_seq=96).to_graph()
        for family in ("TileSync", "RowSync"):
            result = run(graph, scheme="cusync", policy=family, arch=TESLA_V100)
            assert result.total_time_us > 0.0
