"""Per-policy-slot post elision: unused slot-0 semaphore posts are skipped.

When every consumer edge of a producer overrides the producer's default
policy, nothing ever waits on the stage's slot-0 semaphore array, and a
faithful cuSync producer does not pay atomic increments for a scheme no
consumer registered.  The elision is defended two ways:

* **Trace equivalence** — a run whose single edge overrides the default
  with policy X (slot 0 elided, only X's array posted) is bit-identical to
  running X uniformly (X posted on slot 0): the per-tile post counts,
  waits and therefore every block's timing match; only the semaphore
  array *name* differs, which traces do not record.
* **Against the unelided run** — with elision disabled (the PR-3
  behaviour), the producer pays one extra post per tile, so the elided
  run is never slower and the block population is unchanged.
"""

import pytest

from differential_harness import TINY_GPT, assert_traces_equivalent, capture_trace
from repro.common.dim3 import Dim3
from repro.cusync.custage import CuStage
from repro.cusync.policies import PolicyAssignment, RowSync, TileSync
from repro.kernels.base import StageGeometry
from repro.models import GptMlp
from repro.pipeline import SweepPoint

EDGE = ("mlp_gemm1", "mlp_gemm2", "XW1")


@pytest.fixture
def graph():
    return GptMlp(config=TINY_GPT, batch_seq=96).to_graph()


def _geometry() -> StageGeometry:
    return StageGeometry(grid=Dim3(4, 3, 1), tile_rows=16, tile_cols=32, output="OUT")


class TestCuStageElision:
    def test_elides_when_every_edge_overrides(self):
        producer = CuStage("producer", _geometry(), policy=RowSync())
        consumer = CuStage("consumer", _geometry(), policy=TileSync())
        consumer.depends_on(producer, "OUT", policy=TileSync())
        assert producer.slot0_posts_elided
        posts = producer.posts_for(Dim3(0, 0, 0), producer.grid)
        assert [post.array for post in posts] == ["cusync_producer_sems.1"]

    def test_no_elision_when_any_edge_uses_slot0(self):
        producer = CuStage("producer", _geometry(), policy=RowSync())
        override = CuStage("override", _geometry(), policy=TileSync())
        inheritor = CuStage("inheritor", _geometry(), policy=TileSync())
        override.depends_on(producer, "OUT", policy=TileSync())
        inheritor.depends_on(producer, "OUT")
        assert not producer.slot0_posts_elided
        posts = producer.posts_for(Dim3(0, 0, 0), producer.grid)
        assert [post.array for post in posts] == [
            "cusync_producer_sems",
            "cusync_producer_sems.1",
        ]

    def test_no_elision_without_edge_overrides(self):
        producer = CuStage("producer", _geometry(), policy=RowSync())
        consumer = CuStage("consumer", _geometry(), policy=TileSync())
        consumer.depends_on(producer, "OUT")
        assert not producer.slot0_posts_elided
        assert [post.array for post in producer.posts_for(Dim3(0, 0, 0), producer.grid)] == [
            "cusync_producer_sems"
        ]

    def test_value_identical_override_uses_slot0(self):
        """An override equal to the stage default is slot 0, never elided."""
        producer = CuStage("producer", _geometry(), policy=TileSync())
        consumer = CuStage("consumer", _geometry(), policy=TileSync())
        consumer.depends_on(producer, "OUT", policy=TileSync())
        assert not producer.slot0_posts_elided


class TestTraceEquivalence:
    def test_elided_override_matches_uniform_policy_trace(self, graph):
        """default=RowSync + edge override TileSync (slot 0 elided) is
        trace-equivalent to uniform TileSync: same posts per tile, same
        waits, bit-identical block records."""
        mixed = PolicyAssignment(default="RowSync", edges={EDGE: "TileSync"})
        elided = capture_trace(graph, SweepPoint("cusync", mixed, "V100"))
        uniform = capture_trace(graph, SweepPoint("cusync", "TileSync", "V100"))
        assert_traces_equivalent(elided, uniform)

    def test_unelided_run_is_never_faster(self, graph, monkeypatch):
        """Against the unelided (PR-3) behaviour: same block population,
        the extra slot-0 posts only add overhead."""
        mixed = PolicyAssignment(default="RowSync", edges={EDGE: "TileSync"})
        point = SweepPoint("cusync", mixed, "V100")
        elided = capture_trace(graph, point)
        monkeypatch.setattr(CuStage, "elide_idle_slot0", False)
        unelided = capture_trace(graph, point)
        assert len(elided["blocks"]) == len(unelided["blocks"])
        assert sorted(elided["kernels"]) == sorted(unelided["kernels"])
        assert elided["total_time_us"] <= unelided["total_time_us"]
        # The unelided producer pays a real per-tile post cost.
        producer = "mlp_gemm1"
        assert (
            elided["kernels"][producer]["duration_us"]
            < unelided["kernels"][producer]["duration_us"]
        )

    def test_uniform_runs_unaffected_by_elision_flag(self, graph, monkeypatch):
        """Single-policy runs never trigger elision: the flag is inert."""
        before = capture_trace(graph, SweepPoint("cusync", "RowSync", "V100"))
        monkeypatch.setattr(CuStage, "elide_idle_slot0", False)
        after = capture_trace(graph, SweepPoint("cusync", "RowSync", "V100"))
        assert_traces_equivalent(before, after)
