"""Tests for validation helpers and the exception hierarchy."""

import pytest

from repro.common.validation import check_in_range, check_non_negative, check_positive, check_type
from repro import errors


class TestValidationHelpers:
    def test_check_positive_accepts(self):
        assert check_positive("x", 3) == 3

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_in_range(self):
        assert check_in_range("x", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_check_type(self):
        assert check_type("x", 3, int) == 3
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)

    def test_check_type_tuple(self):
        assert check_type("x", 3.0, (int, float)) == 3.0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "SimulationError",
            "DeadlockError",
            "SynchronizationError",
            "DataRaceError",
            "DslError",
            "DslBoundsError",
            "CodegenError",
            "ModelConfigError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_deadlock_error_records_waiting_blocks(self):
        error = errors.DeadlockError("stuck", waiting_blocks=["a", "b"])
        assert error.waiting_blocks == ["a", "b"]

    def test_data_race_is_synchronization_error(self):
        assert issubclass(errors.DataRaceError, errors.SynchronizationError)
