"""Golden-trace equivalence: the fast paths must not change simulation results.

``tests/fixtures/golden_traces.json`` pins the traces the *seed* simulator
produced for the MLP, attention and conv pipelines under StreamSync and the
cuSync policy families.  The hot-path optimisations (incremental dispatch,
indexed SM allocation, block-program caching, ``__slots__`` records) are
required to be trace preserving, so the current simulator must reproduce
those traces exactly: total time, per-kernel durations and every block's
``(dispatch_time_us, sm_id, end_time_us)``, bit for bit.

If a future change *intentionally* alters simulation semantics, regenerate
the fixture with ``PYTHONPATH=src python tests/golden_trace_utils.py`` and
call the semantic change out in the PR.
"""

import pytest

from golden_trace_utils import (
    _run,
    _schemes,
    _serialize_result,
    _workloads,
    load_fixture,
)


def _cases():
    return [
        (name, scheme) for name, workload in _workloads().items() for scheme in _schemes(name)
    ]


@pytest.fixture(scope="module")
def golden():
    return load_fixture()


@pytest.mark.parametrize("workload_name,scheme", _cases())
def test_trace_matches_seed_simulator(golden, workload_name, scheme):
    key = f"{workload_name}/{scheme}"
    assert key in golden, f"fixture missing {key}; regenerate golden_traces.json"
    expected = golden[key]

    workload = _workloads()[workload_name]
    actual = _serialize_result(_run(workload, scheme))

    assert actual["total_time_us"] == expected["total_time_us"]
    assert actual["host_issue_time_us"] == expected["host_issue_time_us"]

    assert sorted(actual["kernels"]) == sorted(expected["kernels"])
    for kernel_name, expected_stats in expected["kernels"].items():
        assert actual["kernels"][kernel_name] == expected_stats, (
            f"{key}: kernel stats diverged for {kernel_name}"
        )

    assert len(actual["blocks"]) == len(expected["blocks"])
    for position, (actual_block, expected_block) in enumerate(
        zip(actual["blocks"], expected["blocks"])
    ):
        assert actual_block == expected_block, (
            f"{key}: block record #{position} diverged\n"
            f"  expected: {expected_block}\n"
            f"  actual:   {actual_block}"
        )
