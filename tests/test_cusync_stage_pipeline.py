"""Tests for CuStage, dependency planning, optimizations and pipelines."""

import numpy as np
import pytest

from repro.common.dim3 import Dim3
from repro.errors import SynchronizationError
from repro.gpu.arch import TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels.base import StageGeometry
from repro.kernels.epilogue import GeLU
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem
from repro.cusync import (
    CuStage,
    CuSyncPipeline,
    OptimizationFlags,
    RowSync,
    StridedSync,
    TileSync,
    auto_optimizations,
    decorate_policy_name,
)
from repro.cusync.semaphores import STAGE_START_ARRAY


def make_stage(policy=None, grid=Dim3(4, 2, 1), tile=(32, 64), split_k=1, batch=1, **kwargs):
    geometry = StageGeometry(
        grid=grid, tile_rows=tile[0], tile_cols=tile[1], split_k=split_k, batch=batch, output="OUT"
    )
    return CuStage("stage", geometry, policy=policy, **kwargs)


class TestOptimizationFlags:
    def test_suffixes(self):
        assert OptimizationFlags.none().suffix == ""
        assert OptimizationFlags.wrt().suffix == "+WRT"
        assert OptimizationFlags.wr().suffix == "+WR"
        assert OptimizationFlags.r().suffix == "+R"

    def test_decorate_policy_name(self):
        assert decorate_policy_name("TileSync", OptimizationFlags.wrt()) == "TileSync+WRT"

    def test_auto_optimizations_small_kernels(self):
        flags = auto_optimizations(80, 80, 1, 1, TESLA_V100)
        assert flags.avoid_wait_kernel and flags.avoid_custom_tile_order

    def test_auto_optimizations_large_kernels(self):
        flags = auto_optimizations(400, 400, 1, 1, TESLA_V100)
        assert not flags.avoid_wait_kernel
        assert flags.reorder_loads


class TestCuStagePlanning:
    def test_no_dependency_is_single_unguarded_step(self):
        stage = make_stage(TileSync())
        steps = stage.plan_reads("W", (0, 64), (0, 64))
        assert len(steps) == 1
        assert steps[0].waits == ()

    def test_tilesync_one_step_per_producer_column_tile(self):
        producer = make_stage(TileSync())
        consumer = make_stage(TileSync())
        consumer.dependencies = {}
        consumer.depends_on(producer, "OUT")
        steps = consumer.plan_reads("OUT", rows=(0, 32), cols=(0, 256))
        assert len(steps) == 4
        assert all(len(step.waits) == 1 for step in steps)

    def test_rowsync_collapses_to_single_step(self):
        producer = make_stage(RowSync())
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        steps = consumer.plan_reads("OUT", rows=(0, 32), cols=(0, 256))
        assert len(steps) == 1
        assert steps[0].waits[0].required == producer.logical_grid.x

    def test_split_k_scales_required_value(self):
        producer = make_stage(TileSync(), grid=Dim3(4, 2, 2), split_k=2)
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        steps = consumer.plan_reads("OUT", rows=(0, 32), cols=(0, 64))
        assert steps[0].waits[0].required == 2

    def test_range_map_translates_coordinates(self):
        producer = make_stage(TileSync())
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT", range_map=lambda rows, cols, batch: (rows, (cols[0] + 128, cols[1] + 128), batch))
        steps = consumer.plan_reads("OUT", rows=(0, 32), cols=(0, 64))
        # Column 128 falls into producer column tile 2.
        assert steps[0].waits[0].index == TileSync().semaphore_index(Dim3(2, 0, 0), producer.logical_grid)

    def test_posts_only_when_stage_has_consumers(self):
        producer = make_stage(TileSync())
        assert producer.posts_for(Dim3(0, 0, 0), producer.grid) == []
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        posts = producer.posts_for(Dim3(1, 1, 0), producer.grid)
        assert len(posts) == 1
        assert posts[0].array == producer.semaphore_array

    def test_first_block_posts_target_stage_start(self):
        producer = make_stage(TileSync())
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        posts = producer.first_block_posts()
        assert posts[0].array == STAGE_START_ARRAY

    def test_duplicate_dependency_rejected(self):
        producer = make_stage(TileSync())
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        with pytest.raises(SynchronizationError):
            consumer.depends_on(producer, "OUT")

    def test_out_of_range_batch_rejected(self):
        producer = make_stage(TileSync())
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        with pytest.raises(SynchronizationError):
            consumer.plan_reads("OUT", rows=(0, 8), cols=(0, 8), batch=3)

    def test_tile_order_suppressed_by_t_optimization(self):
        stage = make_stage(TileSync(), optimizations=OptimizationFlags.wrt())
        assert stage.tile_order(stage.grid) is None
        stage = make_stage(TileSync(), optimizations=OptimizationFlags.none())
        assert stage.tile_order(stage.grid) is not None

    def test_wait_kernel_needed_only_for_consumers(self):
        producer = make_stage(TileSync())
        consumer = make_stage(TileSync())
        consumer.depends_on(producer, "OUT")
        assert not producer.needs_wait_kernel()
        assert consumer.needs_wait_kernel()
        relaxed = make_stage(TileSync(), optimizations=OptimizationFlags.wrt())
        relaxed.depends_on(producer, "OTHER")
        assert not relaxed.needs_wait_kernel()


class TestPipeline:
    def _mlp_pipeline(self, arch, cost_model, policy, optimizations=None, functional=False):
        problem1 = GemmProblem(m=96, n=128, k=128, a="X", b="W1", c="XW1")
        problem2 = GemmProblem(m=96, n=128, k=128, a="XW1", b="W2", c="XW12")
        config = GemmConfig(tile_m=32, tile_n=32, tile_k=32)
        k1 = GemmKernel("g1", problem1, config, epilogue=GeLU(), cost_model=cost_model)
        k2 = GemmKernel("g2", problem2, config, cost_model=cost_model, sync_inputs=("XW1",))
        pipeline = CuSyncPipeline(arch=arch, cost_model=cost_model, functional=functional)
        s1 = pipeline.add_stage(k1, policy=policy, optimizations=optimizations)
        s2 = pipeline.add_stage(k2, policy=policy, optimizations=optimizations)
        pipeline.add_dependency(s1, s2, "XW1")
        return pipeline

    def test_wait_kernel_inserted(self, small_arch, small_cost_model):
        pipeline = self._mlp_pipeline(small_arch, small_cost_model, TileSync(), OptimizationFlags.none())
        from repro.gpu.memory import GlobalMemory

        launches = pipeline.build_launches(GlobalMemory())
        assert [launch.name for launch in launches] == ["g1", "waitkernel_g2", "g2"]

    def test_wait_kernel_polls_at_cost_model_granularity(self, small_arch, small_cost_model):
        """The wait kernel's single busy-wait segment is duration-stepped:
        it parks in the wake index but charges one poll per elapsed
        ``wait_kernel_poll_us`` interval on resume."""
        pipeline = self._mlp_pipeline(small_arch, small_cost_model, TileSync(), OptimizationFlags.none())
        from repro.gpu.memory import GlobalMemory

        launches = pipeline.build_launches(GlobalMemory())
        wait_kernel = next(l for l in launches if l.name == "waitkernel_g2")
        program = wait_kernel.program_builder(Dim3(0, 0, 0))
        (segment,) = program.segments
        assert segment.waits
        assert segment.poll_interval_us == small_cost_model.wait_kernel_poll_us()
        assert segment.duration_us == small_cost_model.wait_kernel_poll_us()

    def test_wait_kernel_elided_with_w(self, small_arch, small_cost_model):
        pipeline = self._mlp_pipeline(small_arch, small_cost_model, TileSync(), OptimizationFlags.wrt())
        from repro.gpu.memory import GlobalMemory

        launches = pipeline.build_launches(GlobalMemory())
        assert [launch.name for launch in launches] == ["g1", "g2"]

    def test_functional_pipeline_matches_numpy(self, small_arch, small_cost_model, rng):
        pipeline = self._mlp_pipeline(small_arch, small_cost_model, RowSync(), functional=True)
        X = rng.standard_normal((96, 128)).astype(np.float32)
        W1 = rng.standard_normal((128, 128)).astype(np.float32) * 0.1
        W2 = rng.standard_normal((128, 128)).astype(np.float32) * 0.1
        result = pipeline.run(tensors={"X": X, "W1": W1, "W2": W2})
        reference = GeLU().apply(X @ W1) @ W2
        np.testing.assert_allclose(result.tensor("XW12"), reference, rtol=1e-3, atol=1e-3)

    def test_wrong_stage_order_rejected(self, small_arch, small_cost_model):
        problem1 = GemmProblem(m=32, n=32, k=32, a="X", b="W1", c="XW1")
        problem2 = GemmProblem(m=32, n=32, k=32, a="XW1", b="W2", c="XW12")
        config = GemmConfig(tile_m=32, tile_n=32, tile_k=32)
        pipeline = CuSyncPipeline(arch=small_arch, cost_model=small_cost_model)
        consumer_stage = pipeline.add_stage(GemmKernel("g2", problem2, config, sync_inputs=("XW1",)))
        producer_stage = pipeline.add_stage(GemmKernel("g1", problem1, config))
        pipeline.add_dependency(producer_stage, consumer_stage, "XW1")
        from repro.gpu.memory import GlobalMemory

        with pytest.raises(SynchronizationError):
            pipeline.build_launches(GlobalMemory())

    def test_empty_pipeline_rejected(self, small_arch, small_cost_model):
        from repro.gpu.memory import GlobalMemory

        with pytest.raises(SynchronizationError):
            CuSyncPipeline(arch=small_arch, cost_model=small_cost_model).build_launches(GlobalMemory())

    def test_pipeline_result_accessors(self, small_arch, small_cost_model):
        pipeline = self._mlp_pipeline(small_arch, small_cost_model, TileSync())
        result = pipeline.run()
        assert result.total_time_us > 0.0
        assert result.kernel_duration_us("g1") > 0.0
        assert "g1" in result.summary()
        assert result.total_wait_time_us() >= 0.0
