#!/usr/bin/env python3
"""Describing dependences in the cuSyncGen DSL and generating policies.

Reproduces the three DSL programs of the paper's Figure 5 — the MLP, the
Attention block and a pair of Conv2Ds — runs the cuSyncGen compiler over
them (bounds checking, policy generation, tile-order generation, CUDA
source emission), and finally auto-tunes the generated policies for GPT-3's
MLP on the simulator.

Run with:  python examples/dsl_codegen.py
"""

from repro.dsl import (
    AutoTuner,
    CuSyncGen,
    Dep,
    Dim,
    ForAll,
    Grid,
    Range,
    Tile,
)
from repro.dsl.cuda_codegen import emit_generated_header
from repro.models import GptMlp

# Shapes for GPT-3's MLP at B*S = 512 with 256x256 tiles (Table IV).
TILE_M = TILE_N = 256
H = 12288
BS = 512


def mlp_program():
    """Figure 5a: the second GeMM's tile needs every column tile of its row."""
    x, y = Dim("x"), Dim("y")
    grid1 = Grid(x, y, (H // 2) // TILE_N, BS // TILE_M, name="g1")
    grid2 = Grid(x, y, H // TILE_N, BS // TILE_M, name="g2")
    dep = Dep((grid2, Tile(x, y)), (grid1, ForAll(Tile(x, y), x, Range(grid1.x_size))))
    return dep


def attention_program():
    """Figure 5b (first dependence): P's tile needs the Q and K slices of XQKV."""
    x, y = Dim("x"), Dim("y")
    qkv_cols = (3 * H // 8) // TILE_N       # 18 column tiles
    stride = (H // 8) // TILE_N             # 6 tiles per Q/K/V slice
    grid1 = Grid(x, y, qkv_cols, BS // TILE_M, name="g1")
    grid_p = Grid(x, y, stride, BS // TILE_M, name="gP")
    dep = Dep(
        (grid_p, Tile(x, y)),
        (grid1, Tile(x, y), Tile(x + stride, y), Tile(x + 2 * stride, y)),
    )
    return dep


def conv_program():
    """Figure 5c: each tile of the second Conv2D maps back through x // (R*S)."""
    x, y = Dim("x"), Dim("y")
    pixels = 28 * 28 // 128
    grid1 = Grid(x, y, 1, pixels, name="conv1")
    grid2 = Grid(x, y, 9, pixels, name="conv2")
    return Dep((grid2, Tile(x, y)), (grid1, Tile(x // 9, y)))


def main():
    generator = CuSyncGen()
    for name, dep in (("MLP", mlp_program()), ("Attention", attention_program()), ("Conv2D", conv_program())):
        generated = generator.generate(dep)
        print(f"=== {name} dependence ===")
        print(f"  producer tiles per consumer tile : {generated.dependence.tiles_per_consumer}")
        print(f"  generated policies               : {', '.join(generated.policy_names)}")
        print(f"  producer tile order              : {generated.producer_order.name}")
        print()

    print("Generated CUDA header for the Attention dependence:")
    print(emit_generated_header(generator.generate(attention_program())))

    print("Auto-tuning the generated policies for GPT-3's MLP at BxS=512 ...")
    tuner = AutoTuner(policies=["TileSync", "RowSync"], include_streamk=True)
    result = tuner.tune(GptMlp(batch_seq=BS))
    print(result.summary())
    print(f"best policy improves on StreamSync by {result.improvement * 100:.1f}%")


if __name__ == "__main__":
    main()
