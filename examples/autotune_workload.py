"""Autotune a workload over (tile, policy) and replay the search from cache.

Demonstrates the ``repro.tune`` subsystem:

1. build a ``SearchSpace`` over tile-config choices and policy families
   for a small GPT-3-style MLP on one architecture;
2. run ``Tuner`` with ``SuccessiveHalving`` — only novel points are
   simulated, survivors re-measured at later rungs replay from the
   sweep cache;
3. rerun the identical search against the warm session: zero novel
   simulations, bit-identical trajectory (the cached-replay guarantee);
4. resolve per-arch tuned tile configs from the committed
   ``TUNED_CONFIGS.json`` with ``GptMlp(..., tuned=True)``.

Run with::

    PYTHONPATH=src python examples/autotune_workload.py
"""

from repro.gpu import resolve_arch
from repro.models import GptMlp
from repro.models.config import TransformerConfig
from repro.tune import SuccessiveHalving, Tuner, gpt3_mlp_space, tuned_gemm_configs
from repro.tune.presets import mlp_tile_grid


def main() -> None:
    # A deliberately small space so the example runs in about a second:
    # one architecture, the default tile plus four candidate grids.
    tiny = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)
    space = gpt3_mlp_space(
        batch_seq=96,
        config=tiny,
        arches=("A100",),
        tile_choices=mlp_tile_grid("mlp_gemm1", "mlp_gemm2")[:5],
    )
    print(f"search space {space.name!r}: {len(space)} candidates")

    tuner = Tuner(mode="thread")
    cold = tuner.tune(space, SuccessiveHalving(eta=2))
    print(cold.summary())

    # The identical search against the warm session replays entirely from
    # the sweep cache — no new simulations, same winner, same trajectory.
    warm = tuner.tune(space, SuccessiveHalving(eta=2))
    print(
        f"\nwarm rerun: {warm.novel_simulations} novel simulations, "
        f"{warm.cache_hits} cache hits, "
        f"trajectory identical: {warm.trajectory() == cold.trajectory()}"
    )

    # Models resolve committed tuned configs per architecture.  The paper's
    # Table-IV grids stay the V100 default; on A100/H100 the constructors
    # pick up the committed winners from TUNED_CONFIGS.json.
    a100 = resolve_arch("A100")
    workload = GptMlp(batch_seq=512, arch=a100, tuned=True)
    configs = tuned_gemm_configs(workload.workload_key, a100)
    print(f"\ntuned configs for {workload.workload_key!r} on {a100.name}:")
    if configs is None:
        print("  (default tile won — constructor keeps the built-in grids)")
    else:
        for stage, config in sorted(configs.items()):
            print(
                f"  {stage}: tile {config.tile_m}x{config.tile_n}x{config.tile_k}, "
                f"split_k={config.split_k}"
            )


if __name__ == "__main__":
    main()
