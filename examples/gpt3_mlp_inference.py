#!/usr/bin/env python3
"""GPT-3 MLP inference across batch sizes (the paper's Table IV scenario).

Builds the two dependent GeMMs of MegatronLM GPT-3's MLP block (hidden
dimension 12288, 8-way model parallelism) at several inference batch sizes
as one ``PipelineGraph`` per batch, then lets ``Session.sweep`` fan each
graph out over every scheme and policy — StreamSync, Stream-K and cuSync
(TileSync and RowSync) — reusing the same kernels for every point (and
worker processes when available).  Prints a Table IV-style comparison
showing which policy wins where.

Run with:  python examples/gpt3_mlp_inference.py
"""

from repro.bench import format_percent, format_table
from repro.models import GptMlp
from repro.pipeline import Session

BATCH_SIZES = (64, 256, 512, 1024, 2048)
POLICIES = ("TileSync", "RowSync")


def main():
    session = Session()
    rows = []
    for batch_seq in BATCH_SIZES:
        graph = GptMlp(batch_seq=batch_seq).to_graph()
        results = session.sweep(
            graph, policies=POLICIES, schemes=("streamsync", "streamk", "cusync")
        )
        by_point = {(r.scheme, r.policy): r.total_time_us for r in results}
        streamsync = by_point[("streamsync", None)]
        streamk = by_point[("streamk", None)]
        policy_times = {policy: by_point[("cusync", policy)] for policy in POLICIES}
        best_policy = min(policy_times, key=policy_times.get)
        best = policy_times[best_policy]
        rows.append(
            [
                batch_seq,
                f"{streamsync:.0f}",
                f"{streamk:.0f}",
                f"{policy_times['TileSync']:.0f}",
                f"{policy_times['RowSync']:.0f}",
                best_policy,
                format_percent((streamsync - best) / streamsync),
            ]
        )

    print(
        format_table(
            ["BxS", "StreamSync us", "Stream-K us", "TileSync us", "RowSync us", "best policy", "reduction"],
            rows,
            title="GPT-3 145B MLP on simulated Tesla V100 (per-GPU shard, 8-way model parallel)",
        )
    )
    print(
        "\nExpected shape (paper Table IV / Figure 6a): the reduction peaks around\n"
        "BxS=256-1024, TileSync wins at small-to-mid sizes, RowSync at large sizes,\n"
        "and cuSync matches or beats Stream-K at the large sizes."
    )


if __name__ == "__main__":
    main()
