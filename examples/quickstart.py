#!/usr/bin/env python3
"""Quickstart: synchronize two dependent GeMMs with cuSync.

This is the paper's running example (Figure 4a): a small MLP made of two
dependent GeMMs, ``XW1 = GeLU(X @ W1)`` and ``XW12 = XW1 @ W2``.  The script

1. runs the pair under CUDA stream synchronization (the baseline),
2. runs it under cuSync with the TileSync and RowSync policies,
3. verifies that all three produce bit-identical results, and
4. reports the simulated execution times and the improvement.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import StreamSyncExecutor
from repro.cusync import CuSyncPipeline, OptimizationFlags, RowSync, TileSync
from repro.gpu import TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels import GeLU, GemmConfig, GemmKernel, GemmProblem


def build_kernels(cost_model):
    """Two dependent GeMMs: the producer writes XW1, the consumer reads it."""
    problem1 = GemmProblem(m=256, n=512, k=1024, a="X", b="W1", c="XW1")
    problem2 = GemmProblem(m=256, n=1024, k=512, a="XW1", b="W2", c="XW12")
    config = GemmConfig(tile_m=64, tile_n=64, tile_k=32)
    producer = GemmKernel("gemm1", problem1, config, epilogue=GeLU(), cost_model=cost_model)
    consumer = GemmKernel(
        "gemm2", problem2, config, cost_model=cost_model, sync_inputs=("XW1",)
    )
    return producer, consumer


def main():
    rng = np.random.default_rng(0)
    tensors = {
        "X": rng.standard_normal((256, 1024)).astype(np.float32),
        "W1": (rng.standard_normal((1024, 512)) * 0.03).astype(np.float32),
        "W2": (rng.standard_normal((512, 1024)) * 0.03).astype(np.float32),
    }
    reference = GeLU().apply(tensors["X"] @ tensors["W1"]) @ tensors["W2"]

    cost_model = CostModel(arch=TESLA_V100)

    # --- StreamSync baseline -------------------------------------------------
    producer, consumer = build_kernels(cost_model)
    executor = StreamSyncExecutor(arch=TESLA_V100, cost_model=cost_model, functional=True)
    baseline = executor.run([producer, consumer], tensors=dict(tensors))
    print(f"StreamSync            : {baseline.total_time_us:9.1f} us")
    assert np.allclose(baseline.tensor("XW12"), reference, atol=1e-3)

    # --- cuSync with two policies -------------------------------------------
    for policy in (TileSync(), RowSync()):
        producer, consumer = build_kernels(cost_model)
        pipeline = CuSyncPipeline(arch=TESLA_V100, cost_model=cost_model, functional=True)
        prod_stage = pipeline.add_stage(producer, policy=policy, optimizations=OptimizationFlags.wrt())
        cons_stage = pipeline.add_stage(consumer, policy=policy, optimizations=OptimizationFlags.wrt())
        pipeline.add_dependency(prod_stage, cons_stage, tensor="XW1")
        result = pipeline.run(tensors=dict(tensors))
        improvement = (baseline.total_time_us - result.total_time_us) / baseline.total_time_us
        print(
            f"cuSync {policy.name:14s}: {result.total_time_us:9.1f} us "
            f"({improvement * 100:+.1f}% vs StreamSync)"
        )
        assert np.allclose(result.tensor("XW12"), reference, atol=1e-3)

    print("\nAll execution schemes produced identical results.")


if __name__ == "__main__":
    main()
