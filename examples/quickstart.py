#!/usr/bin/env python3
"""Quickstart: one immutable pipeline graph, every execution scheme.

This is the paper's running example (Figure 4a): a small MLP made of two
dependent GeMMs, ``XW1 = GeLU(X @ W1)`` and ``XW12 = XW1 @ W2``.  The script

1. describes the pair **once** as an immutable ``PipelineGraph``,
2. runs that same graph under CUDA stream synchronization (the baseline)
   and under cuSync with the TileSync and RowSync policies — no kernel is
   ever rebuilt, each run just re-binds per-execution state,
3. verifies that all three produce bit-identical results, and
4. reports the simulated execution times and the improvement.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.gpu import TESLA_V100
from repro.kernels import GeLU, GemmConfig, GemmKernel, GemmProblem
from repro.pipeline import Edge, PipelineGraph, Session, StageSpec


def build_graph():
    """Two dependent GeMMs: the producer writes XW1, the consumer reads it."""
    problem1 = GemmProblem(m=256, n=512, k=1024, a="X", b="W1", c="XW1")
    problem2 = GemmProblem(m=256, n=1024, k=512, a="XW1", b="W2", c="XW12")
    config = GemmConfig(tile_m=64, tile_n=64, tile_k=32)
    producer = GemmKernel("gemm1", problem1, config, epilogue=GeLU(), functional=True)
    consumer = GemmKernel("gemm2", problem2, config, sync_inputs=("XW1",), functional=True)
    return PipelineGraph(
        stages=[StageSpec("gemm1", producer), StageSpec("gemm2", consumer)],
        edges=[Edge("gemm1", "gemm2", tensor="XW1")],
    )


def main():
    rng = np.random.default_rng(0)
    tensors = {
        "X": rng.standard_normal((256, 1024)).astype(np.float32),
        "W1": (rng.standard_normal((1024, 512)) * 0.03).astype(np.float32),
        "W2": (rng.standard_normal((512, 1024)) * 0.03).astype(np.float32),
    }
    reference = GeLU().apply(tensors["X"] @ tensors["W1"]) @ tensors["W2"]

    # The graph is built exactly once; the session re-binds its kernels for
    # every run (scheme, policy) without rebuilding them.
    graph = build_graph()
    session = Session(arch=TESLA_V100, functional=True)

    baseline = session.run(graph, scheme="streamsync", tensors=dict(tensors))
    print(f"StreamSync            : {baseline.total_time_us:9.1f} us")
    assert np.allclose(baseline.tensor("XW12"), reference, atol=1e-3)

    for policy in ("TileSync", "RowSync"):
        result = session.run(graph, scheme="cusync", policy=policy, tensors=dict(tensors))
        improvement = (baseline.total_time_us - result.total_time_us) / baseline.total_time_us
        print(
            f"cuSync {policy:14s}: {result.total_time_us:9.1f} us "
            f"({improvement * 100:+.1f}% vs StreamSync)"
        )
        assert np.allclose(result.tensor("XW12"), reference, atol=1e-3)

    print("\nAll execution schemes produced identical results from one graph.")


if __name__ == "__main__":
    main()
