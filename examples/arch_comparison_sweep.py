"""Cross-architecture sweeps with the first-class ArchSpec registry.

Demonstrates the architecture space API:

1. address registered architectures by name ("V100", "A100", "H100-SXM",
   "RTX-4090") anywhere an arch axis appears;
2. register a custom architecture once and sweep it like a preset;
3. build what-if variants with ``ArchSpec.scaled(...)`` (half the SMs,
   double the bandwidth) without constructing dataclasses by hand;
4. fan a ``(graph, arch, scheme, policy)`` grid out with ``sweep_archs``
   through one ``Session.sweep`` call — bit-identical in serial, thread
   and process modes.

Run with::

    PYTHONPATH=src python examples/arch_comparison_sweep.py
"""

from repro.gpu import ArchSpec, TESLA_V100, register_arch, registered_archs
from repro.models import GptMlp
from repro.pipeline import Session, sweep_archs


def main() -> None:
    # A hypothetical mid-range part: V100-derived, fewer SMs, slower launch.
    register_arch(
        "MidRange-GPU",
        TESLA_V100.with_overrides(name="MidRange-GPU", num_sms=48, kernel_launch_latency_us=8.0),
        aliases=("midrange",),
        overwrite=True,
    )
    print("registered architectures:", ", ".join(registered_archs()))

    workload = GptMlp(batch_seq=512)
    graph = workload.to_graph()  # built once; re-bound per (arch, scheme) point

    arches = (
        "V100",
        "A100",
        "H100-SXM",
        "RTX-4090",
        "midrange",
        ArchSpec("V100").scaled(sms=0.5, bandwidth=2.0),  # what-if study
    )
    work = sweep_archs(
        graph,
        arches,
        policies=("TileSync", "RowSync"),
        schemes=("streamsync", "cusync"),
    )

    session = Session()
    results = session.sweep(work, mode="thread")

    baselines = {
        result.arch_name: result.total_time_us
        for result in results
        if result.scheme == "streamsync"
    }
    print(f"\nGPT-3 MLP (BxS=512) across {len(arches)} architectures:")
    print(f"{'architecture':28s} {'policy':10s} {'time (us)':>12s} {'vs streamsync':>14s}")
    for result in results:
        if result.scheme != "cusync":
            continue
        baseline = baselines[result.arch_name]
        improvement = (baseline - result.total_time_us) / baseline
        print(
            f"{result.arch_name:28s} {result.policy_label:10s} "
            f"{result.total_time_us:12.1f} {improvement:13.1%}"
        )


if __name__ == "__main__":
    main()
