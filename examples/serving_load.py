"""Open-loop serving on the simulator: arrivals, batching, tail latency.

Demonstrates the :mod:`repro.serving` subsystem:

1. describe open-loop traffic with a seeded ``PoissonArrivals`` process
   (arrival times *and* prompt/decode length mix pinned by one seed);
2. pack it into a ``ServingScenario`` — continuous-batching budgets,
   model shape, latency SLO;
3. run the same scenario under StreamSync and cuSync with
   ``compare_schemes`` (one shared ``Session``: repeated batch shapes
   replay from the sweep cache instead of re-simulating);
4. read the ``LatencyReport``: exact p50/p99, time-to-first-token,
   SLO-goodput, and the cache counters that make long simulations cheap.

The whole loop is bit-deterministic: rerun this script and every number
is identical.

Run with::

    PYTHONPATH=src python examples/serving_load.py
"""

from repro.models.config import TransformerConfig
from repro.serving import PoissonArrivals, ServingScenario, compare_schemes

SMALL = TransformerConfig(name="srv-demo", hidden=256, layers=2, tensor_parallel=8)


def main() -> None:
    # Open-loop: requests arrive on their own schedule, whether or not
    # the system keeps up — that is what turns per-iteration latency
    # differences into tail-latency differences.
    arrivals = PoissonArrivals(
        rate_rps=400.0,
        prompt_tokens=(16, 96),  # uniform mix, same seed as the gaps
        decode_tokens=(2, 8),
        seed=7,
    )
    scenario = ServingScenario(
        arrivals=arrivals,
        requests=32,
        config=SMALL,
        max_batch=4,  # iteration-level batching budgets
        max_kv_tokens=2048,
        max_prefill_tokens=256,
        slo_us=5_000.0,  # goodput counts requests finishing within this
    )

    reports = compare_schemes(scenario, schemes=("streamsync", "cusync"))
    for scheme, report in reports.items():
        print(report.describe())
        print(
            f"  ttft p50 {report.p50_ttft_us:.0f}us, "
            f"{report.prefill_iterations} prefill + "
            f"{report.decode_iterations} decode iterations over "
            f"{report.distinct_shapes} distinct batch shapes "
            f"({report.sweep_cache_hits}/{report.iterations} from cache)"
        )

    streamsync = reports["streamsync"]
    cusync = reports["cusync"]
    improvement = 1.0 - cusync.p99_total_us / streamsync.p99_total_us
    print(
        f"cusync cuts end-to-end p99 by {improvement:.1%} "
        f"({streamsync.p99_total_us:.0f}us -> {cusync.p99_total_us:.0f}us)"
    )


if __name__ == "__main__":
    main()
