#!/usr/bin/env python3
"""Mixed per-edge policies: one graph, different policies on different edges.

The paper's central knob is the synchronization policy (Section III-E).
This example shows the first-class policy space on a fan-out pipeline —
one producer GeMM feeding two consumer GeMMs:

1. **Per-edge assignment**: the left edge synchronizes under ``TileSync``
   (finest overlap) while the sibling right edge uses ``RowSync`` (fewest
   synchronizations), in the *same* execution.  The producer posts one
   semaphore array per distinct policy; each consumer waits on its own.
2. **Registry extension**: a custom ``HalfRowSync`` family (two semaphores
   per row) is registered with ``register_policy`` and dropped into the
   grid like any built-in.
3. **Multi-graph thread-pool sweep**: the full ``sweep_policies`` grid of
   both graph variants is evaluated in one ``Session.sweep`` call with
   ``mode="thread"`` — bit-identical to the serial path.

Run with:  PYTHONPATH=src python examples/mixed_policy_pipeline.py
"""

from repro.cusync import (
    PolicyAssignment,
    PolicySpec,
    RowSync,
    SyncPolicy,
    register_policy,
    registered_policies,
)
from repro.kernels import GeLU, GemmConfig, GemmKernel, GemmProblem
from repro.pipeline import Edge, PipelineGraph, Session, StageSpec, sweep_policies


def build_graph(name="fanout_mlp"):
    """One producer GeMM whose output XW1 feeds two consumer GeMMs."""
    config = GemmConfig(tile_m=64, tile_n=64, tile_k=32)
    producer = GemmKernel(
        "gemm0", GemmProblem(m=256, n=512, k=1024, a="X", b="W1", c="XW1"),
        config, epilogue=GeLU(),
    )
    left = GemmKernel(
        "gemm_left", GemmProblem(m=256, n=512, k=512, a="XW1", b="WL", c="OUTL"),
        config, sync_inputs=("XW1",),
    )
    right = GemmKernel(
        "gemm_right", GemmProblem(m=256, n=512, k=512, a="XW1", b="WR", c="OUTR"),
        config, sync_inputs=("XW1",),
    )
    return PipelineGraph(
        stages=[StageSpec("gemm0", producer), StageSpec("gemm_left", left),
                StageSpec("gemm_right", right)],
        edges=[Edge("gemm0", "gemm_left", tensor="XW1"),
               Edge("gemm0", "gemm_right", tensor="XW1")],
        name=name,
    )


class HalfRowSync(SyncPolicy):
    """A custom family: each row of tiles is split into two semaphores."""

    name = "HalfRowSync"

    def num_semaphores(self, grid):
        return 2 * grid.y * grid.z

    def semaphore_index(self, tile, grid):
        half = 1 if tile.x >= (grid.x + 1) // 2 else 0
        return (tile.z * grid.y + tile.y) * 2 + half

    def expected_value(self, tile, grid):
        first = (grid.x + 1) // 2
        return first if tile.x < first else grid.x - first


def main():
    session = Session()
    graph = build_graph()

    baseline = session.run(graph, scheme="streamsync").total_time_us
    print(f"StreamSync baseline        : {baseline:9.1f} us")

    # -- 1. Mixed per-edge assignment ---------------------------------
    mixed = PolicyAssignment(
        default="TileSync",
        edges={("gemm0", "gemm_right", "XW1"): "RowSync"},
    )
    for label, policy in (
        ("uniform TileSync", PolicySpec("TileSync")),
        ("uniform RowSync", PolicySpec("RowSync")),
        (f"mixed  {mixed.label()}", mixed),
    ):
        t = session.run(graph, scheme="cusync", policy=policy).total_time_us
        print(f"cuSync {label:34s}: {t:9.1f} us ({(baseline - t) / baseline * 100:+5.1f}%)")

    # -- 2. A user-registered policy family ---------------------------
    if "HalfRowSync" not in registered_policies():
        register_policy("HalfRowSync", lambda params, ctx: HalfRowSync())
    t = session.run(graph, scheme="cusync", policy="HalfRowSync").total_time_us
    print(f"cuSync custom HalfRowSync            : {t:9.1f} us ({(baseline - t) / baseline * 100:+5.1f}%)")

    # -- 3. Multi-graph, mixed-policy sweep on a thread pool ----------
    other = build_graph(name="fanout_mlp_v2")
    work = (
        sweep_policies(graph, ("TileSync", "RowSync", "HalfRowSync"), mixed=True)
        + sweep_policies(other, ("TileSync", "RowSync"))
    )
    serial = session.sweep(list(work), mode="serial")
    threaded = session.sweep(list(work), mode="thread")
    assert serial == threaded, "thread-pool sweep must be bit-identical"
    best = min(serial, key=lambda r: r.total_time_us)
    print(f"\nswept {len(serial)} (graph, policy) points across 2 graphs "
          f"on a thread pool (bit-identical to serial)")
    print(f"best point: {best.graph_label} under {best.policy_label} "
          f"at {best.total_time_us:.1f} us")


if __name__ == "__main__":
    main()
