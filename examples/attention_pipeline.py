#!/usr/bin/env python3
"""Synchronizing the five kernels of GPT-3's attention block.

The attention block (paper Figure 2b) chains five dependent kernels: the
fused QKV GeMM, the attention-score GeMM, a fused Softmax-Dropout, the
value GeMM and the output projection.  The score and value GeMMs depend on
*strided column slices* of the QKV GeMM output, which is the dependence the
StridedSync policy was designed for (Figure 5b).

This example runs the block in both inference phases — prompt processing
(S' = 0) and token generation (S = 1, growing KV cache) — under StreamSync
and every cuSync policy family, and also demonstrates functional simulation
on a scaled-down configuration to verify numerical equivalence.

Run with:  python examples/attention_pipeline.py
"""

import numpy as np

from repro.bench import format_percent, format_table
from repro.models import Attention, TransformerConfig
from repro.pipeline import Session

POLICIES = ("TileSync", "RowSync", "StridedTileSync")


def timing_study():
    session = Session()
    rows = []
    configs = [
        ("prompt", dict(batch=1, seq=512, cached=0)),
        ("prompt", dict(batch=1, seq=1024, cached=0)),
        ("token-gen", dict(batch=1, seq=1, cached=1024)),
        ("token-gen", dict(batch=4, seq=1, cached=2048)),
    ]
    for phase, kwargs in configs:
        # One graph per configuration, reused across the baseline and all
        # three policy families (the range-mapped Q/K/V edges are ad-hoc
        # closures, so the sweep transparently runs serially in-process).
        graph = Attention(**kwargs).to_graph()
        baseline = session.run(graph, scheme="streamsync").total_time_us
        cells = [phase, kwargs["batch"], kwargs["seq"], kwargs["cached"], f"{baseline:.0f}"]
        for policy in POLICIES:
            time_us = session.run(graph, scheme="cusync", policy=policy).total_time_us
            cells.append(format_percent((baseline - time_us) / baseline))
        rows.append(cells)
    print(
        format_table(
            ["phase", "B", "S", "S'", "StreamSync us", *POLICIES],
            rows,
            title="GPT-3 Attention: cuSync improvement over StreamSync per policy",
        )
    )


def functional_check():
    tiny = TransformerConfig(name="tiny", hidden=256, layers=1, tensor_parallel=8)
    workload = Attention(config=tiny, batch=1, seq=64, cached=0, functional=True, dropout=0.0)
    session = Session(functional=True)
    result = session.run(
        workload.to_graph(),
        scheme="cusync",
        policy="StridedTileSync",
        tensors=workload.input_tensors(),
    )
    reference = workload.reference_output()
    error = np.abs(result.tensor("XW12") - reference).max()
    print(f"\nFunctional check (tiny config, StridedTileSync): max |error| = {error:.2e}")
    assert error < 1e-2


def main():
    timing_study()
    functional_check()


if __name__ == "__main__":
    main()
