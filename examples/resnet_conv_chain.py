#!/usr/bin/env python3
"""Synchronizing the dependent Conv2D kernels of a ResNet-38 layer.

Every ResNet-38 / VGG-19 layer in the paper's Table II performs two (or
four) dependent 3x3 convolutions over the same image size and channel
count.  This example sweeps the channel counts and batch sizes of Figure 7,
comparing StreamSync against cuSync's RowSync and Conv2DTileSync policies,
and then verifies functional correctness of a small chain.

Run with:  python examples/resnet_conv_chain.py
"""

import numpy as np

from repro.bench import format_percent, format_table
from repro.models import ConvChain
from repro.models.config import ConvLayerSpec, RESNET38_LAYERS
from repro.pipeline import Session

POLICIES = ("RowSync", "Conv2DTileSync")


def timing_study():
    session = Session()
    rows = []
    for spec in RESNET38_LAYERS:
        for batch in (1, 8, 32):
            # One graph per layer/batch point, reused for the baseline and
            # both policy families.
            graph = ConvChain(spec, batch=batch).to_graph()
            baseline = session.run(graph, scheme="streamsync").total_time_us
            cells = [spec.channels, f"{spec.image}x{spec.image}", batch, f"{baseline:.0f}"]
            for policy in POLICIES:
                time_us = session.run(graph, scheme="cusync", policy=policy).total_time_us
                cells.append(format_percent((baseline - time_us) / baseline))
            rows.append(cells)
    print(
        format_table(
            ["channels", "image", "batch", "StreamSync us", *POLICIES],
            rows,
            title="ResNet-38 layers (2 dependent Conv2Ds): improvement over StreamSync",
        )
    )


def functional_check():
    spec = ConvLayerSpec(image=10, channels=8, kernel=3, convs_per_layer=2, layers=1)
    workload = ConvChain(spec, batch=1, functional=True)
    session = Session(functional=True)
    result = session.run(
        workload.to_graph(),
        scheme="cusync",
        policy="Conv2DTileSync",
        tensors=workload.input_tensors(),
    )
    error = np.abs(result.tensor("act2") - workload.reference_output()).max()
    print(f"\nFunctional check (10x10x8 images, 2 convs): max |error| = {error:.2e}")
    assert error < 1e-2


def main():
    timing_study()
    functional_check()


if __name__ == "__main__":
    main()
