"""Serving benchmark: latency percentiles under open-loop load, per scheme.

Runs one seeded :class:`~repro.serving.ServingScenario` (Poisson
arrivals, mixed prompt/decode lengths) under every execution scheme via
:func:`repro.bench.serving_comparison` and records per-scheme p50/p99,
TTFT, throughput, SLO-goodput and the session cache counters.  The
serving loop is bit-deterministic for its seed, so every latency number
in the record is exact — only the wall time varies between machines.

``BENCH_serving.json`` in the repository root is the **committed
baseline**.  A plain run refreshes it (do this deliberately);
``--check-baseline`` writes ``BENCH_serving.latest.json`` and gates the
fresh numbers against the committed baseline: wall time within the
suite's 2x tolerance, every deterministic metric (percentiles, goodput,
iteration counts) matched exactly.  ``--smoke`` drops the Stream-K
scheme but keeps the *same* scenario, so the exact per-scheme gates stay
valid and ``--smoke --check-baseline`` still verifies determinism in CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] [--check-baseline]

or through pytest (``pytest benchmarks/bench_serving.py``).

JSON schema (see also benchmarks/README.md):

* ``requests`` / ``rate_rps`` / ``seed`` — the open-loop scenario;
* ``schemes`` — ``{scheme: LatencyReport.summary()}`` per scheme run:
  exact ``p50_total_us`` / ``p99_total_us`` / ``p50_ttft_us`` /
  ``goodput_rps`` / ``iterations`` plus ``sweep_cache_hits`` /
  ``sweep_cache_misses`` (how much of the load the session cache
  absorbed);
* ``cusync_p99_improvement`` — 1 - cusync p99 / streamsync p99, the
  headline number;
* ``elapsed_s`` — wall time of the full comparison (the gated quantity).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.bench import format_table

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_serving.json"
)
#: Non-destructive output used by the pytest path and ``--check-baseline``.
LATEST_OUTPUT = DEFAULT_OUTPUT.replace(".json", ".latest.json")

#: Tolerated wall-clock slowdown vs the committed baseline (CI runners
#: differ from the machine that recorded it).  Matches the other gates.
BASELINE_TOLERANCE = 2.0

#: The seeded reference scenario.  Changing any of these is a baseline
#: refresh, not a regression.
REQUESTS = 48
RATE_RPS = 400.0
SEED = 7
SLO_US = 5_000.0

#: Per-scheme metrics that are exact for a fixed scenario and must match
#: the committed baseline bit for bit.
EXACT_METRICS = (
    "p50_total_us",
    "p99_total_us",
    "p50_ttft_us",
    "goodput_rps",
    "iterations",
    "completed",
)


def run_experiment(smoke: bool = False) -> Dict[str, object]:
    from repro.bench import serving_comparison

    # Smoke keeps the SAME scenario and drops only the slowest scheme, so
    # the per-scheme exact gates remain meaningful under --smoke.
    schemes = ("streamsync", "cusync") if smoke else ("streamsync", "streamk", "cusync")
    start = time.perf_counter()
    rows = serving_comparison(
        requests=REQUESTS,
        rate_rps=RATE_RPS,
        seed=SEED,
        schemes=schemes,
        slo_us=SLO_US,
    )
    elapsed = time.perf_counter() - start
    by_scheme = {row["scheme"]: row for row in rows}
    streamsync_p99 = by_scheme["streamsync"]["p99_total_us"]
    cusync_p99 = by_scheme["cusync"]["p99_total_us"]
    return {
        "elapsed_s": elapsed,
        "requests": REQUESTS,
        "rate_rps": RATE_RPS,
        "seed": SEED,
        "slo_us": SLO_US,
        "smoke": smoke,
        "schemes": by_scheme,
        "cusync_p99_improvement": 1.0 - cusync_p99 / streamsync_p99,
    }


def write_record(record: Dict[str, object], output_path: str = "") -> None:
    path = output_path or os.environ.get("BENCH_SERVING_OUT", DEFAULT_OUTPUT)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare_against_baseline(
    record: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Failures of ``record`` against the committed baseline (empty = pass)."""
    failures: List[str] = []
    ceiling = baseline["elapsed_s"] * tolerance
    if record["elapsed_s"] > ceiling:
        failures.append(
            f"elapsed_s {record['elapsed_s']:.3f} exceeded {ceiling:.3f} "
            f"(baseline {baseline['elapsed_s']:.3f} * {tolerance}x tolerance)"
        )
    # The serving loop is deterministic: every latency metric of every
    # scheme both runs share must match the baseline exactly.
    for scheme, fresh in record["schemes"].items():
        committed = baseline["schemes"].get(scheme)
        if committed is None:
            continue
        for metric in EXACT_METRICS:
            if fresh[metric] != committed[metric]:
                failures.append(
                    f"{scheme}.{metric} {fresh[metric]} != committed "
                    f"{committed[metric]} (deterministic; investigate)"
                )
    return failures


def _print(record: Dict[str, object]) -> None:
    rows = []
    for scheme, summary in record["schemes"].items():
        rows.append(
            [
                scheme,
                f"{summary['p50_total_us']:.0f}",
                f"{summary['p99_total_us']:.0f}",
                f"{summary['p50_ttft_us']:.0f}",
                f"{summary['goodput_rps']:.1f}",
                f"{summary['sweep_cache_hits']}/{summary['iterations']}",
            ]
        )
    print()
    print(
        format_table(
            ["scheme", "p50 us", "p99 us", "ttft p50 us", "goodput r/s", "cache hits"],
            rows,
            title=(
                f"Serving: {record['requests']} reqs @ {record['rate_rps']:.0f} r/s, "
                f"cusync p99 -{record['cusync_p99_improvement']:.1%} "
                f"({record['elapsed_s']:.2f}s)"
            ),
        )
    )


def _check(record: Dict[str, object]) -> None:
    """Subsystem-shape sanity, independent of any baseline."""
    schemes = record["schemes"]
    for scheme, summary in schemes.items():
        assert summary["completed"] == record["requests"], (scheme, summary)
        # Repeated batch shapes must replay from the session sweep cache.
        assert summary["sweep_cache_hits"] > 0, (scheme, summary)
        assert (
            summary["sweep_cache_hits"] + summary["sweep_cache_misses"]
            == summary["iterations"]
        ), (scheme, summary)
    # The acceptance property: tile-level sync is no worse at the tail.
    assert (
        schemes["cusync"]["p99_total_us"] <= schemes["streamsync"]["p99_total_us"]
    ), record["cusync_p99_improvement"]
    assert record["cusync_p99_improvement"] >= 0.0


def test_serving(bench_once, benchmark):
    record = bench_once(benchmark, run_experiment, smoke=True)
    write_record(record, output_path=LATEST_OUTPUT)
    _print(record)
    _check(record)


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    check = "--check-baseline" in argv
    baseline = None
    if check:
        with open(DEFAULT_OUTPUT) as handle:
            baseline = json.load(handle)
    record = run_experiment(smoke=smoke)
    _print(record)
    _check(record)
    # A plain full run refreshes the committed baseline; smoke and gated
    # runs record next to it (the baseline stays authoritative).
    write_record(record, output_path=LATEST_OUTPUT if (check or smoke) else "")
    if baseline is not None:
        failures = compare_against_baseline(record, baseline)
        if smoke:
            print("note: --check-baseline with --smoke gates determinism only, not wall time")
            failures = [f for f in failures if not f.startswith("elapsed_s")]
        if failures:
            print("serving regression vs committed BENCH_serving.json:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"baseline gate ok: {record['elapsed_s']:.2f}s vs committed "
            f"{baseline['elapsed_s']:.2f}s (tolerance {BASELINE_TOLERANCE}x)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
