"""Simulator throughput benchmark: blocks simulated per second.

Unlike the other benchmarks (which regenerate tables/figures of the paper),
this one measures the *simulator itself* so that simulator-performance
regressions are caught and future optimisation PRs have a trajectory to
defend.  Two numbers are recorded:

* ``blocks_per_sec`` — thread blocks simulated per wall-clock second on a
  fixed synthetic two-kernel pipeline (producer posts one semaphore per
  block, consumer blocks busy-wait on their producer block), which
  exercises every hot path: dispatch, SM allocation, the waiter registry
  and semaphore polling.
* ``table4_mlp_s`` — wall time of one full :func:`table4_mlp` regeneration,
  the end-to-end workload the hot-path overhaul was profiled on.
* ``attention_sweep_s`` — wall time of the GPT-3 attention graph under
  TileSync + StridedTileSync on fresh sessions: the workload whose GeMMs
  synchronize *both* operands, added to defend the shared body-segment
  cache (waits are composed per distinct plan pair, no longer rebuilt per
  column tile).
* ``sweep_cache_hit_rate`` (plus ``sweep_cache_cold_s`` /
  ``sweep_cache_replay_s``) — a small arch×policy grid swept twice through
  one :class:`~repro.pipeline.Session`: the second pass must replay every
  point from the session's sweep-result cache bit-identically.  The hit
  rate is deterministic (0.5 for two passes over a duplicate-free grid);
  the gate exists so a broken cache (rate → 0) fails CI.

Pass ``--profile`` to print the cProfile top 25 (by cumulative time)
over three synthetic runs instead of benchmarking — the shared
methodology for hot-path PRs (see benchmarks/README.md).

``BENCH_sim_throughput.json`` in the repository root is the **committed
baseline**.  A plain run refreshes it (do this deliberately, on the
machine whose numbers you want to pin); ``--check-baseline`` and the
pytest path instead write ``BENCH_sim_throughput.latest.json`` (ignored)
and — for the flag — gate the fresh numbers against the committed
baseline with a :data:`BASELINE_TOLERANCE` slack, exiting non-zero on a
step-function regression.  Override the output path with the
``BENCH_SIM_THROUGHPUT_OUT`` environment variable.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py [--check-baseline]

or through pytest (``pytest benchmarks/bench_sim_throughput.py``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.bench.experiments import table4_mlp
from repro.common.dim3 import Dim3
from repro.gpu.kernel import KernelLaunch, SemPost, SemWait, simple_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator
from repro.gpu.stream import Stream

#: Fixed synthetic grid: 48 x 80 = 3840 blocks per kernel, two kernels.
SYNTHETIC_GRID = Dim3(48, 80, 1)
#: Minimum measurement repetitions (best-of is reported).
REPEATS = 3

DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_sim_throughput.json")
#: Non-destructive output used by the pytest path and ``--check-baseline``,
#: so measuring never silently rewrites the committed baseline.
LATEST_OUTPUT = DEFAULT_OUTPUT.replace(".json", ".latest.json")


def _linear(tile: Dim3) -> int:
    return tile.y * SYNTHETIC_GRID.x + tile.x


def build_synthetic_launches() -> List[KernelLaunch]:
    """A producer/consumer pair with per-block tile synchronization."""
    producer = simple_kernel(
        name="synthetic_producer",
        grid=SYNTHETIC_GRID,
        block_duration_us=2.0,
        occupancy=2,
        stream=Stream(priority=0, name="producer"),
        posts_per_block=lambda tile: [SemPost("synthetic_sem", _linear(tile))],
    )
    consumer = simple_kernel(
        name="synthetic_consumer",
        grid=SYNTHETIC_GRID,
        block_duration_us=2.0,
        occupancy=2,
        stream=Stream(priority=1, name="consumer"),
        waits_per_block=lambda tile: [SemWait("synthetic_sem", _linear(tile), 1)],
    )
    return [producer, consumer]


def measure_throughput(repeats: int = REPEATS) -> Dict[str, float]:
    """Best-of-``repeats`` blocks/sec on the fixed synthetic pipeline."""
    total_blocks = 2 * SYNTHETIC_GRID.volume
    best = float("inf")
    for _ in range(repeats):
        memory = GlobalMemory()
        memory.alloc_semaphores("synthetic_sem", SYNTHETIC_GRID.volume)
        simulator = GpuSimulator(memory=memory)
        launches = build_synthetic_launches()
        start = time.perf_counter()
        result = simulator.run(launches)
        elapsed = time.perf_counter() - start
        assert len(result.trace.blocks) == total_blocks
        best = min(best, elapsed)
    return {
        "blocks": float(total_blocks),
        "elapsed_s": best,
        "blocks_per_sec": total_blocks / best,
    }


def measure_table4(repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of a full table4_mlp regeneration."""
    table4_mlp(batch_sizes=(64,))  # warm caches/imports outside the timing
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        table4_mlp()
        best = min(best, time.perf_counter() - start)
    return best


def measure_attention(repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of the dual-sync-operand attention graph."""
    from repro.models.attention import Attention
    from repro.models.config import GPT3_145B
    from repro.pipeline import Session

    workload = Attention(config=GPT3_145B, batch=1, seq=512, cached=0)
    graph = workload.to_graph()
    Session(arch=workload.arch).run(graph, scheme="cusync", policy="TileSync")  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session = Session(arch=workload.arch)
        session.run(graph, scheme="cusync", policy="TileSync")
        session.run(graph, scheme="cusync", policy="StridedTileSync")
        best = min(best, time.perf_counter() - start)
    return best


def measure_sweep_cache() -> Dict[str, float]:
    """Sweep one small grid twice through a session; the replay must hit.

    Returns the session-level hit rate plus the cold/replay wall times.
    The replayed results are asserted bit-identical to the fresh ones
    (``SweepResult`` equality covers every value field; the diagnostic
    ``cached`` flag is excluded) — caching must never change a number.
    """
    from repro.models.mlp import GptMlp
    from repro.pipeline import Session, sweep_archs

    graph = GptMlp(batch_seq=256).to_graph()
    session = Session()
    work = sweep_archs(graph, ("V100", "A100"), policies=("TileSync", "RowSync"))
    start = time.perf_counter()
    cold = session.sweep(work, mode="serial")
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    replayed = session.sweep(work, mode="serial")
    replay_s = time.perf_counter() - start
    assert replayed == cold
    assert all(result.cached for result in replayed)
    hits, misses = session.sweep_cache_hits, session.sweep_cache_misses
    return {
        "sweep_cache_hit_rate": hits / (hits + misses),
        "sweep_cache_cold_s": cold_s,
        "sweep_cache_replay_s": replay_s,
    }


def run_benchmark(output_path: str = "") -> Dict[str, float]:
    record = measure_throughput()
    record["table4_mlp_s"] = measure_table4()
    record["attention_sweep_s"] = measure_attention()
    record.update(measure_sweep_cache())
    path = output_path or os.environ.get("BENCH_SIM_THROUGHPUT_OUT", DEFAULT_OUTPUT)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return record


#: Tolerated slowdown vs the committed baseline before the gate fails.
#: CI runners differ from the machine that recorded the baseline, so the
#: gate only catches step-function regressions (a 2x slowdown), not noise.
BASELINE_TOLERANCE = 2.0


def compare_against_baseline(
    record: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Failures of ``record`` against the committed baseline (empty = pass).

    ``blocks_per_sec`` may not drop below ``baseline / tolerance`` and
    ``table4_mlp_s`` may not grow past ``baseline * tolerance``.
    """
    failures: List[str] = []
    floor = baseline["blocks_per_sec"] / tolerance
    if record["blocks_per_sec"] < floor:
        failures.append(
            f"blocks_per_sec {record['blocks_per_sec']:,.0f} fell below "
            f"{floor:,.0f} (baseline {baseline['blocks_per_sec']:,.0f} / {tolerance}x tolerance)"
        )
    ceiling = baseline["table4_mlp_s"] * tolerance
    if record["table4_mlp_s"] > ceiling:
        failures.append(
            f"table4_mlp_s {record['table4_mlp_s']:.3f} exceeded "
            f"{ceiling:.3f} (baseline {baseline['table4_mlp_s']:.3f} * {tolerance}x tolerance)"
        )
    if "attention_sweep_s" in baseline:
        ceiling = baseline["attention_sweep_s"] * tolerance
        if record["attention_sweep_s"] > ceiling:
            failures.append(
                f"attention_sweep_s {record['attention_sweep_s']:.3f} exceeded "
                f"{ceiling:.3f} (baseline {baseline['attention_sweep_s']:.3f} * {tolerance}x tolerance)"
            )
    if "sweep_cache_hit_rate" in baseline:
        floor = baseline["sweep_cache_hit_rate"] / tolerance
        if record["sweep_cache_hit_rate"] < floor:
            failures.append(
                f"sweep_cache_hit_rate {record['sweep_cache_hit_rate']:.3f} fell below "
                f"{floor:.3f} (baseline {baseline['sweep_cache_hit_rate']:.3f} / {tolerance}x tolerance)"
            )
    return failures


def test_sim_throughput(capsys=None):
    """Smoke check: the simulator sustains a sane block throughput."""
    record = run_benchmark(output_path=LATEST_OUTPUT)
    print()
    print(f"simulator throughput: {record['blocks_per_sec']:,.0f} blocks/sec")
    print(f"table4_mlp regeneration: {record['table4_mlp_s']:.3f} s")
    print(f"attention sweep: {record['attention_sweep_s']:.3f} s")
    print(f"sweep cache hit rate: {record['sweep_cache_hit_rate']:.2f}")
    # Loose floor (~20x below current hardware-dependent numbers) so CI
    # flags order-of-magnitude regressions without flaking on slow runners.
    assert record["blocks_per_sec"] > 10_000
    assert record["table4_mlp_s"] < 10.0
    # Two passes over a duplicate-free grid: exactly half the points replay.
    assert record["sweep_cache_hit_rate"] == 0.5


def profile_run(top: int = 25) -> None:
    """cProfile the synthetic pipeline and print the ``top`` entries.

    The shared methodology for hot-path PRs: profile a few full synthetic
    runs, sort by cumulative time, and attack the biggest entries (see
    benchmarks/README.md for the workflow this feeds).
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    for _ in range(3):
        memory = GlobalMemory()
        memory.alloc_semaphores("synthetic_sem", SYNTHETIC_GRID.volume)
        simulator = GpuSimulator(memory=memory)
        launches = build_synthetic_launches()
        profiler.enable()
        simulator.run(launches)
        profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(top)


def main(argv: List[str]) -> int:
    if "--profile" in argv:
        profile_run()
        return 0
    check = "--check-baseline" in argv
    baseline = None
    if check:
        with open(DEFAULT_OUTPUT) as handle:
            baseline = json.load(handle)
    # A plain run refreshes the committed baseline; the gated run records
    # its measurement next to it instead (the baseline stays authoritative).
    result = run_benchmark(output_path=LATEST_OUTPUT if check else "")
    print(json.dumps(result, indent=1, sort_keys=True))
    if baseline is not None:
        failures = compare_against_baseline(result, baseline)
        if failures:
            print("throughput regression vs committed BENCH_sim_throughput.json:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"baseline gate ok: {result['blocks_per_sec']:,.0f} blocks/sec vs "
            f"committed {baseline['blocks_per_sec']:,.0f} (tolerance {BASELINE_TOLERANCE}x)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
