"""Figure 8: end-to-end inference time reduction for all four models."""

from repro.bench import figure8_end_to_end, format_percent, format_table


def test_fig8_end_to_end(bench_once, benchmark):
    rows = bench_once(
        benchmark,
        figure8_end_to_end,
        ((1, 512, 0), (1, 512, 512)),  # one prompt and one token-generation config
        (1, 8),
    )
    print()
    print(
        format_table(
            ["model", "batch", "seq", "S'", "StreamSync us", "cuSync us", "reduction"],
            [
                [
                    row["model"],
                    row["batch"],
                    row["seq"],
                    row["cached"],
                    row["streamsync_us"],
                    row["cusync_us"],
                    format_percent(row["reduction"]),
                ]
                for row in rows
            ],
            title="Figure 8: end-to-end inference time reduction",
        )
    )
    # The paper reports 5-22% end-to-end reductions; the qualitative claim
    # checked here is that every model improves end to end and that the
    # estimates stay within a plausible band (the simulator over-credits the
    # 4-conv VGG chains somewhat; see EXPERIMENTS.md).
    vision = [row for row in rows if row["model"] in ("ResNet-38", "VGG-19")]
    assert all(row["reduction"] > 0.0 for row in vision)
    assert all(row["reduction"] < 0.45 for row in rows)
    assert all(row["reduction"] > -0.05 for row in rows)
