"""Figure 6: MLP and Attention improvement over StreamSync (GPT-3 and LLaMA)."""

import pytest

from repro.bench import figure6_llm, format_percent, format_table

PROMPT_SIZES = (256, 512, 1024, 2048)
TOKEN_CONFIGS = ((1, 512), (4, 2048))


def _print(rows, title, policies):
    print()
    print(
        format_table(
            ["model", "block", "BxS", "S'", *policies, "StreamK", "best"],
            [
                [
                    row["model"],
                    row["block"],
                    row["batch_seq"],
                    row["cached"],
                    *[format_percent(row[p]) if p in row else "-" for p in policies],
                    format_percent(row["StreamK"]) if "StreamK" in row else "-",
                    format_percent(row["best"]),
                ]
                for row in rows
            ],
            title=title,
        )
    )


def test_fig6a_gpt3_mlp(bench_once, benchmark):
    rows = bench_once(benchmark, figure6_llm, "gpt3", "mlp", PROMPT_SIZES)
    _print(rows, "Figure 6(a): GPT-3 MLP improvement over StreamSync", ["TileSync", "RowSync"])
    by_size = {row["batch_seq"]: row for row in rows}
    # Paper shape: the improvement peaks in the 256-1024 range and is the
    # smallest at the largest size; cuSync beats Stream-K at large sizes.
    assert by_size[512]["best"] > 0.10
    assert by_size[1024]["best"] > 0.05
    assert by_size[2048]["best"] < by_size[512]["best"]
    assert by_size[2048]["best"] >= by_size[2048]["StreamK"] - 0.02


def test_fig6b_gpt3_attention(bench_once, benchmark):
    rows = bench_once(
        benchmark, figure6_llm, "gpt3", "attention", (512, 2048), TOKEN_CONFIGS
    )
    _print(
        rows,
        "Figure 6(b): GPT-3 Attention improvement over StreamSync",
        ["TileSync", "RowSync", "StridedTileSync"],
    )
    # cuSync's best policy should never lose more than a few percent, for
    # any prompt or token-generation configuration.
    assert all(row["best"] > -0.05 for row in rows)


def test_fig6c_llama_mlp(bench_once, benchmark):
    rows = bench_once(benchmark, figure6_llm, "llama", "mlp", (512, 1024, 2048))
    _print(rows, "Figure 6(c): LLaMA MLP improvement over StreamSync", ["TileSync", "RowSync"])
    by_size = {row["batch_seq"]: row for row in rows}
    assert by_size[1024]["best"] > 0.05
    assert all(row["best"] > -0.05 for row in rows)


def test_fig6d_llama_attention(bench_once, benchmark):
    rows = bench_once(
        benchmark, figure6_llm, "llama", "attention", (512,), ((4, 2048),)
    )
    _print(
        rows,
        "Figure 6(d): LLaMA Attention improvement over StreamSync",
        ["TileSync", "RowSync", "StridedTileSync"],
    )
    assert all(row["best"] > -0.05 for row in rows)
