"""Sweep-service benchmark: warm-store replay speedup and coalescing dedup.

Exercises the two properties the service subsystem exists for:

* **Persistence** — a cold pass simulates an arch-comparison grid through
  a :class:`~repro.service.SweepService` backed by a disk
  :class:`~repro.service.SweepResultStore`, then a brand-new session +
  store handle replays the identical grid from disk.  The record keeps
  both wall times and the replay speedup; the replayed results must be
  bit-identical with zero simulations.
* **Coalescing** — N concurrent clients submit the same grid against a
  deliberately slow fake worker; the dedup ratio (coalesced points /
  submitted points) must show every duplicate landing on the one
  in-flight evaluation.

``BENCH_sweep_service.json`` in the repository root is the **committed
baseline**.  A plain run refreshes it (do this deliberately);
``--check-baseline`` writes ``BENCH_sweep_service.latest.json`` and gates
the fresh numbers against the committed baseline with the suite's 2x
wall-clock tolerance.  The dedup ratio and replay identity are
deterministic, so the gate requires them to match exactly at any
tolerance.  ``--smoke`` shrinks the grid for CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sweep_service.py [--smoke] [--check-baseline]

or through pytest (``pytest benchmarks/bench_sweep_service.py``).

JSON schema (see also benchmarks/README.md):

* ``grid_points`` — points in the persisted grid;
* ``cold_s`` / ``warm_s`` / ``warm_speedup`` — fresh simulation vs
  disk-store replay wall time;
* ``replay_identical`` — the warm results equal the cold ones;
* ``store`` — writes / hits counted by the disk store itself;
* ``coalescing`` — ``{clients, submitted, simulated, coalesced,
  dedup_ratio}`` from the concurrent-clients scenario;
* ``elapsed_s`` — wall time of the full experiment (the gated quantity).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from typing import Dict, List

from repro.bench import format_table

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_sweep_service.json"
)
#: Non-destructive output used by the pytest path and ``--check-baseline``.
LATEST_OUTPUT = DEFAULT_OUTPUT.replace(".json", ".latest.json")

#: Tolerated wall-clock slowdown vs the committed baseline (CI runners
#: differ from the machine that recorded it).  Matches the other gates.
BASELINE_TOLERANCE = 2.0

#: Concurrent clients in the coalescing scenario.
CLIENTS = 5


def _grid(smoke: bool):
    from repro.models.config import TransformerConfig
    from repro.pipeline import sweep_archs

    from repro.models.mlp import GptMlp

    arches = ("V100", "A100") if smoke else ("V100", "A100", "H100-SXM")
    policies = ("TileSync", "RowSync") if smoke else ("TileSync", "RowSync", "BatchSync")
    configs = [
        TransformerConfig(name="svc-small", hidden=256, layers=2, tensor_parallel=8),
    ]
    if not smoke:
        configs.append(
            TransformerConfig(name="svc-wide", hidden=512, layers=2, tensor_parallel=8)
        )
    work = []
    for config in configs:
        graph = GptMlp(config=config, batch_seq=96).to_graph()
        work.extend(
            sweep_archs(graph, arches, policies=policies, schemes=("cusync", "streamsync"))
        )
    return work


def _result_row(result) -> List[object]:
    return [
        result.scheme,
        result.policy_label,
        result.arch_name,
        result.total_time_us,
        [[name, us] for name, us in result.kernel_durations_us],
    ]


def _run_grid(work, root) -> Dict[str, object]:
    from repro.pipeline import Session
    from repro.service import SweepResultStore, SweepService

    store = SweepResultStore(root)
    session = Session()

    async def go():
        with SweepService(session=session, store=store) as service:
            results = await service.sweep(list(work))
            return service.stats(), results

    start = time.perf_counter()
    stats, results = asyncio.run(go())
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "service": stats,
        "store": store.stats(),
        "rows": [_result_row(result) for result in results],
    }


def _run_coalescing(work) -> Dict[str, object]:
    from repro.service import SweepService
    from repro.service.fakes import FakeWorker

    worker = FakeWorker(delay_s=0.02)

    async def go():
        with SweepService(worker=worker) as service:
            jobs = await asyncio.gather(
                *[service.submit(list(work)) for _ in range(CLIENTS)]
            )
            await asyncio.gather(*[job.results() for job in jobs])
            return service.stats()

    stats = asyncio.run(go())
    submitted = stats["points_submitted"]
    return {
        "clients": CLIENTS,
        "submitted": submitted,
        "simulated": stats["points_simulated"],
        "coalesced": stats["points_coalesced"],
        "dedup_ratio": stats["points_coalesced"] / submitted if submitted else 0.0,
        "worker_calls": worker.calls,
    }


def run_experiment(smoke: bool = False) -> Dict[str, object]:
    work = _grid(smoke)
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="sweep-service-bench-") as root:
        cold = _run_grid(work, root)
        # A brand-new session and store handle: the only shared state is
        # the directory on disk.
        warm = _run_grid(work, root)
    coalescing = _run_coalescing(work)
    elapsed = time.perf_counter() - start
    warm_s = warm["elapsed_s"]
    return {
        "elapsed_s": elapsed,
        "grid_points": len(work),
        "cold_s": cold["elapsed_s"],
        "warm_s": warm_s,
        "warm_speedup": cold["elapsed_s"] / warm_s if warm_s > 0 else float("inf"),
        "replay_identical": warm["rows"] == cold["rows"],
        "cold_service": cold["service"],
        "warm_service": warm["service"],
        "store": {
            "writes": cold["store"]["writes"],
            "hits": warm["store"]["hits"],
        },
        "coalescing": coalescing,
    }


def write_record(record: Dict[str, object], output_path: str = "") -> None:
    path = output_path or os.environ.get("BENCH_SWEEP_SERVICE_OUT", DEFAULT_OUTPUT)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare_against_baseline(
    record: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Failures of ``record`` against the committed baseline (empty = pass)."""
    failures: List[str] = []
    ceiling = baseline["elapsed_s"] * tolerance
    if record["elapsed_s"] > ceiling:
        failures.append(
            f"elapsed_s {record['elapsed_s']:.3f} exceeded {ceiling:.3f} "
            f"(baseline {baseline['elapsed_s']:.3f} * {tolerance}x tolerance)"
        )
    floor = baseline["warm_speedup"] / tolerance
    if record["warm_speedup"] < floor:
        failures.append(
            f"warm_speedup {record['warm_speedup']:.2f}x fell below {floor:.2f}x "
            f"(baseline {baseline['warm_speedup']:.2f}x / {tolerance}x tolerance)"
        )
    # Deterministic quantities hold exactly at any tolerance.
    if not record["replay_identical"]:
        failures.append("warm-store replay was not bit-identical to the cold run")
    expected_dedup = baseline["coalescing"]["dedup_ratio"]
    if record["coalescing"]["dedup_ratio"] != expected_dedup:
        failures.append(
            f"coalescing dedup_ratio {record['coalescing']['dedup_ratio']:.4f} != "
            f"baseline {expected_dedup:.4f} (deterministic; investigate)"
        )
    return failures


def _print(record: Dict[str, object]) -> None:
    coalescing = record["coalescing"]
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["grid points", record["grid_points"]],
                ["cold sweep (s)", f"{record['cold_s']:.3f}"],
                ["warm-store replay (s)", f"{record['warm_s']:.3f}"],
                ["replay speedup", f"{record['warm_speedup']:.1f}x"],
                ["replay identical", str(record["replay_identical"])],
                ["store writes / hits", f"{record['store']['writes']} / {record['store']['hits']}"],
                [
                    "coalescing",
                    f"{coalescing['clients']} clients, {coalescing['submitted']} submitted, "
                    f"{coalescing['simulated']} simulated",
                ],
                ["dedup ratio", f"{coalescing['dedup_ratio']:.3f}"],
            ],
            title=f"Sweep service ({record['elapsed_s']:.2f}s)",
        )
    )


def _check(record: Dict[str, object]) -> None:
    """Subsystem-shape sanity, independent of any baseline."""
    points = record["grid_points"]
    assert record["cold_service"]["points_simulated"] == points
    assert record["store"]["writes"] == points
    # The entire warm pass came from the disk store: no simulations, every
    # point a store hit, results bit-identical.
    assert record["warm_service"]["points_simulated"] == 0, record["warm_service"]
    assert record["warm_service"]["store_hits"] == points
    assert record["store"]["hits"] == points
    assert record["replay_identical"], "warm-store replay diverged from the cold run"
    assert record["warm_speedup"] > 2.0, (
        f"replaying from the store should be a clear win: {record['warm_speedup']:.2f}x"
    )
    coalescing = record["coalescing"]
    # Exactly one evaluation per novel point, every duplicate coalesced.
    assert coalescing["worker_calls"] == points
    assert coalescing["simulated"] == points
    assert coalescing["coalesced"] == coalescing["submitted"] - points
    expected = (coalescing["clients"] - 1) / coalescing["clients"]
    assert coalescing["dedup_ratio"] == expected, coalescing


def test_sweep_service(bench_once, benchmark):
    record = bench_once(benchmark, run_experiment, smoke=True)
    write_record(record, output_path=LATEST_OUTPUT)
    _print(record)
    _check(record)


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    check = "--check-baseline" in argv
    baseline = None
    if check:
        with open(DEFAULT_OUTPUT) as handle:
            baseline = json.load(handle)
    record = run_experiment(smoke=smoke)
    _print(record)
    _check(record)
    # A plain full run refreshes the committed baseline; smoke and gated
    # runs record next to it (the baseline stays authoritative).
    write_record(record, output_path=LATEST_OUTPUT if (check or smoke) else "")
    if baseline is not None:
        failures = compare_against_baseline(record, baseline)
        if smoke:
            print("note: --check-baseline with --smoke gates determinism only, not wall time")
            failures = [
                failure for failure in failures if not failure.startswith(("elapsed_s", "warm_speedup"))
            ]
        if failures:
            print("sweep-service regression vs committed BENCH_sweep_service.json:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"baseline gate ok: {record['elapsed_s']:.2f}s vs committed "
            f"{baseline['elapsed_s']:.2f}s (tolerance {BASELINE_TOLERANCE}x)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
