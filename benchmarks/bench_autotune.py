"""Autotuning benchmark: search wall-clock and cache-exploitation ratio.

Runs the GPT-3 MLP ``(tile, policy, arch)`` search
(:func:`repro.tune.presets.gpt3_mlp_space`) with successive halving over
the non-V100 architectures, twice through one session:

* the **cold** pass simulates every novel point and records the search
  wall time and how many of the strategy's trials the in-memory sweep
  cache already replayed (halving re-measures survivors every rung, so
  even a cold search is partly cached);
* the **warm** pass reruns the identical search against the warm session
  and must replay *everything* — zero novel simulations — demonstrating
  the cached-replay guarantee tuner reruns rely on.

``BENCH_autotune.json`` in the repository root is the committed
baseline.  A plain run refreshes it (do this deliberately);
``--check-baseline`` writes ``BENCH_autotune.latest.json`` and gates the
fresh numbers (2x wall-clock tolerance, exact winner keys, warm replay
invariants).  ``--smoke`` shrinks to one architecture, a tiny tile grid
and small shapes for CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_autotune.py [--smoke] [--check-baseline]

or through pytest (``pytest benchmarks/bench_autotune.py``).

JSON schema (see also benchmarks/README.md):

* ``arches`` — the arch axis searched; ``candidates`` — space size;
* ``elapsed_s`` — cold search wall time (the gated quantity);
* ``cold`` / ``warm`` — per-pass ``{trials, novel_simulations,
  cache_hits, cache_ratio, elapsed_s}`` (``cache_ratio`` = fraction of
  trials served from cache; warm must be 1.0 with zero novel points);
* ``replay_identical`` — warm trajectory bit-identical to cold;
* ``winners`` — per-arch ``{tile, policy, time_us, baseline_us,
  improvement_vs_default}`` rows from the cold search.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.bench import format_percent, format_table
from repro.models.config import TransformerConfig
from repro.pipeline import Session
from repro.tune import SuccessiveHalving, Tuner, gpt3_mlp_space
from repro.tune.presets import mlp_tile_grid

DEFAULT_ARCHES = ("A100", "H100-SXM", "RTX-4090")
SMOKE_ARCHES = ("A100",)

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_autotune.json"
)
#: Non-destructive output used by the pytest path and ``--check-baseline``.
LATEST_OUTPUT = DEFAULT_OUTPUT.replace(".json", ".latest.json")

#: Tolerated wall-clock slowdown vs the committed baseline (CI runners
#: differ from the machine that recorded it; only step-function
#: regressions should fail).  Matches bench_sim_throughput.py.
BASELINE_TOLERANCE = 2.0


def _space(smoke: bool):
    if smoke:
        # One arch, the default tile plus a 4-choice grid, tiny shapes.
        tiny = TransformerConfig(name="tiny", hidden=256, layers=2, tensor_parallel=8)
        grid = mlp_tile_grid("mlp_gemm1", "mlp_gemm2")
        return gpt3_mlp_space(
            batch_seq=96, config=tiny, arches=SMOKE_ARCHES, tile_choices=grid[:5]
        )
    return gpt3_mlp_space(arches=DEFAULT_ARCHES)


def _pass_stats(report, elapsed: float) -> Dict[str, object]:
    trials = len(report.trials)
    cached = sum(1 for trial in report.trials if trial.cached)
    return {
        "trials": trials,
        "novel_simulations": report.novel_simulations,
        "cache_hits": report.cache_hits,
        "cache_ratio": cached / trials if trials else 0.0,
        "elapsed_s": elapsed,
    }


def run_experiment(smoke: bool = False) -> Dict[str, object]:
    space = _space(smoke)
    tuner = Tuner(session=Session(), mode="thread")
    strategy = SuccessiveHalving(eta=2)

    start = time.perf_counter()
    cold = tuner.tune(space, strategy)
    cold_s = time.perf_counter() - start

    warm_start = time.perf_counter()
    warm = tuner.tune(space, strategy)
    warm_s = time.perf_counter() - warm_start

    winners = [
        {
            "arch": entry.arch,
            "tile": entry.tile,
            "policy": entry.policy,
            "time_us": entry.time_us,
            "baseline_us": entry.baseline_us,
            "improvement_vs_default": entry.improvement_vs_default,
        }
        for entry in cold.entries
    ]
    return {
        "arches": [entry.arch for entry in cold.entries],
        "candidates": len(space),
        "strategy": strategy.name,
        "elapsed_s": cold_s,
        "cold": _pass_stats(cold, cold_s),
        "warm": _pass_stats(warm, warm_s),
        "replay_identical": warm.trajectory() == cold.trajectory(),
        "winners": winners,
    }


def write_record(record: Dict[str, object], output_path: str = "") -> None:
    path = output_path or os.environ.get("BENCH_AUTOTUNE_OUT", DEFAULT_OUTPUT)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare_against_baseline(
    record: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Failures of ``record`` against the committed baseline (empty = pass)."""
    failures: List[str] = []
    ceiling = baseline["elapsed_s"] * tolerance
    if record["elapsed_s"] > ceiling:
        failures.append(
            f"elapsed_s {record['elapsed_s']:.3f} exceeded {ceiling:.3f} "
            f"(baseline {baseline['elapsed_s']:.3f} * {tolerance}x tolerance)"
        )

    def winner_keys(payload: Dict[str, object]) -> set:
        return {(row["arch"], row["tile"], row["policy"]) for row in payload["winners"]}

    if winner_keys(record) != winner_keys(baseline):
        failures.append(
            f"winners diverged from committed baseline: "
            f"{sorted(winner_keys(record) ^ winner_keys(baseline))}"
        )

    floor = baseline["cold"]["cache_ratio"] / tolerance
    if record["cold"]["cache_ratio"] < floor:
        failures.append(
            f"cold cache_ratio {record['cold']['cache_ratio']:.3f} fell below "
            f"{floor:.3f} (baseline {baseline['cold']['cache_ratio']:.3f} / {tolerance}x)"
        )
    return failures


def _print(record: Dict[str, object]) -> None:
    print()
    print(
        format_table(
            ["arch", "tile", "policy", "time (us)", "vs default tile"],
            [
                [
                    row["arch"],
                    row["tile"],
                    row["policy"],
                    row["time_us"],
                    format_percent(row["improvement_vs_default"] or 0.0),
                ]
                for row in record["winners"]
            ],
            title=f"Autotune [{record['strategy']}] over {record['candidates']} candidates "
            f"({record['elapsed_s']:.2f}s cold, "
            f"{record['warm']['elapsed_s']:.2f}s warm)",
        )
    )


def _check(record: Dict[str, object]) -> None:
    """Invariants every run must hold: the warm rerun replays everything
    from cache (zero novel simulations, bit-identical trajectory) and is
    a clear wall-clock win over the cold search."""
    warm = record["warm"]
    assert warm["novel_simulations"] == 0, f"warm rerun simulated: {warm}"
    assert warm["cache_ratio"] == 1.0, f"warm rerun missed the cache: {warm}"
    assert record["replay_identical"], "warm trajectory diverged from the cold search"
    assert record["cold"]["novel_simulations"] > 0, "cold search simulated nothing"
    assert warm["elapsed_s"] < record["elapsed_s"] / 2, (
        f"warm replay ({warm['elapsed_s']:.3f}s) is not a wall-clock win over "
        f"the cold search ({record['elapsed_s']:.3f}s)"
    )
    for row in record["winners"]:
        assert row["time_us"] < row["baseline_us"], (
            f"winner slower than StreamSync on {row['arch']}: {row}"
        )


def test_autotune(bench_once, benchmark):
    record = bench_once(benchmark, run_experiment, smoke=True)
    write_record(record, output_path=LATEST_OUTPUT)
    _print(record)
    _check(record)


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    check = "--check-baseline" in argv
    baseline = None
    if check:
        with open(DEFAULT_OUTPUT) as handle:
            baseline = json.load(handle)
    record = run_experiment(smoke=smoke)
    _print(record)
    _check(record)
    # A plain full run refreshes the committed baseline; smoke and gated
    # runs record next to it (the baseline stays authoritative).
    write_record(record, output_path=LATEST_OUTPUT if (check or smoke) else "")
    if baseline is not None:
        if smoke:
            print("note: --check-baseline gates the full search; --smoke compares wall time only")
            failures = [
                failure
                for failure in compare_against_baseline(record, baseline)
                if failure.startswith("elapsed_s")
            ]
        else:
            failures = compare_against_baseline(record, baseline)
        if failures:
            print("autotune regression vs committed BENCH_autotune.json:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"baseline gate ok: {record['elapsed_s']:.2f}s vs committed "
            f"{baseline['elapsed_s']:.2f}s (tolerance {BASELINE_TOLERANCE}x)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
