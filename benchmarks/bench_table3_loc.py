"""Table III: lines changed in each kernel to adopt cuSync."""

from repro.bench import format_table, table3_lines_changed


def test_table3_lines_changed(bench_once, benchmark):
    rows = bench_once(benchmark, table3_lines_changed)
    print()
    print(
        format_table(
            ["Kernel", "Total lines", "Lines changed", "Fraction"],
            [
                [row["kernel"], row["total_lines"], row["lines_changed"], f"{row['fraction'] * 100:.1f}%"]
                for row in rows
            ],
            title="Table III: cuSync integration effort per kernel",
        )
    )
    # The paper reports the integration touches only a tiny fraction of each
    # kernel (<= ~1-2% of its lines, a handful of call sites).
    for row in rows:
        assert row["lines_changed"] <= 10
        assert row["fraction"] < 0.05
