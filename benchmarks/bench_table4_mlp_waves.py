"""Table IV: StreamSync vs cuSync waves and execution times for GPT-3's MLP."""

from repro.bench import format_percent, format_table, table4_mlp


def test_table4_mlp(bench_once, benchmark):
    rows = bench_once(benchmark, table4_mlp, (64, 256, 512, 1024, 2048))
    print()
    print(
        format_table(
            [
                "BxS",
                "grid 1st",
                "waves 1st",
                "grid 2nd",
                "waves 2nd",
                "StreamSync us",
                "cuSync us",
                "policy",
                "reduction",
            ],
            [
                [
                    row["batch"],
                    row["grid_first"],
                    row["waves_first"],
                    row["grid_second"],
                    row["waves_second"],
                    row["streamsync_us"],
                    row["cusync_us"],
                    row["best_policy"],
                    format_percent(row["reduction"]),
                ]
                for row in rows
            ],
            title="Table IV: GPT-3 MLP, StreamSync vs cuSync (best policy)",
        )
    )
    by_batch = {row["batch"]: row for row in rows}
    # Shape checks from the paper: the mid sizes (256-1024) benefit the
    # most, the largest size benefits least among the mid-to-large range,
    # and cuSync never loses badly anywhere.
    assert by_batch[512]["reduction"] > 0.10
    assert by_batch[1024]["reduction"] > 0.05
    assert by_batch[2048]["reduction"] < by_batch[512]["reduction"]
    assert all(row["reduction"] > -0.05 for row in rows)
    # TileSync wins at 256 while RowSync wins at the larger sizes.
    assert by_batch[256]["best_policy"] == "TileSync"
    assert by_batch[2048]["best_policy"] == "RowSync"
