"""Table V: impact of the W/R/T optimizations on TileSync / Conv2DTileSync."""

from repro.bench import format_table, table5_conv_optimizations, table5_mlp_optimizations

LADDER = ("Vanilla", "+R", "+WR", "+WRT")


def test_table5_mlp_optimizations(bench_once, benchmark):
    rows = bench_once(benchmark, table5_mlp_optimizations, 64)
    print()
    print(
        format_table(
            ["BxS", "policy", *LADDER],
            [[row["batch"], row["policy"], *[row[step] for step in LADDER]] for row in rows],
            title="Table V(a): GPT-3 MLP, TileSync with optimizations (us)",
        )
    )
    row = rows[0]
    # Each added optimization must not hurt, and the full set must help.
    assert row["+WRT"] <= row["Vanilla"] + 1e-6
    assert row["+WR"] <= row["Vanilla"] + 1e-6


def test_table5_conv_optimizations(bench_once, benchmark):
    rows = bench_once(benchmark, table5_conv_optimizations, (64, 128, 256, 512), (1,))
    print()
    print(
        format_table(
            ["Channels", "Batch", "policy", *LADDER],
            [
                [row["channels"], row["batch"], row["policy"], *[row[step] for step in LADDER]]
                for row in rows
            ],
            title="Table V(b): ResNet Conv2D, Conv2DTileSync with optimizations (us)",
        )
    )
    for row in rows:
        assert row["+WRT"] <= row["Vanilla"] + 1e-6
