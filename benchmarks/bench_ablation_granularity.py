"""Ablation: synchronization granularity and the sources of cuSync's benefit.

Not a table in the paper, but DESIGN.md calls out two design choices worth
isolating on the simulator:

* **Granularity** — sweep the policy from the finest (TileSync) through
  RowSync to the coarsest useful granularity (BatchSync, one semaphore per
  batch entry).  The paper's claim is that the best granularity depends on
  the workload size; the coarsest policy should converge to StreamSync-like
  behaviour.
* **Block-duration variation** — rerun the MLP with the cost model's
  deterministic jitter disabled, isolating how much of the improvement comes
  from wave quantization alone versus staggered block completion.
"""

from repro.bench import format_percent, format_table
from repro.gpu.costmodel import CostModel
from repro.models import GptMlp

POLICIES = ("TileSync", "RowSync", "BatchSync")


def _sweep(batch_seq, cost_model=None):
    from repro.cusync.policies import BatchSync, RowSync, TileSync

    workload = GptMlp(batch_seq=batch_seq, cost_model=cost_model)
    baseline = workload.run_streamsync().total_time_us
    instances = {"TileSync": TileSync(), "RowSync": RowSync(), "BatchSync": BatchSync()}
    results = {"streamsync_us": baseline}
    for name, policy in instances.items():
        time_us = workload.run_cusync(policy=[policy, policy]).total_time_us
        results[name] = (baseline - time_us) / baseline
    return results


def test_granularity_ablation(bench_once, benchmark):
    rows = []
    results_by_size = {}
    for batch_seq in (256, 512, 1024):
        data = bench_once(benchmark, _sweep, batch_seq) if batch_seq == 512 else _sweep(batch_seq)
        results_by_size[batch_seq] = data
        rows.append(
            [batch_seq, f"{data['streamsync_us']:.0f}"]
            + [format_percent(data[name]) for name in POLICIES]
        )
    print()
    print(
        format_table(
            ["BxS", "StreamSync us", *POLICIES],
            rows,
            title="Ablation: GPT-3 MLP improvement vs synchronization granularity",
        )
    )
    for data in results_by_size.values():
        # Fine-grained policies must not lose to the coarsest granularity by
        # a meaningful margin anywhere.
        assert max(data["TileSync"], data["RowSync"]) >= data["BatchSync"] - 0.02


def test_jitter_ablation(bench_once, benchmark):
    jittered = _sweep(512)
    flat = bench_once(benchmark, _sweep, 512, CostModel(duration_jitter=0.0))
    print()
    print(
        format_table(
            ["configuration", "TileSync", "RowSync"],
            [
                ["with block-duration jitter", format_percent(jittered["TileSync"]), format_percent(jittered["RowSync"])],
                ["without jitter", format_percent(flat["TileSync"]), format_percent(flat["RowSync"])],
            ],
            title="Ablation: contribution of staggered block completion (BxS=512)",
        )
    )
    # Wave quantization alone must already explain most of the improvement.
    assert flat["RowSync"] > 0.10
