"""Section V-D: maximum overhead of cuSync's synchronization mechanism."""

from repro.bench import overhead_experiment


def test_max_overhead(bench_once, benchmark):
    result = bench_once(benchmark, overhead_experiment)
    print()
    print(
        "Section V-D worst-case overhead: "
        f"{result['blocks_per_kernel']:.0f} blocks/kernel (occupancy {result['occupancy']:.0f}), "
        f"StreamSync {result['streamsync_us']:.1f} us, cuSync {result['cusync_us']:.1f} us, "
        f"overhead {result['overhead'] * 100:.2f}%"
    )
    # The paper measures 2-3% overhead; assert the reproduction stays in a
    # low single-digit band (cuSync may even win slightly on the simulator
    # because it hides the kernel dispatch gap).
    assert abs(result["overhead"]) < 0.06
