"""Overload serving benchmark: admission control and preemption under 2x load.

Runs one seeded mixed-priority :class:`~repro.serving.ServingScenario`
at roughly twice the system's service capacity, in four cells —
``{none, priority} x {streamsync, cusync}`` — where ``none`` is the
legacy queue-forever discipline and ``priority`` is the full admission
stack (bounded queue, deadline shedding, priority preemption).  The
serving loop is bit-deterministic for its seed, so every latency/shed
number in the record is exact — only the wall time varies between
machines.  The record also carries ``replay_identical``: the cusync
priority cell is run twice in fresh sessions and the reports compared
``==``, pinning the overload determinism contract inside the benchmark
itself.

The two headline numbers:

* ``cusync_goodput_advantage`` — cusync's SLO-goodput over streamsync's
  under the priority policy.  Queueing amplifies per-iteration latency
  differences, so overload is where tile-level sync pays the most.
* ``p99_bound_improvement`` — per scheme, how much the priority policy
  shrinks p99 vs queue-forever (full runs only; smoke drops the ``none``
  cells).

``BENCH_serving_overload.json`` in the repository root is the
**committed baseline**.  A plain run refreshes it (do this
deliberately); ``--check-baseline`` writes the fresh record to
``BENCH_serving_overload.latest.json`` and gates it against the
committed baseline: wall time within the suite's 2x tolerance, every
deterministic metric matched exactly.  ``--smoke`` keeps the *same*
scenario and drops only the ``none`` cells, so the per-cell exact gates
stay valid and ``--smoke --check-baseline`` still verifies determinism
in CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving_overload.py [--smoke] [--check-baseline]

or through pytest (``pytest benchmarks/bench_serving_overload.py``).

JSON schema (see also benchmarks/README.md):

* ``requests`` / ``rate_rps`` / ``seed`` / ``slo_us`` — the scenario;
* ``cells`` — ``{"policy/scheme": LatencyReport.summary()}``: exact
  percentiles, goodput, ``shed`` / ``preemptions`` /
  ``restarted_tokens`` / ``kv_reserved_peak`` / ``deadline_hits`` and
  per-priority-class stats;
* ``cusync_goodput_advantage`` — the headline number;
* ``replay_identical`` — the determinism pin (must be true);
* ``elapsed_s`` — wall time of all cells (the gated quantity).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.bench import format_table

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serving_overload.json",
)
#: Non-destructive output used by the pytest path and ``--check-baseline``.
LATEST_OUTPUT = DEFAULT_OUTPUT.replace(".json", ".latest.json")

#: Tolerated wall-clock slowdown vs the committed baseline.
BASELINE_TOLERANCE = 2.0

#: The seeded overload scenario: ~2x the measured service capacity of the
#: tiny reference config, mixed priorities (half best-effort), finite
#: deadlines.  Changing any of these is a baseline refresh.
REQUESTS = 48
RATE_RPS = 10_000.0
SEED = 7
SLO_US = 6_000.0
MAX_KV_TOKENS = 1024
MAX_QUEUE = 6

#: Per-cell metrics that are exact for a fixed scenario and must match
#: the committed baseline bit for bit.
EXACT_METRICS = (
    "p50_total_us",
    "p99_total_us",
    "goodput_rps",
    "iterations",
    "completed",
    "shed",
    "preemptions",
    "restarted_tokens",
    "kv_reserved_peak",
    "deadline_hits",
)


def _scenario(shed: bool):
    from dataclasses import replace

    from repro.models.config import TransformerConfig
    from repro.serving import PoissonArrivals, ServingScenario

    config = TransformerConfig(
        name="srv-tiny", hidden=256, layers=2, tensor_parallel=8
    )
    scenario = ServingScenario(
        arrivals=PoissonArrivals(
            rate_rps=RATE_RPS,
            prompt_tokens=(16, 96),
            decode_tokens=(2, 8),
            seed=SEED,
            deadline_slack_us=(3_000.0, 12_000.0),
            priorities=(0, 0, 1, 2),
        ),
        requests=REQUESTS,
        config=config,
        max_batch=4,
        max_kv_tokens=MAX_KV_TOKENS,
        max_prefill_tokens=128,
        slo_us=SLO_US,
        # Watchdogs sized far above the workload: they must never trip
        # here, but a runaway regression fails structurally, not by hang.
        max_iterations=100_000,
        max_sim_time_us=1e9,
    )
    if shed:
        scenario = replace(
            scenario, shed_policy="priority", max_queue=MAX_QUEUE, preemption=True
        )
    return scenario


def run_experiment(smoke: bool = False) -> Dict[str, object]:
    from repro.pipeline import Session
    from repro.serving import ServingSimulator

    policies = ("priority",) if smoke else ("none", "priority")
    start = time.perf_counter()
    cells: Dict[str, object] = {}
    for policy in policies:
        for scheme in ("streamsync", "cusync"):
            report = ServingSimulator(scheme=scheme, session=Session()).run(
                _scenario(shed=policy == "priority")
            )
            cells[f"{policy}/{scheme}"] = report.summary()
    # Determinism pin: the headline cell replays bit-identically.
    replay = [
        ServingSimulator(scheme="cusync", session=Session()).run(
            _scenario(shed=True)
        )
        for _ in range(2)
    ]
    elapsed = time.perf_counter() - start
    streamsync_goodput = cells["priority/streamsync"]["goodput_rps"]
    cusync_goodput = cells["priority/cusync"]["goodput_rps"]
    record: Dict[str, object] = {
        "elapsed_s": elapsed,
        "requests": REQUESTS,
        "rate_rps": RATE_RPS,
        "seed": SEED,
        "slo_us": SLO_US,
        "max_kv_tokens": MAX_KV_TOKENS,
        "max_queue": MAX_QUEUE,
        "smoke": smoke,
        "cells": cells,
        "cusync_goodput_advantage": cusync_goodput / streamsync_goodput - 1.0,
        "replay_identical": replay[0] == replay[1],
    }
    if not smoke:
        record["p99_bound_improvement"] = {
            scheme: 1.0
            - cells[f"priority/{scheme}"]["p99_total_us"]
            / cells[f"none/{scheme}"]["p99_total_us"]
            for scheme in ("streamsync", "cusync")
        }
    return record


def write_record(record: Dict[str, object], output_path: str = "") -> None:
    path = output_path or os.environ.get("BENCH_SERVING_OVERLOAD_OUT", DEFAULT_OUTPUT)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare_against_baseline(
    record: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Failures of ``record`` against the committed baseline (empty = pass)."""
    failures: List[str] = []
    ceiling = baseline["elapsed_s"] * tolerance
    if record["elapsed_s"] > ceiling:
        failures.append(
            f"elapsed_s {record['elapsed_s']:.3f} exceeded {ceiling:.3f} "
            f"(baseline {baseline['elapsed_s']:.3f} * {tolerance}x tolerance)"
        )
    if not record["replay_identical"]:
        failures.append("replay_identical is false (determinism broken)")
    for cell, fresh in record["cells"].items():
        committed = baseline["cells"].get(cell)
        if committed is None:
            continue
        for metric in EXACT_METRICS:
            if fresh[metric] != committed[metric]:
                failures.append(
                    f"{cell}.{metric} {fresh[metric]} != committed "
                    f"{committed[metric]} (deterministic; investigate)"
                )
    return failures


def _print(record: Dict[str, object]) -> None:
    rows = []
    for cell, summary in record["cells"].items():
        rows.append(
            [
                cell,
                f"{summary['p99_total_us']:.0f}",
                f"{summary['goodput_rps']:.1f}",
                f"{summary['completed']}",
                f"{summary['shed']}",
                f"{summary['preemptions']}",
                f"{summary['deadline_hits']}",
            ]
        )
    print()
    print(
        format_table(
            ["cell", "p99 us", "goodput r/s", "done", "shed", "preempt", "dl hits"],
            rows,
            title=(
                f"Overload: {record['requests']} reqs @ {record['rate_rps']:.0f} r/s, "
                f"cusync goodput +{record['cusync_goodput_advantage']:.1%} "
                f"({record['elapsed_s']:.2f}s)"
            ),
        )
    )


def _check(record: Dict[str, object]) -> None:
    """Subsystem-shape sanity, independent of any baseline."""
    assert record["replay_identical"], "overload run must replay bit-identically"
    for cell, summary in record["cells"].items():
        policy, _scheme = cell.split("/")
        # Every request resolves terminally; KV never exceeds the budget.
        assert summary["completed"] + summary["shed"] == record["requests"], (
            cell,
            summary,
        )
        assert summary["kv_reserved_peak"] <= record["max_kv_tokens"], (cell, summary)
        if policy == "none":
            assert summary["shed"] == 0 and summary["preemptions"] == 0, cell
        else:
            # 2x overload with a bounded queue must actually shed and
            # preempt; the top class is always fully served and shedding
            # concentrates monotonically on the lower classes.
            assert summary["shed"] > 0 and summary["preemptions"] > 0, cell
            classes = {c["priority"]: c for c in summary["priority_classes"]}
            assert classes[2]["shed"] == 0, cell
            assert classes[0]["shed"] >= classes[1]["shed"] >= classes[2]["shed"], cell
    # Under cusync the faster iterations protect the whole priority
    # ladder: only the best-effort class is ever shed.
    cusync_classes = {
        c["priority"]: c
        for c in record["cells"]["priority/cusync"]["priority_classes"]
    }
    assert cusync_classes[1]["shed"] == 0 and cusync_classes[2]["shed"] == 0
    # The acceptance property: tile-level sync wins under overload.
    for policy in {cell.split("/")[0] for cell in record["cells"]}:
        assert (
            record["cells"][f"{policy}/cusync"]["goodput_rps"]
            >= record["cells"][f"{policy}/streamsync"]["goodput_rps"]
        ), policy
    assert record["cusync_goodput_advantage"] >= 0.0
    for improvement in record.get("p99_bound_improvement", {}).values():
        assert improvement > 0.0  # shedding bounds the tail for every scheme


def test_serving_overload(bench_once, benchmark):
    record = bench_once(benchmark, run_experiment, smoke=True)
    write_record(record, output_path=LATEST_OUTPUT)
    _print(record)
    _check(record)


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    check = "--check-baseline" in argv
    baseline = None
    if check:
        with open(DEFAULT_OUTPUT) as handle:
            baseline = json.load(handle)
    record = run_experiment(smoke=smoke)
    _print(record)
    _check(record)
    # A plain full run refreshes the committed baseline; smoke and gated
    # runs record next to it (the baseline stays authoritative).
    write_record(record, output_path=LATEST_OUTPUT if (check or smoke) else "")
    if baseline is not None:
        failures = compare_against_baseline(record, baseline)
        if smoke:
            print("note: --check-baseline with --smoke gates determinism only, not wall time")
            failures = [f for f in failures if not f.startswith("elapsed_s")]
        if failures:
            print("overload regression vs committed BENCH_serving_overload.json:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"baseline gate ok: {record['elapsed_s']:.2f}s vs committed "
            f"{baseline['elapsed_s']:.2f}s (tolerance {BASELINE_TOLERANCE}x)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
