"""Chaos sweep smoke: recovery cost and correctness under injected faults.

Runs one sweep grid twice — fault-free, then under a seeded
:class:`~repro.testing.faults.FaultPlan` that faults a large share of the
points (worker crashes, evaluation errors, corrupted result payloads, and
a deliberately unrecoverable point) with ``on_error="collect"`` and
``retries=2`` — and checks the acceptance invariant: every point comes
back either bit-identical to the fault-free sweep or as a structured
``SweepFailure``, and no failed point leaks into the sweep-result cache.

The wall-clock ratio between the two sweeps is reported as the price of
recovery (retries, backoff and — in process mode — pool respawns).

Run standalone (``--smoke`` shrinks the grid and forces serial mode so
sandboxes without worker processes still exercise the full recovery
path)::

    PYTHONPATH=src python benchmarks/bench_chaos_sweep.py [--smoke]
"""

import math
import sys
import time

from repro.models import GptMlp, TransformerConfig
from repro.pipeline import Session, SweepFailure, SweepResult
from repro.testing import FaultPlan, FaultSpec, inject_faults

POLICIES = ("TileSync", "RowSync", "StridedTileSync")


def _grid(smoke):
    config = TransformerConfig(
        name="chaos", hidden=256 if smoke else 1024, layers=2, tensor_parallel=8
    )
    graph = GptMlp(config=config, batch_seq=96 if smoke else 512).to_graph()
    arches = ("V100",) if smoke else ("V100", "A100")
    return graph, arches


def _plan(num_points):
    seeded = FaultPlan.seeded(
        num_points, seed=6, crash=0.15, error=0.2, corrupt_result=0.15
    )
    unrecoverable = next(
        point for point in range(num_points) if point not in seeded.fault_points
    )
    plan = FaultPlan(
        list(seeded.faults)
        + [FaultSpec(kind="error", point=unrecoverable, attempts=(0, 1, 2))],
        seed=6,
    )
    return plan, unrecoverable


def chaos_sweep(smoke=False, mode=None):
    graph, arches = _grid(smoke)
    mode = mode or ("serial" if smoke else "process")
    num_points = len(POLICIES) * len(arches)
    plan, unrecoverable = _plan(num_points)

    session = Session()
    started = time.perf_counter()
    baseline = session.sweep(
        graph, policies=POLICIES, arches=arches, mode=mode, cache=False
    )
    clean_s = time.perf_counter() - started

    started = time.perf_counter()
    with inject_faults(plan):
        chaotic = session.sweep(
            graph,
            policies=POLICIES,
            arches=arches,
            mode=mode,
            on_error="collect",
            retries=2,
        )
    chaos_s = time.perf_counter() - started

    recovered = failed = 0
    for position, (result, reference) in enumerate(zip(chaotic, baseline)):
        if isinstance(result, SweepFailure):
            failed += 1
            assert position == unrecoverable, (
                f"point {position} failed but only {unrecoverable} was unrecoverable: "
                + result.describe()
            )
            continue
        assert isinstance(result, SweepResult)
        assert result.total_time_us == reference.total_time_us, (
            f"point {position} not bit-identical after recovery"
        )
        assert result.kernel_durations_us == reference.kernel_durations_us
        recovered += 1
    assert failed == 1
    assert session.sweep_cache_size == num_points - 1, "failed point was cached"
    for cached in session._sweep_cache.values():
        assert math.isfinite(cached.total_time_us), "poisoned cache entry"

    return {
        "mode": mode,
        "points": num_points,
        "faulted_points": len(plan.fault_points),
        "fault_fraction": plan.fault_fraction(num_points),
        "recovered": recovered,
        "structured_failures": failed,
        "clean_sweep_s": clean_s,
        "chaos_sweep_s": chaos_s,
        "recovery_overhead_x": chaos_s / clean_s if clean_s > 0 else float("inf"),
    }


def main(argv):
    smoke = "--smoke" in argv
    stats = chaos_sweep(smoke=smoke)
    print("chaos sweep smoke" if smoke else "chaos sweep")
    for key, value in stats.items():
        if isinstance(value, float):
            print(f"  {key:>20}: {value:.3f}")
        else:
            print(f"  {key:>20}: {value}")
    print(
        f"  invariant held: {stats['recovered']}/{stats['points'] - 1} points "
        "bit-identical, 1 structured failure, 0 poisoned cache entries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
