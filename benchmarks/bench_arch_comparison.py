"""Cross-architecture comparison benchmark: the Figure 6/7/8 story per GPU.

Sweeps the five model workloads over the registered architecture axis
(V100, A100, H100-SXM, RTX-4090 by default) in one multi-graph
``Session.sweep`` call and records the improvement of the best cuSync
policy over StreamSync per (workload, architecture), plus a Figure 8-style
end-to-end estimate per architecture.

``BENCH_arch_comparison.json`` in the repository root is the **committed
baseline**.  A plain run refreshes it (do this deliberately);
``--check-baseline`` instead writes ``BENCH_arch_comparison.latest.json``
and gates the fresh numbers against the committed baseline with the same
2x wall-clock tolerance scheme as the simulator-throughput gate, also
requiring the (workload, arch, policy) row set to match.  ``--smoke``
shrinks the grid to two architectures and the smallest shapes for CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_arch_comparison.py [--smoke] [--check-baseline]

or through pytest (``pytest benchmarks/bench_arch_comparison.py``).

JSON schema (see also benchmarks/README.md):

* ``arches`` — the architecture axis the rows cover, in sweep order;
* ``elapsed_s`` — wall time of the full experiment (the gated quantity);
* ``tuned`` — MLP tile configs resolved per arch from the committed
  ``TUNED_CONFIGS.json`` (see ``docs/autotune.md``);
* ``rows`` — one entry per (workload, arch, policy):
  ``{workload, arch, policy, total_time_us, wait_time_us, improvement,
  best}`` where ``improvement`` is the fractional reduction vs the same
  (workload, arch)'s StreamSync baseline and ``best`` flags the winning
  cuSync policy of the group.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.bench import arch_comparison, format_percent, format_table

DEFAULT_ARCHES = ("V100", "A100", "H100-SXM", "RTX-4090")
SMOKE_ARCHES = ("V100", "A100")

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_arch_comparison.json"
)
#: Non-destructive output used by the pytest path and ``--check-baseline``.
LATEST_OUTPUT = DEFAULT_OUTPUT.replace(".json", ".latest.json")

#: Tolerated wall-clock slowdown vs the committed baseline (CI runners
#: differ from the machine that recorded it; only step-function
#: regressions should fail).  Matches bench_sim_throughput.py.
BASELINE_TOLERANCE = 2.0


def run_experiment(smoke: bool = False) -> Dict[str, object]:
    from repro.gpu import resolve_arch

    arches = SMOKE_ARCHES if smoke else DEFAULT_ARCHES
    kwargs = dict(batch_seq=128, seq=128, conv_channels=64) if smoke else {}
    cache_stats: Dict[str, object] = {}
    start = time.perf_counter()
    # tuned=True: MLP tile configs resolve per arch from the committed
    # TUNED_CONFIGS.json (V100 keeps the paper's Table-IV grids).  The
    # smoke shapes have no tuned entries and fall back to the defaults.
    rows = arch_comparison(arches=arches, cache_stats=cache_stats, tuned=True, **kwargs)
    elapsed = time.perf_counter() - start
    # ``elapsed_s`` covers the full experiment including the cached replay
    # of the grid (arch_comparison re-sweeps the same work list to measure
    # the sweep cache); ``sweep_cache.replay_s`` isolates the replay share,
    # which cache hits keep a small fraction of the fresh sweep.
    # Record the *resolved* names so the list joins against the rows'
    # "arch" field (the registry key "V100" resolves to "Tesla V100").
    return {
        "arches": [resolve_arch(arch).name for arch in arches],
        "elapsed_s": elapsed,
        "tuned": True,
        "sweep_cache": cache_stats,
        "rows": rows,
    }


def write_record(record: Dict[str, object], output_path: str = "") -> None:
    path = output_path or os.environ.get("BENCH_ARCH_COMPARISON_OUT", DEFAULT_OUTPUT)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare_against_baseline(
    record: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Failures of ``record`` against the committed baseline (empty = pass)."""
    failures: List[str] = []
    ceiling = baseline["elapsed_s"] * tolerance
    if record["elapsed_s"] > ceiling:
        failures.append(
            f"elapsed_s {record['elapsed_s']:.3f} exceeded {ceiling:.3f} "
            f"(baseline {baseline['elapsed_s']:.3f} * {tolerance}x tolerance)"
        )

    def triples(payload: Dict[str, object]) -> set:
        return {(row["workload"], row["arch"], row["policy"]) for row in payload["rows"]}

    missing = triples(baseline) - triples(record)
    if missing:
        failures.append(
            f"rows missing vs committed baseline: {sorted(missing)[:5]}"
            + ("..." if len(missing) > 5 else "")
        )
    extra = triples(record) - triples(baseline)
    if extra:
        failures.append(
            f"rows not in committed baseline (regenerate it deliberately): "
            f"{sorted(extra)[:5]}" + ("..." if len(extra) > 5 else "")
        )

    baseline_cache = baseline.get("sweep_cache") or {}
    record_cache = record.get("sweep_cache") or {}
    if "hit_rate" in baseline_cache:
        floor = baseline_cache["hit_rate"] / tolerance
        if record_cache.get("hit_rate", 0.0) < floor:
            failures.append(
                f"sweep_cache hit_rate {record_cache.get('hit_rate', 0.0):.3f} fell below "
                f"{floor:.3f} (baseline {baseline_cache['hit_rate']:.3f} / {tolerance}x tolerance)"
            )
    return failures


def _print(record: Dict[str, object]) -> None:
    rows = record["rows"]
    print()
    print(
        format_table(
            ["workload", "arch", "policy", "time (us)", "vs streamsync", "best"],
            [
                [
                    row["workload"],
                    row["arch"],
                    row["policy"],
                    row["total_time_us"],
                    format_percent(row["improvement"]),
                    "*" if row["best"] else "",
                ]
                for row in rows
                if row["policy"] != "streamsync"
            ],
            title=f"Arch comparison over {', '.join(record['arches'])} "
            f"({record['elapsed_s']:.2f}s)",
        )
    )


def _check(record: Dict[str, object]) -> None:
    """Paper-shape sanity: every (workload, arch) group has a flagged best
    point, and the conv chains improve on every architecture (their
    dependence structure is what cuSync was built for)."""
    rows = record["rows"]
    groups = {(row["workload"], row["arch"]) for row in rows if row["policy"] != "streamsync"}
    flagged = {(row["workload"], row["arch"]) for row in rows if row["best"]}
    assert groups <= flagged, f"groups without a best flag: {sorted(groups - flagged)[:5]}"
    for row in rows:
        if row["workload"].startswith("conv_chain") and row["best"]:
            assert row["improvement"] > 0.0, (
                f"conv chain did not improve on {row['arch']}: {row['improvement']:.4f}"
            )
    cache = record.get("sweep_cache") or {}
    if cache:
        assert cache["replay_identical"], "cached replay diverged from the fresh sweep"
        assert cache["hit_rate"] >= 0.5, f"replaying the grid should hit: {cache}"
        # The whole point of the cache: replaying the grid must be a clear
        # wall-clock win over simulating it fresh.
        fresh_s = record["elapsed_s"] - cache["replay_s"]
        assert cache["replay_s"] < fresh_s / 2, (
            f"cached replay ({cache['replay_s']:.3f}s) is not a wall-clock win "
            f"over the fresh sweep (~{fresh_s:.3f}s)"
        )


def test_arch_comparison(bench_once, benchmark):
    record = bench_once(benchmark, run_experiment, smoke=True)
    write_record(record, output_path=LATEST_OUTPUT)
    _print(record)
    _check(record)


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    check = "--check-baseline" in argv
    baseline = None
    if check:
        with open(DEFAULT_OUTPUT) as handle:
            baseline = json.load(handle)
    record = run_experiment(smoke=smoke)
    _print(record)
    _check(record)
    # A plain full run refreshes the committed baseline; smoke and gated
    # runs record next to it (the baseline stays authoritative).
    write_record(record, output_path=LATEST_OUTPUT if (check or smoke) else "")
    if baseline is not None:
        if smoke:
            print("note: --check-baseline gates the full grid; --smoke compares wall time only")
            failures = [
                failure
                for failure in compare_against_baseline(record, baseline)
                if failure.startswith("elapsed_s")
            ]
        else:
            failures = compare_against_baseline(record, baseline)
        if failures:
            print("arch-comparison regression vs committed BENCH_arch_comparison.json:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"baseline gate ok: {record['elapsed_s']:.2f}s vs committed "
            f"{baseline['elapsed_s']:.2f}s (tolerance {BASELINE_TOLERANCE}x)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
