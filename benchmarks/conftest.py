"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's
evaluation.  The simulated workloads are deterministic, so a single
benchmark round is representative; the pytest-benchmark fixture is used in
``pedantic`` mode to time one full regeneration of each artifact while the
printed table records the paper-shape result itself.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Time ``function`` once through pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def bench_once():
    return run_once
