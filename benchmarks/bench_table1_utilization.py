"""Table I: thread blocks, waves and GPU utilization of GPT-3's MLP GeMMs."""

from repro.bench import format_table, table1_utilization


def test_table1_utilization(bench_once, benchmark):
    rows = bench_once(benchmark, table1_utilization, (256, 512, 1024))
    print()
    print(
        format_table(
            ["BxS", "GeMM", "grid", "TBs", "TBs/wave", "waves", "utilization"],
            [
                [
                    row["batch"],
                    row["gemm"],
                    row["grid"],
                    row["thread_blocks"],
                    row["blocks_per_wave"],
                    row["waves"],
                    f"{row['utilization'] * 100:.0f}%",
                ]
                for row in rows
            ],
            title="Table I: GPT-3 MLP GeMMs on Tesla V100 (80 SMs)",
        )
    )
    # The paper's qualitative claims: every configuration leaves the final
    # wave under-utilized (utilization < 100%), and utilization rises with
    # the batch size from 256/512 to 1024.
    assert all(row["utilization"] < 1.0 for row in rows)
    batch_util = {row["batch"]: row["utilization"] for row in rows if row["gemm"] == "Producer"}
    assert batch_util[1024] >= batch_util[256]
