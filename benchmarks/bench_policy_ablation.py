"""Policy-space ablation: uniform families vs mixed per-edge assignments.

Exercises the first-class policy API end to end — ``PolicySpec`` grids via
``sweep_policies``, hand-built ``PolicyAssignment`` mixes, and one
multi-graph ``Session.sweep(mode="thread")`` call over all five model
workloads (GPT-3 MLP, LLaMA MLP, GPT-3 attention, ResNet-38 and VGG-19
conv chains).

Run standalone (``--smoke`` shrinks the problem sizes for CI)::

    PYTHONPATH=src python benchmarks/bench_policy_ablation.py [--smoke]

or through pytest (``pytest benchmarks/bench_policy_ablation.py``).
"""

import sys

from repro.bench import format_percent, format_table, policy_ablation


def _print(rows, title):
    print()
    print(
        format_table(
            ["workload", "policy", "mixed", "time (us)", "wait (us)", "vs streamsync"],
            [
                [
                    row["workload"],
                    row["policy"],
                    "yes" if row["mixed"] else "",
                    row["total_time_us"],
                    row["wait_time_us"],
                    format_percent(row["improvement"]),
                ]
                for row in rows
            ],
            title=title,
        )
    )


def _check(rows):
    """Paper-shape sanity: five workloads; the MLP and conv chains improve
    under some cusync policy, attention stays within the small-overhead
    band (its gains are size-dependent, Figure 6), and every mixed
    assignment ran to completion."""
    workloads = {row["workload"] for row in rows}
    assert len(workloads) == 5, f"expected 5 workloads, got {sorted(workloads)}"
    for workload in workloads:
        best = max(
            row["improvement"] for row in rows
            if row["workload"] == workload and row["policy"] != "streamsync"
        )
        if workload.startswith("attn"):
            assert best > -0.02, f"attention overhead out of band: {best:.4f}"
        else:
            assert best > 0.0, f"no cusync policy improved {workload}"
    assert any(row["mixed"] for row in rows), "no mixed-assignment points ran"


def test_policy_ablation(bench_once, benchmark):
    rows = bench_once(benchmark, policy_ablation)
    _print(rows, "Policy ablation: TileSync / RowSync / StridedSync / mixed per-edge")
    _check(rows)


def main(argv):
    smoke = "--smoke" in argv
    kwargs = dict(batch_seq=256, seq=256) if smoke else {}
    rows = policy_ablation(**kwargs)
    _print(rows, "Policy ablation: TileSync / RowSync / StridedSync / mixed per-edge")
    _check(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
