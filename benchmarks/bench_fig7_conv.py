"""Figure 7: Conv2D-chain improvement over StreamSync (ResNet-38 / VGG-19)."""

from repro.bench import figure7_conv, format_percent, format_table


def _print(rows, title):
    print()
    print(
        format_table(
            ["model", "channels", "batch", "convs", "RowSync", "Conv2DTileSync", "best"],
            [
                [
                    row["model"],
                    row["channels"],
                    row["batch"],
                    row["convs"],
                    format_percent(row["RowSync"]),
                    format_percent(row["Conv2DTileSync"]),
                    format_percent(row["best"]),
                ]
                for row in rows
            ],
            title=title,
        )
    )


def test_fig7ab_resnet(bench_once, benchmark):
    rows = bench_once(benchmark, figure7_conv, "resnet", (64, 128, 256, 512), (1, 4, 16))
    _print(rows, "Figure 7(a,b): ResNet-38 Conv2D layers, improvement over StreamSync")
    # Paper shape: every layer shape shows a positive best improvement,
    # within the 0-30% band the paper reports.
    assert all(row["best"] > 0.0 for row in rows)
    assert all(row["best"] < 0.40 for row in rows)


def test_fig7c_vgg(bench_once, benchmark):
    rows = bench_once(benchmark, figure7_conv, "vgg", (256, 512), (1, 8))
    _print(rows, "Figure 7(c): VGG-19 Conv2D layers (4 convs), improvement over StreamSync")
    assert all(row["best"] > 0.0 for row in rows)
