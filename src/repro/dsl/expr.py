"""Affine expressions over grid dimensions.

The DSL describes which producer tiles a consumer tile needs with affine
functions of the consumer's tile coordinates, e.g. ``x + H/(8*TileN)`` for
the strided attention dependence of Figure 5b.  :class:`AffineExpr`
represents ``scale * dim + offset`` (single-variable affine forms are all
the paper's dependences need) and supports the arithmetic used when writing
dependences: ``x + 3``, ``2 * y``, ``x // 9``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import count
from typing import Union

from repro.errors import DslError

_dim_ids = count()


@dataclass(frozen=True)
class Dim:
    """A named grid dimension variable (the paper's ``Dim x, y``)."""

    name: str
    dim_id: int = field(default_factory=lambda: next(_dim_ids))

    # Arithmetic produces affine expressions over this dimension.
    def __add__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) + other

    def __radd__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) + other

    def __sub__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) - other

    def __mul__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) * other

    def __rmul__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) * other

    def __floordiv__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) // other

    def __truediv__(self, other: int) -> "AffineExpr":
        return AffineExpr(self) / other

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AffineExpr:
    """``scale * dim + offset`` with rational scale and integer offset.

    ``floor`` marks expressions produced with ``//`` whose evaluation floors
    the scaled value (the ``x / (R*S)`` mapping of the Conv2D dependence).
    """

    dim: Dim
    scale: Fraction = Fraction(1)
    offset: int = 0
    floor: bool = False

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: int) -> "AffineExpr":
        if not isinstance(other, int):
            raise DslError(f"can only add integers to affine expressions, got {other!r}")
        return AffineExpr(self.dim, self.scale, self.offset + other, self.floor)

    __radd__ = __add__

    def __sub__(self, other: int) -> "AffineExpr":
        return self + (-other)

    def __mul__(self, other: int) -> "AffineExpr":
        if not isinstance(other, int):
            raise DslError(f"can only scale affine expressions by integers, got {other!r}")
        return AffineExpr(self.dim, self.scale * other, self.offset * other, self.floor)

    __rmul__ = __mul__

    def __floordiv__(self, other: int) -> "AffineExpr":
        if not isinstance(other, int) or other <= 0:
            raise DslError(f"affine floor-division requires a positive integer, got {other!r}")
        if self.offset % other != 0 and self.offset != 0:
            raise DslError("cannot floor-divide an affine expression with a non-divisible offset")
        return AffineExpr(self.dim, self.scale / other, self.offset // other, True)

    def __truediv__(self, other: int) -> "AffineExpr":
        return self.__floordiv__(other)

    # ------------------------------------------------------------------
    def evaluate(self, value: int) -> int:
        """Evaluate the expression for a concrete tile coordinate."""
        scaled = self.scale * value
        if self.floor:
            result = scaled.numerator // scaled.denominator + self.offset
        else:
            if scaled.denominator != 1:
                raise DslError(
                    f"expression {self} does not evaluate to an integer at {value}"
                    " (use // for flooring division)"
                )
            result = int(scaled) + self.offset
        return result

    def __repr__(self) -> str:
        pieces = []
        if self.scale != 1:
            pieces.append(f"{self.scale}*{self.dim.name}")
        else:
            pieces.append(self.dim.name)
        if self.offset:
            pieces.append(f"+ {self.offset}" if self.offset > 0 else f"- {-self.offset}")
        return " ".join(pieces)


#: Anything accepted where an affine index expression is expected.
AffineLike = Union[Dim, AffineExpr, int]


def affine(value: AffineLike, default_dim: Dim) -> AffineExpr:
    """Coerce a DSL index (Dim, expression or constant) to an AffineExpr."""
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, Dim):
        return AffineExpr(value)
    if isinstance(value, int):
        return AffineExpr(default_dim, Fraction(0), value)
    raise DslError(f"cannot interpret {value!r} as a tile index expression")
