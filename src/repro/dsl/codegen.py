"""Policy and tile-order generation (the back end of cuSyncGen).

For every dependence, cuSyncGen generates one policy per granularity choice
in each dimension: map each referenced producer tile to its own semaphore
(TileSync-like) or map the whole group to one semaphore (RowSync /
StridedSync-like), plus the tile processing order that schedules the
producer tiles one consumer tile needs consecutively (Section IV-A).  The
generated artifacts here are executable objects from :mod:`repro.cusync`
that can be plugged straight into a :class:`~repro.cusync.handle.CuSyncPipeline`;
their CUDA-source counterparts are produced by :mod:`repro.dsl.cuda_codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CodegenError
from repro.cusync.policies import (
    Conv2DTileSync,
    RowSync,
    StridedSync,
    SyncPolicy,
    TileSync,
)
from repro.cusync.tile_orders import GroupedColumnsOrder, RowMajorOrder, TileOrder
from repro.dsl.analysis import NormalizedDependence, analyze_dependence
from repro.dsl.dep import Dep


@dataclass
class GeneratedPolicies:
    """Everything cuSyncGen produces for one dependence."""

    dependence: NormalizedDependence
    #: Candidate policies keyed by their paper-style name.
    policies: Dict[str, SyncPolicy] = field(default_factory=dict)
    #: The wait-minimizing producer tile order.
    producer_order: TileOrder = field(default_factory=RowMajorOrder)
    #: The consumer tile order (always row-major in the paper).
    consumer_order: TileOrder = field(default_factory=RowMajorOrder)

    @property
    def policy_names(self) -> List[str]:
        return list(self.policies.keys())

    def policy(self, name: str) -> SyncPolicy:
        try:
            return self.policies[name]
        except KeyError:
            raise CodegenError(
                f"policy {name!r} was not generated for this dependence; "
                f"available: {sorted(self.policies)}"
            ) from None


class CuSyncGen:
    """The policy / tile-order compiler."""

    def generate(self, dep: Dep, producer_index: int = 0) -> GeneratedPolicies:
        """Generate policies and orders for one producer side of a dependence."""
        normalized = analyze_dependence(dep, producer_index)
        return self.generate_from_normalized(normalized)

    def generate_from_normalized(self, normalized: NormalizedDependence) -> GeneratedPolicies:
        producer_grid = normalized.producer_grid
        policies: Dict[str, SyncPolicy] = {}

        # Case (i): one semaphore per referenced producer tile.
        if normalized.x_access.pattern == "scaled" or normalized.y_access.pattern == "scaled":
            policies["Conv2DTileSync"] = Conv2DTileSync()
        else:
            policies["TileSync"] = TileSync()

        # Case (ii): all referenced tiles share one semaphore.
        producer_order: TileOrder = RowMajorOrder()
        if normalized.x_access.pattern == "all":
            policies["RowSync"] = RowSync()
        elif normalized.x_access.pattern == "strided" and normalized.x_access.stride:
            stride = normalized.x_access.stride
            if producer_grid.x_size % stride == 0:
                policies["StridedSync"] = StridedSync(stride=stride)
                group = producer_grid.x_size // stride
                producer_order = GroupedColumnsOrder(group=group)

        # Validate every generated policy against the producer grid bounds.
        for policy in policies.values():
            policy.validate(producer_grid.shape)

        return GeneratedPolicies(
            dependence=normalized,
            policies=policies,
            producer_order=producer_order,
            consumer_order=RowMajorOrder(),
        )

    # ------------------------------------------------------------------
    def generate_all(self, dep: Dep) -> List[GeneratedPolicies]:
        """Generate artifacts for every producer side of a dependence."""
        return [self.generate(dep, index) for index in range(len(dep.producers))]
