"""Dependence declarations (the paper's ``Dep``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.errors import DslError
from repro.dsl.grid import ForAll, Grid, Tile


@dataclass(frozen=True)
class TileRef:
    """A (grid, tile-set) pair appearing on either side of a dependence."""

    grid: Grid
    tiles: Tuple[Union[Tile, ForAll], ...]

    @classmethod
    def of(cls, grid: Grid, *tiles: Union[Tile, ForAll]) -> "TileRef":
        if not tiles:
            raise DslError("a dependence side must reference at least one tile")
        return cls(grid=grid, tiles=tuple(tiles))


@dataclass(frozen=True)
class Dep:
    """``consumer tile  <-  one or more producer tiles``.

    Mirrors the paper's ``Dep dep({g2, cons}, {g1, prodCols})``: the first
    argument names the consumer grid and its tile pattern, the remaining
    arguments name producer grids with the tiles the consumer tile needs.
    """

    consumer: TileRef
    producers: Tuple[TileRef, ...]

    def __init__(self, consumer, *producers):
        consumer_ref = _coerce(consumer)
        if not producers:
            raise DslError("a dependence needs at least one producer side")
        producer_refs = tuple(_coerce(producer) for producer in producers)
        object.__setattr__(self, "consumer", consumer_ref)
        object.__setattr__(self, "producers", producer_refs)

    def __repr__(self) -> str:
        producer_names = ", ".join(ref.grid.label for ref in self.producers)
        return f"Dep({self.consumer.grid.label} <- {producer_names})"


def _coerce(side) -> TileRef:
    """Accept ``TileRef`` or ``(grid, tile, ...)`` tuples/lists."""
    if isinstance(side, TileRef):
        return side
    if isinstance(side, (tuple, list)):
        if not side or not isinstance(side[0], Grid):
            raise DslError(f"dependence side {side!r} must start with a Grid")
        grid = side[0]
        tiles = tuple(side[1:])
        if not tiles:
            raise DslError(f"dependence side for grid {grid.label} names no tiles")
        for tile in tiles:
            if not isinstance(tile, (Tile, ForAll)):
                raise DslError(f"dependence side contains {tile!r}, expected Tile or ForAll")
        return TileRef(grid=grid, tiles=tiles)
    raise DslError(f"cannot interpret {side!r} as a dependence side")
