"""A whole dependency program: several grids and the dependences between them.

This is the container the user fills in when describing an ML block in the
DSL (the code of the paper's Figure 5); it bundles the individual analyses
and code generation of every dependence and gives the examples and tests a
single entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import DslError
from repro.dsl.analysis import NormalizedDependence, analyze_dependence
from repro.dsl.codegen import CuSyncGen, GeneratedPolicies
from repro.dsl.dep import Dep
from repro.dsl.grid import Grid


@dataclass
class DependencyProgram:
    """Grids plus dependences, with cached analysis/codegen results."""

    name: str = "program"
    grids: List[Grid] = field(default_factory=list)
    deps: List[Dep] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_grid(self, grid: Grid) -> Grid:
        if grid not in self.grids:
            self.grids.append(grid)
        return grid

    def add_dep(self, dep: Dep) -> Dep:
        for side in (dep.consumer, *dep.producers):
            if side.grid not in self.grids:
                self.grids.append(side.grid)
        self.deps.append(dep)
        return dep

    # ------------------------------------------------------------------
    # Analysis / code generation over every dependence
    # ------------------------------------------------------------------
    def analyze(self) -> List[NormalizedDependence]:
        """Normalize (and bounds-check) every producer side of every dep."""
        if not self.deps:
            raise DslError(f"program '{self.name}' declares no dependences")
        normalized: List[NormalizedDependence] = []
        for dep in self.deps:
            for index in range(len(dep.producers)):
                normalized.append(analyze_dependence(dep, index))
        return normalized

    def generate(self) -> List[GeneratedPolicies]:
        """Run cuSyncGen over every producer side of every dependence."""
        generator = CuSyncGen()
        generated: List[GeneratedPolicies] = []
        for dep in self.deps:
            generated.extend(generator.generate_all(dep))
        return generated

    def policy_menu(self) -> Dict[str, int]:
        """How many dependences each generated policy family applies to."""
        menu: Dict[str, int] = {}
        for generated in self.generate():
            for name in generated.policy_names:
                menu[name] = menu.get(name, 0) + 1
        return menu
