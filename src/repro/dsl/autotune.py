"""Auto-tuning over generated policies (deprecation shim).

The last step of the paper's workflow is to run every generated policy
and keep the fastest (Section IV-A, "Running the Generated Code").  The
real subsystem now lives in :mod:`repro.tune` — search spaces over
``(tile, policy, arch)``, grid/random/successive-halving strategies and
the committed ``TUNED_CONFIGS.json`` artifact, all on top of
:meth:`Session.sweep <repro.pipeline.session.Session.sweep>` and its
cache tiers.

:class:`AutoTuner` is kept as a thin shim with the historical surface —
one workload, its own arch, a list of policy candidates — delegating to
a single-tile :class:`~repro.tune.space.SearchSpace` driven by
:class:`~repro.tune.tuner.Tuner`.  Policy candidates may be family
names, :class:`~repro.cusync.policies.PolicySpec` values or per-edge
:class:`~repro.cusync.policies.PolicyAssignment` values (the legacy
version accepted only family strings).

.. deprecated:: build a :class:`repro.tune.SearchSpace` and run
   :class:`repro.tune.Tuner` directly; see ``docs/autotune.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import TuningError
from repro.cusync.optimizations import OptimizationFlags
from repro.models.workload import Workload
from repro.pipeline.session import Session, SweepPoint, SweepPolicy


@dataclass
class TuningResult:
    """Outcome of auto-tuning one workload.

    ``times_us`` maps candidate labels (plus the ``"StreamSync"``
    baseline and optionally ``"StreamK"``) to simulated times;
    ``best_policy`` is the fastest *cuSync* candidate.  Quantities
    derived from unmeasured entries raise :class:`~repro.errors.TuningError`
    (a :class:`~repro.errors.ReproError`) instead of a bare ``KeyError``.
    """

    workload: str
    times_us: Dict[str, float] = field(default_factory=dict)
    best_policy: str = ""

    @property
    def best_time_us(self) -> float:
        if self.best_policy not in self.times_us:
            raise TuningError(
                f"tuning of {self.workload!r} recorded no time for best "
                f"policy {self.best_policy!r}"
            )
        return self.times_us[self.best_policy]

    @property
    def streamsync_time_us(self) -> float:
        if "StreamSync" not in self.times_us:
            raise TuningError(
                f"tuning of {self.workload!r} did not measure the "
                "StreamSync baseline"
            )
        return self.times_us["StreamSync"]

    @property
    def improvement(self) -> float:
        """Fractional improvement of the best policy over StreamSync."""
        baseline = self.streamsync_time_us
        return (baseline - self.best_time_us) / baseline if baseline > 0 else 0.0

    def summary(self) -> str:
        ordered = sorted(self.times_us.items(), key=lambda kv: kv[1])
        lines = [f"auto-tuning {self.workload}:"]
        for name, time_us in ordered:
            marker = " <= best" if name == self.best_policy else ""
            lines.append(f"  {name:24s} {time_us:10.1f} us{marker}")
        return "\n".join(lines)


class AutoTuner:
    """Runs every candidate policy of a workload and picks the fastest.

    .. deprecated:: thin shim over :mod:`repro.tune` (same results); new
       code should use :class:`repro.tune.Tuner` with a
       :class:`repro.tune.SearchSpace`, which also searches tile configs
       and architectures and exploits cached replay across runs.
    """

    def __init__(
        self,
        policies: Optional[Sequence[SweepPolicy]] = None,
        optimizations: Optional[OptimizationFlags] = None,
        include_streamk: bool = False,
    ) -> None:
        self.policies = (
            list(policies) if policies is not None else ["TileSync", "RowSync"]
        )
        self.optimizations = optimizations
        self.include_streamk = include_streamk

    def tune(self, workload: Workload) -> TuningResult:
        """Measure every candidate on the simulator and pick the winner."""
        from repro.tune.space import SearchSpace
        from repro.tune.tuner import Tuner

        if not self.policies:
            raise TuningError("AutoTuner needs at least one candidate policy")
        graph = workload.to_graph()
        space = SearchSpace(
            name=graph.name or workload.name,
            builder=lambda _configs: graph,
            policies=tuple(self.policies),
            arches=(workload.arch,),
            optimizations=self.optimizations,
        )
        tuner = Tuner(
            session=Session(arch=workload.arch, cost_model=workload.cost_model),
            mode="serial",
        )
        report = tuner.tune(space)

        times: Dict[str, float] = {}
        for trial in report.trials:
            label = "StreamSync" if trial.is_baseline else trial.policy
            times[label] = trial.time_us
        if self.include_streamk:
            times["StreamK"] = tuner.session.sweep_point(
                graph, SweepPoint(scheme="streamk", policy=None, arch=workload.arch)
            ).total_time_us
        best = report.best_for(workload.arch.name)
        return TuningResult(
            workload=workload.name, times_us=times, best_policy=best.policy
        )
