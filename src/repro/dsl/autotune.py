"""Auto-tuning over generated policies.

The last step of the paper's workflow is to run every generated policy and
keep the fastest (Section IV-A, "Running the Generated Code").  The paper's
users do this by hand; here the simulator makes it automatic: the tuner
runs a :class:`~repro.models.workload.Workload` under each candidate policy
family (plus the StreamSync baseline for reference) and reports the winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.cusync.optimizations import OptimizationFlags
from repro.models.workload import Workload


@dataclass
class TuningResult:
    """Outcome of auto-tuning one workload."""

    workload: str
    times_us: Dict[str, float] = field(default_factory=dict)
    best_policy: str = ""

    @property
    def best_time_us(self) -> float:
        return self.times_us[self.best_policy]

    @property
    def streamsync_time_us(self) -> float:
        return self.times_us["StreamSync"]

    @property
    def improvement(self) -> float:
        """Fractional improvement of the best policy over StreamSync."""
        baseline = self.streamsync_time_us
        return (baseline - self.best_time_us) / baseline if baseline > 0 else 0.0

    def summary(self) -> str:
        ordered = sorted(self.times_us.items(), key=lambda kv: kv[1])
        lines = [f"auto-tuning {self.workload}:"]
        for name, time_us in ordered:
            marker = " <= best" if name == self.best_policy else ""
            lines.append(f"  {name:24s} {time_us:10.1f} us{marker}")
        return "\n".join(lines)


class AutoTuner:
    """Runs every candidate policy of a workload and picks the fastest."""

    def __init__(
        self,
        policies: Optional[List[str]] = None,
        optimizations: Optional[OptimizationFlags] = None,
        include_streamk: bool = False,
    ) -> None:
        self.policies = policies if policies is not None else ["TileSync", "RowSync"]
        self.optimizations = optimizations
        self.include_streamk = include_streamk

    def tune(self, workload: Workload) -> TuningResult:
        """Measure every candidate on the simulator and pick the winner."""
        if not self.policies:
            raise ReproError("AutoTuner needs at least one candidate policy")
        times: Dict[str, float] = {}
        times["StreamSync"] = workload.run_streamsync().total_time_us
        if self.include_streamk:
            times["StreamK"] = workload.run_streamk().total_time_us
        for family in self.policies:
            times[family] = workload.run_cusync(
                policy=family, optimizations=self.optimizations
            ).total_time_us
        candidates = {name: t for name, t in times.items() if name not in ("StreamSync", "StreamK")}
        best = min(candidates, key=candidates.get)
        return TuningResult(workload=workload.name, times_us=times, best_policy=best)
