"""cuSyncGen: a DSL for kernel-tile dependencies and its compiler.

Section IV of the paper introduces a DSL (embedded in C++) in which the
user describes, per kernel, the grid of tiles and how consumer tiles depend
on producer tiles through affine expressions; ``cuSyncGen`` then

1. bounds-checks the dependences against the declared grids,
2. generates a tile processing order that minimizes consumer wait time,
3. generates multiple synchronization policies (per-tile and grouped), and
4. emits the CUDA code for the ``sem``/``value`` functions and the order.

This package reproduces that pipeline in Python.  The front end
(:mod:`repro.dsl.grid`, :mod:`repro.dsl.dep`) mirrors the paper's ``Dim`` /
``Grid`` / ``Tile`` / ``ForAll`` / ``Dep`` constructs; the analysis
(:mod:`repro.dsl.analysis`) normalizes dependences into per-dimension affine
terms and checks bounds; the code generator (:mod:`repro.dsl.codegen`)
produces executable policy / tile-order objects for :mod:`repro.cusync`
while :mod:`repro.dsl.cuda_codegen` emits the equivalent CUDA-like C source
text; and :mod:`repro.dsl.autotune` runs the generated variants on the
simulator to pick the fastest, replacing the manual experimentation the
paper automates.
"""

from repro.dsl.expr import Dim, AffineExpr, affine
from repro.dsl.grid import Grid, Tile, ForAll, Range
from repro.dsl.dep import Dep, TileRef
from repro.dsl.program import DependencyProgram
from repro.dsl.analysis import NormalizedDependence, DimensionAccess, analyze_dependence
from repro.dsl.codegen import GeneratedPolicies, CuSyncGen
from repro.dsl.cuda_codegen import emit_policy_source, emit_tile_order_source
from repro.dsl.autotune import AutoTuner, TuningResult

__all__ = [
    "Dim",
    "AffineExpr",
    "affine",
    "Grid",
    "Tile",
    "ForAll",
    "Range",
    "Dep",
    "TileRef",
    "DependencyProgram",
    "NormalizedDependence",
    "DimensionAccess",
    "analyze_dependence",
    "GeneratedPolicies",
    "CuSyncGen",
    "emit_policy_source",
    "emit_tile_order_source",
    "AutoTuner",
    "TuningResult",
]
