"""Grids, tiles and ranges — the nouns of the cuSyncGen DSL.

A :class:`Grid` declares the extent of a kernel's tile space in each named
dimension (the paper's ``Grid g1(x, y, H/(2*TileN), B*S/TileM)``).  A
:class:`Tile` is a point in that space given by affine expressions of the
dimension variables, and :class:`ForAll` expands one dimension of a tile
over a :class:`Range`, expressing "all column tiles of this row".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.dim3 import Dim3
from repro.errors import DslError
from repro.dsl.expr import AffineExpr, AffineLike, Dim, affine

_grid_ids = count()


@dataclass(frozen=True)
class Range:
    """A half-open integer range, default starting at zero."""

    stop: int
    start: int = 0

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise DslError(f"Range stop {self.stop} below start {self.start}")

    def __iter__(self):
        return iter(range(self.start, self.stop))

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class Grid:
    """The tile space of one kernel.

    ``dims`` associates each dimension variable with its extent (number of
    tiles along that dimension).  Dimensions not mentioned have extent 1.
    """

    x_dim: Dim
    y_dim: Dim
    x_size: int
    y_size: int
    z_size: int = 1
    name: Optional[str] = None
    grid_id: int = field(default_factory=lambda: next(_grid_ids))

    def __post_init__(self) -> None:
        if self.x_size <= 0 or self.y_size <= 0 or self.z_size <= 0:
            raise DslError(f"grid {self.label} has non-positive extent")

    @property
    def label(self) -> str:
        return self.name if self.name is not None else f"grid{self.grid_id}"

    @property
    def shape(self) -> Dim3:
        return Dim3(self.x_size, self.y_size, self.z_size)

    def extent_of(self, dim: Dim) -> int:
        """Extent of the grid along a dimension variable."""
        if dim == self.x_dim:
            return self.x_size
        if dim == self.y_dim:
            return self.y_size
        raise DslError(f"dimension {dim.name} is not part of grid {self.label}")

    def contains(self, x: int, y: int) -> bool:
        return 0 <= x < self.x_size and 0 <= y < self.y_size

    def __repr__(self) -> str:
        return f"Grid({self.label}, x={self.x_size}, y={self.y_size}, z={self.z_size})"


@dataclass(frozen=True)
class Tile:
    """A tile coordinate given by affine expressions in x and y."""

    x: AffineLike
    y: AffineLike

    def x_expr(self, x_dim: Dim) -> AffineExpr:
        return affine(self.x, x_dim)

    def y_expr(self, y_dim: Dim) -> AffineExpr:
        return affine(self.y, y_dim)

    def __repr__(self) -> str:
        return f"Tile({self.x!r}, {self.y!r})"


@dataclass(frozen=True)
class ForAll:
    """Expand one dimension of a tile over a range.

    ``ForAll(Tile(x, y), dim, Range(n))`` denotes the set of tiles obtained
    by substituting every value of the range for ``dim`` — the paper uses it
    to say "a consumer tile depends on *all* column tiles of a producer row"
    (Figure 5a).
    """

    tile: Tile
    dim: Dim
    range: Range

    def tiles(self, x_dim: Dim, y_dim: Dim) -> List[Tuple[AffineExpr, AffineExpr]]:
        """The expanded tile expressions, substituting constants for ``dim``."""
        expanded: List[Tuple[AffineExpr, AffineExpr]] = []
        for value in self.range:
            x_expr = self.tile.x_expr(x_dim)
            y_expr = self.tile.y_expr(y_dim)
            if self.dim == x_dim:
                x_expr = affine(int(value), x_dim)
            elif self.dim == y_dim:
                y_expr = affine(int(value), y_dim)
            else:
                raise DslError(f"ForAll dimension {self.dim.name} not in the tile's grid")
            expanded.append((x_expr, y_expr))
        return expanded

    def __repr__(self) -> str:
        return f"ForAll({self.tile!r}, {self.dim.name}, 0..{self.range.stop})"
