"""CUDA-like source emission.

The paper's cuSyncGen emits the ``sem`` / ``value`` methods of each policy
and the tile processing order as CUDA C++ that the user plugs into cuSync
(Section IV-A shows the templates).  The reproduction's policies are
executable Python objects, but emitting the equivalent C source keeps the
"compiler" half of the system testable end-to-end: the strings below follow
the paper's templates verbatim, so tests can check the generated code for
the MLP, Attention and Conv2D dependences against the paper's figures.
"""

from __future__ import annotations

from textwrap import dedent, indent

from repro.errors import CodegenError
from repro.cusync.policies import (
    BatchSync,
    Conv2DTileSync,
    RowSync,
    StridedSync,
    SyncPolicy,
    TileSync,
)
from repro.cusync.tile_orders import ColumnMajorOrder, GroupedColumnsOrder, RowMajorOrder, TileOrder


def emit_policy_source(policy: SyncPolicy, class_name: str = None) -> str:
    """Emit the CUDA-like ``sem``/``value`` pair for a policy."""
    name = class_name if class_name is not None else policy.name
    if isinstance(policy, StridedSync):
        return dedent(
            f"""\
            class {name} {{
              // Tiles whose columns differ by a multiple of {policy.stride} share a semaphore.
              __device__ int sem(dim3 tile, dim3 grid) {{
                return (tile.z * grid.y + tile.y) * {policy.stride} + (tile.x % {policy.stride});
              }}
              __device__ int value(dim3 tile, dim3 grid) {{
                return grid.x / {policy.stride};
              }}
            }};
            """
        )
    if isinstance(policy, RowSync):
        return dedent(
            f"""\
            class {name} {{
              // Tiles of the same row share a semaphore.
              __device__ int sem(dim3 tile, dim3 grid) {{
                return tile.z * grid.y + tile.y;
              }}
              __device__ int value(dim3 tile, dim3 grid) {{
                return grid.x;
              }}
            }};
            """
        )
    if isinstance(policy, BatchSync):
        return dedent(
            f"""\
            class {name} {{
              // All tiles of one batch entry share a semaphore.
              __device__ int sem(dim3 tile, dim3 grid) {{
                return tile.z;
              }}
              __device__ int value(dim3 tile, dim3 grid) {{
                return grid.x * grid.y;
              }}
            }};
            """
        )
    if isinstance(policy, (Conv2DTileSync, TileSync)):
        return dedent(
            f"""\
            class {name} {{
              // Distinct semaphore for each tile.
              __device__ int sem(dim3 tile, dim3 grid) {{
                return (tile.z * grid.y + tile.y) * grid.x + tile.x;
              }}
              __device__ int value(dim3 tile, dim3 grid) {{
                return 1;
              }}
            }};
            """
        )
    raise CodegenError(f"no CUDA template for policy {type(policy).__name__}")


def emit_tile_order_source(order: TileOrder, function_name: str = None) -> str:
    """Emit the CUDA-like tile processing order function."""
    name = function_name if function_name is not None else order.name
    if isinstance(order, GroupedColumnsOrder):
        return dedent(
            f"""\
            __device__ int {name}(dim3 tile, dim3 grid) {{
              // Schedule the {order.group} strided column tiles a consumer needs consecutively.
              int stride = grid.x / {order.group};
              int within = tile.x % stride;
              int member = tile.x / stride;
              return ((tile.z * grid.y + tile.y) * grid.x) + within * {order.group} + member;
            }}
            """
        )
    if isinstance(order, ColumnMajorOrder):
        return dedent(
            f"""\
            __device__ int {name}(dim3 tile, dim3 grid) {{
              return (tile.z * grid.x + tile.x) * grid.y + tile.y;
            }}
            """
        )
    if isinstance(order, RowMajorOrder):
        return dedent(
            f"""\
            __device__ int {name}(dim3 tile, dim3 grid) {{
              return (tile.z * grid.y + tile.y) * grid.x + tile.x;
            }}
            """
        )
    raise CodegenError(f"no CUDA template for tile order {type(order).__name__}")


def emit_generated_header(generated, guard: str = "CUSYNCGEN_GENERATED_H") -> str:
    """Emit a self-contained header with every generated policy and order."""
    pieces = [f"#ifndef {guard}", f"#define {guard}", ""]
    for name, policy in generated.policies.items():
        pieces.append(emit_policy_source(policy, class_name=name))
    pieces.append(emit_tile_order_source(generated.producer_order, function_name="ProducerOrder"))
    pieces.append(emit_tile_order_source(generated.consumer_order, function_name="ConsumerOrder"))
    pieces.append(f"#endif  // {guard}")
    return "\n".join(pieces)
