"""Dependence analysis: normalization and bounds checking.

cuSyncGen's workflow (Section IV-A) starts by checking that every producer
tile a dependence names lies inside the producer's declared grid, and by
normalizing the dependence into the per-dimension affine form
``{P(x, a0*y + b0), ..., P(x, aN-1*y + bN-1)}`` the code generator templates
its ``sem``/``value``/order functions from.  This module performs both
steps for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.errors import DslBoundsError, DslError
from repro.dsl.dep import Dep, TileRef
from repro.dsl.expr import AffineExpr
from repro.dsl.grid import ForAll, Grid, Tile


@dataclass(frozen=True)
class DimensionAccess:
    """How a dependence walks one dimension of the producer grid.

    ``pattern`` is one of:

    ``"identity"``  — the producer index equals the consumer index;
    ``"scaled"``    — the producer index is an affine function of it
                      (e.g. the ``x // (R*S)`` Conv2D mapping);
    ``"strided"``   — several producer indices at a constant stride
                      (the attention Q/K/V dependence);
    ``"all"``       — every index of the dimension (a ``ForAll``).
    """

    pattern: str
    #: Number of producer tiles referenced along this dimension.
    count: int
    #: Stride between referenced tiles (strided pattern only).
    stride: Optional[int] = None


@dataclass
class NormalizedDependence:
    """One dependence lowered to explicit producer tile expressions."""

    consumer_grid: Grid
    producer_grid: Grid
    #: Expanded producer tile index expressions ``(x_expr, y_expr)``.
    producer_tiles: List[Tuple[AffineExpr, AffineExpr]] = field(default_factory=list)
    x_access: DimensionAccess = DimensionAccess(pattern="identity", count=1)
    y_access: DimensionAccess = DimensionAccess(pattern="identity", count=1)

    @property
    def tiles_per_consumer(self) -> int:
        """How many producer tiles one consumer tile waits for."""
        return len(self.producer_tiles)


def _expand_side(side: TileRef) -> List[Tuple[AffineExpr, AffineExpr]]:
    grid = side.grid
    expanded: List[Tuple[AffineExpr, AffineExpr]] = []
    for tile in side.tiles:
        if isinstance(tile, ForAll):
            expanded.extend(tile.tiles(grid.x_dim, grid.y_dim))
        elif isinstance(tile, Tile):
            expanded.append((tile.x_expr(grid.x_dim), tile.y_expr(grid.y_dim)))
        else:  # pragma: no cover - guarded by Dep._coerce
            raise DslError(f"unexpected tile reference {tile!r}")
    return expanded


def _classify(exprs: List[AffineExpr], producer_extent: int, is_forall: bool) -> DimensionAccess:
    unique = sorted({(expr.scale, expr.offset, expr.floor) for expr in exprs}, key=lambda t: (t[0], t[1]))
    count = len(unique)
    all_constant = all(scale == 0 for scale, _, _ in unique)
    if is_forall or (all_constant and count >= producer_extent):
        return DimensionAccess(pattern="all", count=producer_extent)
    if count == 1:
        scale, offset, floored = unique[0]
        if scale == 1 and offset == 0 and not floored:
            return DimensionAccess(pattern="identity", count=1)
        return DimensionAccess(pattern="scaled", count=1)
    scales = {scale for scale, _, _ in unique}
    if len(scales) == 1:
        offsets = sorted(offset for _, offset, _ in unique)
        strides = {b - a for a, b in zip(offsets, offsets[1:])}
        if len(strides) == 1:
            return DimensionAccess(pattern="strided", count=count, stride=strides.pop())
    return DimensionAccess(pattern="scaled", count=count)


def analyze_dependence(dep: Dep, producer_index: int = 0) -> NormalizedDependence:
    """Normalize and bounds-check one producer side of a dependence.

    Raises :class:`~repro.errors.DslBoundsError` if any consumer tile would
    wait for a producer tile outside the producer's grid (step 2 of the
    cuSyncGen workflow).
    """
    if producer_index >= len(dep.producers):
        raise DslError(
            f"dependence has {len(dep.producers)} producer sides, index {producer_index} requested"
        )
    consumer_grid = dep.consumer.grid
    producer_side = dep.producers[producer_index]
    producer_grid = producer_side.grid

    producer_tiles = _expand_side(producer_side)
    has_forall = any(isinstance(tile, ForAll) for tile in producer_side.tiles)

    # Bounds check over the full consumer grid.
    for consumer_y in range(consumer_grid.y_size):
        for consumer_x in range(consumer_grid.x_size):
            for x_expr, y_expr in producer_tiles:
                px = _evaluate(x_expr, consumer_x, consumer_y, consumer_grid)
                py = _evaluate(y_expr, consumer_x, consumer_y, consumer_grid)
                if not producer_grid.contains(px, py):
                    raise DslBoundsError(
                        f"consumer tile ({consumer_x}, {consumer_y}) of {consumer_grid.label} "
                        f"depends on producer tile ({px}, {py}) outside {producer_grid.label} "
                        f"of shape ({producer_grid.x_size}, {producer_grid.y_size})"
                    )

    x_exprs = [x for x, _ in producer_tiles]
    y_exprs = [y for _, y in producer_tiles]
    x_access = _classify(x_exprs, producer_grid.x_size, has_forall and _forall_on_x(producer_side))
    y_access = _classify(y_exprs, producer_grid.y_size, has_forall and not _forall_on_x(producer_side))

    return NormalizedDependence(
        consumer_grid=consumer_grid,
        producer_grid=producer_grid,
        producer_tiles=producer_tiles,
        x_access=x_access,
        y_access=y_access,
    )


def _forall_on_x(side: TileRef) -> bool:
    for tile in side.tiles:
        if isinstance(tile, ForAll):
            return tile.dim == side.grid.x_dim
    return False


def _evaluate(expr: AffineExpr, consumer_x: int, consumer_y: int, consumer_grid: Grid) -> int:
    if expr.dim == consumer_grid.x_dim:
        return expr.evaluate(consumer_x)
    if expr.dim == consumer_grid.y_dim:
        return expr.evaluate(consumer_y)
    # Constant expressions carry an arbitrary dimension with scale 0.
    if expr.scale == 0:
        return expr.offset
    raise DslError(f"expression {expr!r} references a dimension outside the consumer grid")
