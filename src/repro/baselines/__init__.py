"""Baselines the paper compares cuSync against.

* :mod:`repro.baselines.streamsync` — **StreamSync**: all kernels on one
  CUDA stream, so a consumer kernel starts only after every thread block of
  its producer finished.  This is the default way ML frameworks execute
  dependent operators and the baseline all improvements are reported
  against.
* :mod:`repro.baselines.streamk` — **Stream-K** [Osama et al., PPoPP'23]:
  each GeMM individually improves its final-wave utilization by splitting
  the remaining tiles' MAC iterations across one full wave of blocks;
  dependent kernels still use stream synchronization between them.
"""

from repro.baselines.streamsync import StreamSyncExecutor
from repro.baselines.streamk import StreamKExecutor

__all__ = ["StreamSyncExecutor", "StreamKExecutor"]
