"""Stream-K baseline executor.

Each GeMM in the sequence is decomposed with Stream-K (data-parallel full
waves + one work-centric wave for the remainder); non-GeMM kernels run
unmodified.  Kernels remain stream-synchronized with each other — Stream-K
improves each GeMM individually but cannot overlap dependent kernels, which
is the distinction Section V-H draws against cuSync.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator
from repro.gpu.stream import Stream
from repro.kernels.base import NoSync, TiledKernel
from repro.kernels.gemm import GemmKernel
from repro.kernels.streamk import StreamKGemmKernel
from repro.cusync.handle import PipelineResult

#: A Stream-K pipeline mixes plain tiled kernels with Stream-K GeMMs.
StreamKItem = Union[TiledKernel, StreamKGemmKernel]


class StreamKExecutor:
    """Run a kernel sequence with Stream-K GeMMs under stream synchronization."""

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        self.functional = functional

    # ------------------------------------------------------------------
    @classmethod
    def convert(cls, kernel: TiledKernel, cost_model: Optional[CostModel] = None) -> StreamKItem:
        """Convert a GeMM kernel into its Stream-K equivalent.

        Non-GeMM kernels are returned unchanged: the paper notes Stream-K
        currently supports only GeMM computations in CUTLASS, which is why
        it cannot be applied to the Conv2D workloads.
        """
        if isinstance(kernel, GemmKernel):
            return StreamKGemmKernel(
                name=kernel.name,
                problem=kernel.problem,
                config=kernel.config,
                epilogue=kernel.epilogue,
                cost_model=cost_model if cost_model is not None else kernel.cost_model,
            )
        return kernel

    def build_launches(self, items: Sequence[StreamKItem]) -> List[KernelLaunch]:
        if not items:
            raise SimulationError("StreamKExecutor needs at least one kernel")
        stream = Stream(priority=0, name="stream_k")
        launches: List[KernelLaunch] = []
        for item in items:
            if isinstance(item, StreamKGemmKernel):
                item.cost_model = self.cost_model
                launches.extend(item.build_launches(stream=stream))
            else:
                item.sync = NoSync()
                item.cost_model = self.cost_model
                item.functional = self.functional
                launches.append(item.build_launch(stream=stream))
        return launches

    def run(
        self,
        items: Sequence[StreamKItem],
        memory: Optional[GlobalMemory] = None,
        tensors: Optional[Dict[str, np.ndarray]] = None,
    ) -> PipelineResult:
        """Execute the Stream-K pipeline.

        Functional simulation is only supported for the plain kernels in the
        sequence; Stream-K launches model timing only (their partial-tile
        accumulation order is not reproduced numerically).
        """
        memory = memory if memory is not None else GlobalMemory()
        if tensors:
            for name, array in tensors.items():
                memory.store_tensor(name, array)

        launches = self.build_launches(items)
        simulator = GpuSimulator(
            arch=self.arch,
            memory=memory,
            cost_model=self.cost_model,
            functional=False,
        )
        result = simulator.run(launches)
        names = [item.name for item in items]
        return PipelineResult(simulation=result, stage_names=names)
