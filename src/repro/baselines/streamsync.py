"""StreamSync baseline: dependent kernels serialized on one CUDA stream."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import KernelLaunch
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator
from repro.gpu.stream import Stream
from repro.kernels.base import NoSync, TiledKernel
from repro.cusync.handle import PipelineResult


class StreamSyncExecutor:
    """Run a sequence of kernels with CUDA stream synchronization.

    Every kernel is stripped of fine-grained synchronization (its ``sync``
    is replaced with :class:`~repro.kernels.base.NoSync`) and all kernels
    are launched on a single stream, which is exactly how the paper's
    StreamSync baseline executes dependent computations.
    """

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        self.functional = functional

    def build_launches(self, kernels: Sequence[TiledKernel]) -> List[KernelLaunch]:
        if not kernels:
            raise SimulationError("StreamSyncExecutor needs at least one kernel")
        stream = Stream(priority=0, name="stream_sync")
        launches: List[KernelLaunch] = []
        for kernel in kernels:
            kernel.sync = NoSync()
            kernel.cost_model = self.cost_model
            kernel.functional = self.functional
            launches.append(kernel.build_launch(stream=stream))
        return launches

    def run(
        self,
        kernels: Sequence[TiledKernel],
        memory: Optional[GlobalMemory] = None,
        tensors: Optional[Dict[str, np.ndarray]] = None,
    ) -> PipelineResult:
        """Execute ``kernels`` back to back on one stream."""
        memory = memory if memory is not None else GlobalMemory()
        if tensors:
            for name, array in tensors.items():
                memory.store_tensor(name, array)
        if self.functional:
            for kernel in kernels:
                kernel.allocate_functional_tensors(memory)

        launches = self.build_launches(kernels)
        simulator = GpuSimulator(
            arch=self.arch,
            memory=memory,
            cost_model=self.cost_model,
            functional=self.functional,
        )
        result = simulator.run(launches)
        return PipelineResult(simulation=result, stage_names=[k.name for k in kernels])
