"""Testing utilities: deterministic fault injection for chaos tests.

``repro.testing`` is shipped with the library (not hidden in the test
tree) so downstream users can chaos-test their own pipelines and policies
against the same fault taxonomy the library's own recovery paths are
verified with.  See :mod:`repro.testing.faults` — sweep-level faults
(:class:`FaultPlan`) and request-level serving faults
(:class:`ServingFaultPlan`).
"""

from repro.testing.faults import (
    FAULT_KINDS,
    SERVING_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ServingFaultPlan,
    ServingFaultSpec,
    active_fault_plan,
    inject_faults,
)

__all__ = [
    "FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "ServingFaultPlan",
    "ServingFaultSpec",
    "active_fault_plan",
    "inject_faults",
]
