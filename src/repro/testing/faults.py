"""Deterministic fault injection for the sweep and simulator stack.

Robust recovery paths are only trustworthy if they are *exercised*; this
module makes every failure mode the sweep layer handles reproducible on
demand instead of waiting for luck.  A :class:`FaultPlan` maps sweep-point
positions to faults, either explicitly (``FaultSpec(kind="crash",
point=3)``) or drawn from seeded fractions (:meth:`FaultPlan.seeded`), and
:func:`inject_faults` activates the plan for every
:meth:`~repro.pipeline.session.Session.sweep` call in the ``with`` block::

    plan = FaultPlan.seeded(len(work), seed=7, crash=0.1, hang=0.1)
    with inject_faults(plan):
        results = session.sweep(work, mode="process",
                                on_error="collect", retries=2, timeout=5.0)

Fault taxonomy (:data:`FAULT_KINDS`):

``crash``
    The evaluating worker process dies mid-point (``os._exit``), producing
    a ``BrokenProcessPool`` in the parent.  Serial and thread modes cannot
    sacrifice the host process, so the crash degrades to
    :class:`~repro.errors.InjectedCrashError` there.
``hang``
    The evaluation sleeps for :attr:`FaultSpec.hang_seconds` before
    running.  Under a per-point ``timeout`` this exercises the timed-out
    path: process mode kills and respawns the pool, the cooperative modes
    discard the late result.
``error``
    The evaluation raises :class:`~repro.errors.InjectedFaultError`
    deterministically — the plain exception-propagation path.
``drop_post`` / ``dup_post``
    The :class:`~repro.gpu.simulator.GpuSimulator` skips (or applies
    twice) the *n*-th semaphore post of the run — the classic lost-wakeup
    and double-signal bugs.  A dropped post typically surfaces as a
    :class:`~repro.errors.DeadlockError` with wait-graph forensics; a run
    that survives a fired post fault is reported as
    :class:`~repro.errors.InjectedFaultError` anyway, because its trace can
    no longer be trusted.
``corrupt_result``
    The point evaluates cleanly but its result payload is corrupted
    (``total_time_us`` becomes NaN) before being returned — exercising the
    sweep layer's result-sanity validation.

Faults fire per ``(point, attempt)``: by default only on attempt 0, so a
retried point recovers — the property the chaos acceptance test pins
(every point ends as a bit-identical result or a structured failure).

Injection is thread-safe: the *plan* is a process-global (it crosses
worker-process boundaries inside sweep payloads), while the simulator-level
post-fault context is thread-local so concurrent thread-mode points cannot
see each other's faults.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.errors import InjectedCrashError, InjectedFaultError, SimulationError

#: Every fault kind a plan may contain, in the order ``seeded`` draws them.
FAULT_KINDS: Tuple[str, ...] = (
    "crash",
    "hang",
    "error",
    "drop_post",
    "dup_post",
    "corrupt_result",
)

#: Exit status an injected worker crash dies with (distinctive in logs).
CRASH_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *what* happens to *which* point on *which* attempts."""

    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Position of the target point in the sweep's work list.
    point: int
    #: Attempt numbers (0-based) the fault fires on.  The default —
    #: first attempt only — models transient faults that a retry survives.
    attempts: Tuple[int, ...] = (0,)
    #: For ``drop_post`` / ``dup_post``: which post of the simulation run
    #: (0-based, counting segment-completion posts) is affected.
    post_index: int = 0
    #: For ``hang``: how long the evaluation sleeps before proceeding.
    hang_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; choose one of {FAULT_KINDS}"
            )
        if self.point < 0:
            raise SimulationError(f"fault point must be non-negative, got {self.point}")

    def fires_on(self, attempt: int) -> bool:
        return attempt in self.attempts


class FaultPlan:
    """A deterministic assignment of faults to sweep-point positions.

    At most one fault per point position; plans are immutable, hashable by
    identity, and picklable (they travel inside process-mode sweep
    payloads, so worker processes replay exactly the faults the parent
    planned).
    """

    def __init__(self, faults: Iterable[FaultSpec] = (), seed: Optional[int] = None):
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        self.seed = seed
        by_point = {}
        for spec in self.faults:
            if spec.point in by_point:
                raise SimulationError(
                    f"FaultPlan has two faults for point {spec.point}; "
                    "at most one fault per point is supported"
                )
            by_point[spec.point] = spec
        self._by_point = by_point

    @classmethod
    def seeded(
        cls,
        num_points: int,
        seed: int,
        *,
        crash: float = 0.0,
        hang: float = 0.0,
        error: float = 0.0,
        drop_post: float = 0.0,
        dup_post: float = 0.0,
        corrupt_result: float = 0.0,
        attempts: Tuple[int, ...] = (0,),
        hang_seconds: float = 0.25,
        post_index_max: int = 8,
    ) -> "FaultPlan":
        """Draw one fault (or none) per point from seeded fractions.

        ``crash=0.1, hang=0.1`` gives every point a 10% chance of each;
        the same ``(num_points, seed, fractions)`` always produces the same
        plan, so chaos tests are reproducible bug reports rather than
        flakes.
        """
        fractions = (
            ("crash", crash),
            ("hang", hang),
            ("error", error),
            ("drop_post", drop_post),
            ("dup_post", dup_post),
            ("corrupt_result", corrupt_result),
        )
        total = sum(fraction for _, fraction in fractions)
        if total > 1.0 + 1e-9:
            raise SimulationError(f"fault fractions sum to {total}, must be <= 1")
        rng = random.Random(seed)
        faults = []
        for point in range(num_points):
            draw = rng.random()
            post_index = rng.randrange(post_index_max) if post_index_max > 0 else 0
            cumulative = 0.0
            for kind, fraction in fractions:
                cumulative += fraction
                if draw < cumulative:
                    faults.append(
                        FaultSpec(
                            kind=kind,
                            point=point,
                            attempts=tuple(attempts),
                            post_index=post_index,
                            hang_seconds=hang_seconds,
                        )
                    )
                    break
        return cls(faults, seed=seed)

    def fault_for(self, point: int, attempt: int) -> Optional[FaultSpec]:
        """The fault that fires for ``point`` on ``attempt``, if any."""
        spec = self._by_point.get(point)
        if spec is not None and spec.fires_on(attempt):
            return spec
        return None

    @property
    def fault_points(self) -> Tuple[int, ...]:
        """Sorted positions of every point the plan faults (any attempt)."""
        return tuple(sorted(self._by_point))

    def fault_fraction(self, num_points: int) -> float:
        """Share of ``num_points`` positions that carry a fault."""
        if num_points <= 0:
            return 0.0
        return sum(1 for point in self._by_point if point < num_points) / num_points

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        kinds = {}
        for spec in self.faults:
            kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
        summary = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        return f"FaultPlan(seed={self.seed}, {len(self.faults)} faults: {summary or 'none'})"


# ----------------------------------------------------------------------
# Plan activation (process-global; travels to workers inside payloads)
# ----------------------------------------------------------------------
_active_plan: Optional[FaultPlan] = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan installed by the innermost :func:`inject_faults`, if any."""
    return _active_plan


@contextmanager
def inject_faults(plan: FaultPlan):
    """Activate ``plan`` for every sweep evaluated inside the block."""
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    try:
        yield plan
    finally:
        _active_plan = previous


# ----------------------------------------------------------------------
# Simulator-level post faults (thread-local: one per evaluating thread)
# ----------------------------------------------------------------------
class PostFault:
    """Run-scoped state for one ``drop_post`` / ``dup_post`` fault.

    The simulator counts segment-completion posts; when the count reaches
    :attr:`FaultSpec.post_index` the fault fires once (drop: the post is
    skipped; dup: it is applied twice).  ``fired`` records whether the run
    actually had enough posts to reach the index.
    """

    __slots__ = ("kind", "post_index", "fired", "_counter")

    def __init__(self, spec: FaultSpec):
        self.kind = spec.kind
        self.post_index = spec.post_index
        self.fired = False
        self._counter = 0

    def next_action(self) -> Optional[str]:
        """Consulted once per post; returns ``"drop"``, ``"dup"`` or ``None``."""
        index = self._counter
        self._counter += 1
        if index == self.post_index:
            self.fired = True
            return "drop" if self.kind == "drop_post" else "dup"
        return None


_sim_context = threading.local()


def current_post_fault() -> Optional[PostFault]:
    """The post fault armed for the calling thread's next simulator run."""
    return getattr(_sim_context, "post_fault", None)


@contextmanager
def _armed_post_fault(spec: FaultSpec):
    fault = PostFault(spec)
    previous = getattr(_sim_context, "post_fault", None)
    _sim_context.post_fault = fault
    try:
        yield fault
    finally:
        _sim_context.post_fault = previous


def _corrupt_result(result):
    """Corrupt a sweep result payload the way a truncated IPC write would."""
    from dataclasses import replace

    return replace(result, total_time_us=float("nan"))


def run_point_with_faults(
    plan: Optional[FaultPlan],
    point: int,
    attempt: int,
    evaluate: Callable[[], object],
    in_worker_process: bool = False,
):
    """Evaluate one sweep point under the plan's fault for ``(point, attempt)``.

    The single choke point every sweep execution mode funnels through:
    serial and thread evaluation call it in-process, the process-mode
    worker entry point calls it with ``in_worker_process=True`` after
    unpickling the plan from its payload.  With no plan (the fault-free
    path) it is a plain call-through.
    """
    spec = plan.fault_for(point, attempt) if plan is not None else None
    if spec is None:
        return evaluate()
    if spec.kind == "crash":
        if in_worker_process:
            # Die the way a segfaulting worker would: no exception, no
            # cleanup, just a vanished process (-> BrokenProcessPool).
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrashError(
            f"injected worker crash for point {point} (attempt {attempt}); "
            "serial/thread modes surface the crash as this exception"
        )
    if spec.kind == "hang":
        time.sleep(spec.hang_seconds)
        return evaluate()
    if spec.kind == "error":
        raise InjectedFaultError(
            f"injected evaluation error for point {point} (attempt {attempt})"
        )
    if spec.kind in ("drop_post", "dup_post"):
        with _armed_post_fault(spec) as fault:
            result = evaluate()
        if fault.fired:
            # The simulation completed despite a skipped/duplicated post;
            # its trace cannot be trusted, so fail the attempt explicitly.
            raise InjectedFaultError(
                f"injected {spec.kind} fault fired for point {point} "
                f"(attempt {attempt}) but the run completed; discarding the "
                "tainted result"
            )
        return result
    # corrupt_result: evaluate cleanly, then damage the payload.
    return _corrupt_result(evaluate())


# ----------------------------------------------------------------------
# Request-level serving faults (consumed by repro.serving's simulator)
# ----------------------------------------------------------------------

#: Every serving fault kind a :class:`ServingFaultPlan` may contain, in
#: the order :meth:`ServingFaultPlan.seeded` draws them.
SERVING_FAULT_KINDS: Tuple[str, ...] = ("straggler", "drop_completion", "burst")


@dataclass(frozen=True)
class ServingFaultSpec:
    """One planned request-level serving fault.

    ``target`` is an iteration index for ``straggler`` faults and a
    request id for ``drop_completion`` / ``burst`` faults.
    """

    #: One of :data:`SERVING_FAULT_KINDS`.
    kind: str
    #: Iteration index (straggler) or request id (drop_completion, burst).
    target: int
    #: For ``straggler``: the duration multiplier applied to the iteration.
    factor: float = 4.0
    #: For ``burst``: how many subsequent arrivals collapse onto the
    #: target request's arrival time (the spike width).
    span: int = 4

    def __post_init__(self) -> None:
        if self.kind not in SERVING_FAULT_KINDS:
            raise SimulationError(
                f"unknown serving fault kind {self.kind!r}; "
                f"choose one of {SERVING_FAULT_KINDS}"
            )
        if self.target < 0:
            raise SimulationError(
                f"serving fault target must be non-negative, got {self.target}"
            )
        if self.factor <= 0.0:
            raise SimulationError(
                f"straggler factor must be positive, got {self.factor}"
            )
        if self.span < 1:
            raise SimulationError(f"burst span must be >= 1, got {self.span}")


class ServingFaultPlan:
    """A deterministic assignment of request-level faults to a serving run.

    The serving counterpart of :class:`FaultPlan`, consumed by
    :meth:`repro.serving.ServingSimulator.run`:

    ``straggler``
        Iteration ``target`` takes ``factor``x its simulated duration —
        a slow kernel launch, a paused clock, an unlucky SM.  Applied
        *after* the sweep-cache lookup, so cached costs are untouched
        and a fault-free replay stays bit-identical.
    ``drop_completion``
        Request ``target``'s completion is lost the first time it
        finishes: the batcher re-queues it with all but the final token
        already generated (recompute on re-prefill), so it terminally
        resolves as completed-or-shed instead of vanishing.
    ``burst``
        The ``span - 1`` arrivals after request ``target`` collapse onto
        its arrival time — a synchronized client spike.  Rewrites the
        arrival schedule up front (monotonicity preserved; absolute
        deadlines kept).

    At most one fault per ``(kind, target)``; plans are immutable and
    deterministic per seed.
    """

    def __init__(
        self, faults: Iterable[ServingFaultSpec] = (), seed: Optional[int] = None
    ):
        self.faults: Tuple[ServingFaultSpec, ...] = tuple(faults)
        self.seed = seed
        stragglers = {}
        drops = set()
        bursts = {}
        for spec in self.faults:
            if spec.kind == "straggler":
                if spec.target in stragglers:
                    raise SimulationError(
                        f"ServingFaultPlan has two straggler faults for "
                        f"iteration {spec.target}"
                    )
                stragglers[spec.target] = spec.factor
            elif spec.kind == "drop_completion":
                if spec.target in drops:
                    raise SimulationError(
                        f"ServingFaultPlan has two drop_completion faults for "
                        f"request {spec.target}"
                    )
                drops.add(spec.target)
            else:
                if spec.target in bursts:
                    raise SimulationError(
                        f"ServingFaultPlan has two burst faults for "
                        f"request {spec.target}"
                    )
                bursts[spec.target] = spec.span
        self._stragglers = stragglers
        self._drops = frozenset(drops)
        self._bursts = bursts

    @classmethod
    def seeded(
        cls,
        num_requests: int,
        seed: int,
        *,
        straggler: float = 0.0,
        drop_completion: float = 0.0,
        burst: float = 0.0,
        iterations: Optional[int] = None,
        straggler_factor: float = 4.0,
        burst_span: int = 4,
    ) -> "ServingFaultPlan":
        """Draw serving faults from seeded per-target fractions.

        ``straggler`` is a per-iteration probability over ``iterations``
        candidate iterations (default ``4 * num_requests``, a generous
        bound for continuous batching); ``drop_completion`` and ``burst``
        are per-request probabilities.  Same inputs, same plan — chaos
        runs are reproducible bug reports, not flakes.
        """
        for name, fraction in (
            ("straggler", straggler),
            ("drop_completion", drop_completion),
            ("burst", burst),
        ):
            if not 0.0 <= fraction <= 1.0:
                raise SimulationError(
                    f"serving fault fraction {name} must be in [0, 1], "
                    f"got {fraction}"
                )
        if num_requests <= 0:
            raise SimulationError(
                f"num_requests must be positive, got {num_requests}"
            )
        candidate_iterations = (
            4 * num_requests if iterations is None else iterations
        )
        rng = random.Random(seed)
        faults = []
        for index in range(candidate_iterations):
            if rng.random() < straggler:
                faults.append(
                    ServingFaultSpec(
                        kind="straggler", target=index, factor=straggler_factor
                    )
                )
        for request_id in range(num_requests):
            if rng.random() < drop_completion:
                faults.append(
                    ServingFaultSpec(kind="drop_completion", target=request_id)
                )
        for request_id in range(num_requests):
            if rng.random() < burst:
                faults.append(
                    ServingFaultSpec(kind="burst", target=request_id, span=burst_span)
                )
        return cls(faults, seed=seed)

    # ------------------------------------------------------------------
    def straggler_factor(self, iteration: int) -> float:
        """Duration multiplier for ``iteration`` (1.0 = no fault)."""
        return self._stragglers.get(iteration, 1.0)

    def drops_completion(self, request_id: int) -> bool:
        """True when ``request_id``'s first completion is planned to be lost."""
        return request_id in self._drops

    def apply_to_arrivals(self, requests: Sequence) -> tuple:
        """Rewrite an arrival schedule with the plan's burst spikes.

        For each burst anchored at request index ``i``, the following
        ``span - 1`` arrivals are pulled down to the anchor's arrival
        time.  Arrival order stays monotone (times are only lowered, and
        only onto an earlier entry of the same schedule); absolute
        deadlines are untouched, so a burst *tightens* effective slack —
        exactly what a client-side retry storm does.
        """
        from dataclasses import replace

        requests = tuple(requests)
        if not self._bursts:
            return requests
        arrivals = [request.arrival_us for request in requests]
        for index in sorted(self._bursts):
            if index >= len(arrivals):
                continue
            span = self._bursts[index]
            anchor = arrivals[index]
            for position in range(index + 1, min(index + span, len(arrivals))):
                arrivals[position] = anchor
        return tuple(
            request
            if arrivals[position] == request.arrival_us
            else replace(request, arrival_us=arrivals[position])
            for position, request in enumerate(requests)
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        kinds = {}
        for spec in self.faults:
            kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
        summary = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        return (
            f"ServingFaultPlan(seed={self.seed}, {len(self.faults)} faults: "
            f"{summary or 'none'})"
        )
