"""Benchmark harness: one experiment per table / figure of the paper.

:mod:`repro.bench.experiments` contains a function per evaluation artifact
(Table I, III, IV, V; Figures 6, 7, 8; the Section V-D overhead study).
Each returns structured rows so tests can assert the qualitative shape and
the ``benchmarks/`` suite can print paper-style tables;
:mod:`repro.bench.reporting` renders them.
"""

from repro.bench.reporting import format_table, format_percent
from repro.bench.experiments import (
    table1_utilization,
    table3_lines_changed,
    table4_mlp,
    table5_mlp_optimizations,
    table5_conv_optimizations,
    figure6_llm,
    figure7_conv,
    figure8_end_to_end,
    overhead_experiment,
    policy_ablation,
    arch_comparison,
    serving_comparison,
)

__all__ = [
    "format_table",
    "format_percent",
    "table1_utilization",
    "table3_lines_changed",
    "table4_mlp",
    "table5_mlp_optimizations",
    "table5_conv_optimizations",
    "figure6_llm",
    "figure7_conv",
    "figure8_end_to_end",
    "overhead_experiment",
    "policy_ablation",
    "arch_comparison",
    "serving_comparison",
]
