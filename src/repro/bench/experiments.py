"""Experiment definitions: one function per table / figure of the paper.

Every function returns a list of dictionaries (one per row of the paper's
table or bar of the figure) so tests can assert the qualitative shape and
the benchmark scripts can print them; nothing here writes files or plots.

All experiments run on the declarative :mod:`repro.pipeline` API: each
workload's graph is built **once** and re-run under every scheme, policy
family and optimization setting — the kernels are bound per execution,
never rebuilt, which is what makes multi-point comparisons cheap.
"""

from __future__ import annotations

import inspect
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.occupancy import OccupancyCalculator
from repro.gpu.trace import analytic_utilization, wave_count
from repro.kernels import conv2d as conv2d_module
from repro.kernels import elementwise as elementwise_module
from repro.kernels import gemm as gemm_module
from repro.kernels import softmax_dropout as softmax_module
from repro.kernels.elementwise import CopyKernel, CopyProblem
from repro.cusync import OptimizationFlags, PolicyAssignment, TileSync
from repro.cusync.optimizations import decorate_policy_name
from repro.pipeline import Edge, PipelineGraph, Session, StageSpec, SweepPoint, sweep_policies
from repro.models.attention import Attention
from repro.models.config import GPT3_145B, LLAMA_65B, RESNET38_LAYERS, VGG19_LAYERS, resnet38_config, vgg19_config
from repro.models.conv_layers import ConvChain
from repro.models.inference import TransformerLayer, VisionModel
from repro.models.llama_mlp import LlamaMlp
from repro.models.mlp import GptMlp
from repro.models.workload import Workload

#: Policy families evaluated for the LLM workloads (Figure 6 legend).
LLM_POLICIES = ("RowSync", "TileSync", "StridedTileSync")
#: Policy families evaluated for the Conv2D workloads (Figure 7 legend).
CONV_POLICIES = ("RowSync", "Conv2DTileSync")


# ----------------------------------------------------------------------
# Table I — thread blocks, waves and utilization of GPT-3's MLP GeMMs
# ----------------------------------------------------------------------
def table1_utilization(
    batch_sizes: Sequence[int] = (256, 512, 1024),
    arch: GpuArchitecture = TESLA_V100,
) -> List[Dict[str, object]]:
    """Reproduce Table I: grid, blocks/wave, waves and utilization."""
    rows: List[Dict[str, object]] = []
    for batch in batch_sizes:
        workload = GptMlp(batch_seq=batch, arch=arch)
        graph = workload.to_graph()
        for role, stage in zip(("Producer", "Consumer"), graph.topological_order):
            kernel = stage.kernel
            occupancy = kernel.occupancy()
            blocks = kernel.grid.volume
            rows.append(
                {
                    "batch": batch,
                    "gemm": role,
                    "grid": str(kernel.grid),
                    "thread_blocks": blocks,
                    "blocks_per_wave": arch.blocks_per_wave(occupancy),
                    "occupancy": occupancy,
                    "waves": round(wave_count(blocks, occupancy, arch), 2),
                    "utilization": analytic_utilization(blocks, occupancy, arch),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table III — lines changed to adopt cuSync
# ----------------------------------------------------------------------
def table3_lines_changed() -> List[Dict[str, object]]:
    """Reproduce Table III: integration effort per kernel.

    The paper counts source lines added/changed in each CUDA kernel to call
    into cuSync.  The reproduction measures the same quantity on its own
    kernels: lines mentioning the ``self.sync`` interface over total source
    lines of the kernel module.
    """
    modules = {
        "GeMM": gemm_module,
        "Softmax-Dropout": softmax_module,
        "Conv2D": conv2d_module,
        "Copy": elementwise_module,
    }
    rows = []
    for name, module in modules.items():
        source = inspect.getsource(module)
        lines = source.splitlines()
        changed = [line for line in lines if "self.sync." in line]
        rows.append(
            {
                "kernel": name,
                "total_lines": len(lines),
                "lines_changed": len(changed),
                "fraction": len(changed) / len(lines),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table IV — StreamSync vs cuSync for GPT-3's MLP
# ----------------------------------------------------------------------
def table4_mlp(
    batch_sizes: Sequence[int] = (64, 128, 256, 512, 1024, 2048),
    arch: GpuArchitecture = TESLA_V100,
    policies: Sequence[str] = ("TileSync", "RowSync"),
) -> List[Dict[str, object]]:
    """Reproduce Table IV: grids, waves, times and the best policy."""
    session = Session(arch=arch)
    rows: List[Dict[str, object]] = []
    for batch in batch_sizes:
        workload = GptMlp(batch_seq=batch, arch=arch)
        graph = workload.to_graph()
        first, second = graph.kernels
        streamsync = session.run(graph, scheme="streamsync").total_time_us
        policy_times = {
            name: session.run(graph, scheme="cusync", policy=name).total_time_us
            for name in policies
        }
        best_policy = min(policy_times, key=policy_times.get)
        best_time = policy_times[best_policy]

        waves1 = wave_count(first.grid.volume, first.occupancy(), arch)
        waves2 = wave_count(second.grid.volume, second.occupancy(), arch)
        rows.append(
            {
                "batch": batch,
                "grid_first": str(first.grid),
                "waves_first": round(waves1, 2),
                "grid_second": str(second.grid),
                "waves_second": round(waves2, 2),
                "streamsync_waves": math.ceil(waves1) + math.ceil(waves2),
                "streamsync_us": streamsync,
                "cusync_waves": round(waves1 + waves2, 2),
                "best_policy": best_policy,
                "cusync_us": best_time,
                "reduction": (streamsync - best_time) / streamsync,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table V — impact of the W/R/T optimizations
# ----------------------------------------------------------------------
_OPTIMIZATION_LADDER: Tuple[Tuple[str, OptimizationFlags], ...] = (
    ("Vanilla", OptimizationFlags.none()),
    ("+R", OptimizationFlags.r()),
    ("+WR", OptimizationFlags.wr()),
    ("+WRT", OptimizationFlags.wrt()),
)


def _optimization_ladder(workload: Workload, policy: str) -> Dict[str, float]:
    session = Session(arch=workload.arch, cost_model=workload.cost_model)
    graph = workload.to_graph()
    return {
        label: session.run(
            graph, scheme="cusync", policy=policy, optimizations=flags
        ).total_time_us
        for label, flags in _OPTIMIZATION_LADDER
    }


def table5_mlp_optimizations(
    batch_seq: int = 64, arch: GpuArchitecture = TESLA_V100
) -> List[Dict[str, object]]:
    """Reproduce Table V(a): TileSync + optimizations for GPT-3's MLP."""
    workload = GptMlp(batch_seq=batch_seq, arch=arch)
    ladder = _optimization_ladder(workload, "TileSync")
    return [{"batch": batch_seq, "policy": "TileSync", **ladder}]


def table5_conv_optimizations(
    channels: Sequence[int] = (64, 128, 256, 512),
    batches: Sequence[int] = (1,),
    arch: GpuArchitecture = TESLA_V100,
) -> List[Dict[str, object]]:
    """Reproduce Table V(b): Conv2DTileSync + optimizations for ResNet."""
    rows = []
    by_channels = {spec.channels: spec for spec in RESNET38_LAYERS}
    for channel in channels:
        for batch in batches:
            workload = ConvChain(by_channels[channel], batch=batch, arch=arch)
            ladder = _optimization_ladder(workload, "Conv2DTileSync")
            rows.append({"channels": channel, "batch": batch, "policy": "Conv2DTileSync", **ladder})
    return rows


# ----------------------------------------------------------------------
# Figure 6 — MLP and Attention improvements for GPT-3 and LLaMA
# ----------------------------------------------------------------------
def _improvements(workload: Workload, policies: Sequence[str], include_streamk: bool) -> Dict[str, float]:
    session = Session(arch=workload.arch, cost_model=workload.cost_model)
    graph = workload.to_graph()
    baseline = session.run(graph, scheme="streamsync").total_time_us
    result: Dict[str, float] = {"streamsync_us": baseline}
    for family in policies:
        time_us = session.run(graph, scheme="cusync", policy=family).total_time_us
        result[family] = (baseline - time_us) / baseline
    if include_streamk:
        streamk = session.run(graph, scheme="streamk").total_time_us
        result["StreamK"] = (baseline - streamk) / baseline
    result["best"] = max(result[family] for family in policies)
    return result


def figure6_llm(
    model: str = "gpt3",
    block: str = "mlp",
    prompt_sizes: Sequence[int] = (256, 512, 1024, 2048),
    token_configs: Sequence[Tuple[int, int]] = ((1, 512), (2, 1024), (4, 2048)),
    arch: GpuArchitecture = TESLA_V100,
    include_streamk: bool = True,
) -> List[Dict[str, object]]:
    """Reproduce Figure 6: improvement over StreamSync per size and policy.

    ``model`` is ``"gpt3"`` or ``"llama"``; ``block`` is ``"mlp"`` or
    ``"attention"``.  Prompt-processing rows use ``B*S = size, S' = 0``;
    token-generation rows (attention only) use ``(B, S')`` pairs with S = 1.
    """
    config = GPT3_145B if model.lower() == "gpt3" else LLAMA_65B
    rows: List[Dict[str, object]] = []
    if block.lower() == "mlp":
        policies = ("TileSync", "RowSync")
        for size in prompt_sizes:
            if config.swiglu:
                workload: Workload = LlamaMlp(config=config, batch_seq=size, arch=arch)
            else:
                workload = GptMlp(config=config, batch_seq=size, arch=arch)
            data = _improvements(workload, policies, include_streamk)
            rows.append({"model": config.name, "block": "MLP", "batch_seq": size, "cached": 0, **data})
        return rows

    policies = LLM_POLICIES
    for size in prompt_sizes:
        workload = Attention(config=config, batch=1, seq=size, cached=0, arch=arch)
        data = _improvements(workload, policies, include_streamk)
        rows.append({"model": config.name, "block": "Attention", "batch_seq": size, "cached": 0, **data})
    for batch, cached in token_configs:
        workload = Attention(config=config, batch=batch, seq=1, cached=cached, arch=arch)
        data = _improvements(workload, policies, include_streamk)
        rows.append(
            {"model": config.name, "block": "Attention", "batch_seq": batch, "cached": cached, **data}
        )
    return rows


# ----------------------------------------------------------------------
# Figure 7 — Conv2D improvements for ResNet-38 and VGG-19
# ----------------------------------------------------------------------
def figure7_conv(
    model: str = "resnet",
    channels: Sequence[int] = (64, 128, 256, 512),
    batches: Sequence[int] = (1, 4, 8, 16, 32),
    arch: GpuArchitecture = TESLA_V100,
) -> List[Dict[str, object]]:
    """Reproduce Figure 7: Conv2D-chain improvement per channel count and batch."""
    layer_table = RESNET38_LAYERS if model.lower() == "resnet" else VGG19_LAYERS
    by_channels = {spec.channels: spec for spec in layer_table}
    rows: List[Dict[str, object]] = []
    for channel in channels:
        spec = by_channels[channel]
        for batch in batches:
            workload = ConvChain(spec, batch=batch, arch=arch)
            data = _improvements(workload, CONV_POLICIES, include_streamk=False)
            rows.append(
                {
                    "model": model,
                    "channels": channel,
                    "batch": batch,
                    "convs": spec.convs_per_layer,
                    **data,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 8 — end-to-end inference reductions
# ----------------------------------------------------------------------
def figure8_end_to_end(
    llm_configs: Sequence[Tuple[int, int, int]] = ((1, 512, 0), (1, 1024, 0), (1, 512, 512)),
    vision_batches: Sequence[int] = (1, 8),
    arch: GpuArchitecture = TESLA_V100,
    include_llama: bool = True,
    include_vision: bool = True,
) -> List[Dict[str, object]]:
    """Reproduce Figure 8: end-to-end inference-time reduction per model.

    ``llm_configs`` lists ``(batch, seq, cached)`` triples; vision models run
    over ``vision_batches``.
    """
    rows: List[Dict[str, object]] = []
    llm_models = [GPT3_145B] + ([LLAMA_65B] if include_llama else [])
    for config in llm_models:
        for batch, seq, cached in llm_configs:
            layer = TransformerLayer(config=config, batch=batch, seq=seq, cached=cached, arch=arch)
            estimate = layer.estimate()
            rows.append(
                {
                    "model": config.name,
                    "batch": batch,
                    "seq": seq,
                    "cached": cached,
                    "streamsync_us": estimate.streamsync_us,
                    "cusync_us": estimate.cusync_us,
                    "reduction": estimate.improvement,
                }
            )
    if include_vision:
        for vision_config in (resnet38_config(), vgg19_config()):
            for batch in vision_batches:
                model = VisionModel(config=vision_config, batch=batch, arch=arch)
                estimate = model.estimate()
                rows.append(
                    {
                        "model": vision_config.name,
                        "batch": batch,
                        "seq": None,
                        "cached": None,
                        "streamsync_us": estimate.streamsync_us,
                        "cusync_us": estimate.cusync_us,
                        "reduction": estimate.improvement,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# The five evaluation workloads, shared by the cross-cutting experiments
# ----------------------------------------------------------------------
def _model_workloads(
    batch_seq: int,
    seq: int,
    conv_batch: int,
    conv_channels: int,
    arch: Optional[GpuArchitecture] = None,
) -> List[Tuple[Workload, Tuple[str, ...]]]:
    """The five model workloads paired with their policy families.

    Shared by :func:`policy_ablation` and :func:`arch_comparison` so the
    two experiments stay comparable workload for workload.  ``arch=None``
    leaves each workload on its default (V100-tuned) configuration, which
    is what the arch axis reuses across architectures.
    """
    resnet_spec = {spec.channels: spec for spec in RESNET38_LAYERS}[conv_channels]
    vgg_spec = {spec.channels: spec for spec in VGG19_LAYERS}[conv_channels]
    kwargs = {} if arch is None else {"arch": arch}
    return [
        (GptMlp(config=GPT3_145B, batch_seq=batch_seq, **kwargs), ("TileSync", "RowSync")),
        (
            LlamaMlp(config=LLAMA_65B, batch_seq=batch_seq, **kwargs),
            ("TileSync", "RowSync", "StridedTileSync"),
        ),
        (Attention(config=GPT3_145B, batch=1, seq=seq, cached=0, **kwargs), LLM_POLICIES),
        (ConvChain(resnet_spec, batch=conv_batch, **kwargs), CONV_POLICIES),
        (ConvChain(vgg_spec, batch=conv_batch, **kwargs), CONV_POLICIES),
    ]


# ----------------------------------------------------------------------
# Policy-space ablation — uniform families vs mixed per-edge assignments
# ----------------------------------------------------------------------
def policy_ablation(
    arch: GpuArchitecture = TESLA_V100,
    batch_seq: int = 512,
    seq: int = 512,
    conv_batch: int = 1,
    conv_channels: int = 256,
) -> List[Dict[str, object]]:
    """Compare synchronization policies — including mixed per-edge
    assignments — across the five model workloads.

    This experiment exercises the first-class policy API end to end: every
    workload's graph is built once, uniform family points come from
    :func:`repro.pipeline.sweep_policies`, mixed points are hand-written
    :class:`~repro.cusync.PolicyAssignment` grids (e.g. the attention
    QKV → scores edge under ``StridedTileSync`` while its sibling
    softmax → values edge uses ``RowSync``), and the whole multi-graph
    batch is evaluated by **one** ``Session.sweep`` call in thread mode
    (the attention and LLaMA graphs carry closure range maps, so the
    thread pool is what makes this batch concurrent).

    Returns one row per (workload, policy) with the improvement over that
    workload's StreamSync baseline.
    """
    workloads = _model_workloads(batch_seq, seq, conv_batch, conv_channels, arch=arch)

    def mixed_assignment(graph: PipelineGraph) -> Optional[PolicyAssignment]:
        """A representative per-edge mix for each workload family."""
        name = graph.name or ""
        edges = [(edge.producer, edge.consumer, edge.tensor) for edge in graph.edges]
        if not edges:
            return None
        if name.startswith("attn"):
            return PolicyAssignment(
                default="TileSync",
                edges={
                    ("attn_qkv", "attn_scores"): "StridedTileSync",
                    ("attn_softmax", "attn_values", "R"): "RowSync",
                },
            )
        if name.startswith("llama_mlp"):
            return PolicyAssignment(default="RowSync", edges={edges[0]: "StridedTileSync"})
        if name.startswith("conv_chain"):
            return PolicyAssignment(
                default="Conv2DTileSync", edges={edges[len(edges) // 2]: "RowSync"}
            )
        return PolicyAssignment(default="TileSync", edges={edges[0]: "RowSync"})

    session = Session(arch=arch)
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for workload, families in workloads:
        graph = workload.to_graph()
        work.append((graph, SweepPoint(scheme="streamsync", policy=None, arch=arch)))
        work.extend(sweep_policies(graph, families, arches=(arch,)))
        mixed = mixed_assignment(graph)
        if mixed is not None:
            work.append((graph, SweepPoint(scheme="cusync", policy=mixed, arch=arch)))

    results = session.sweep(work, mode="thread")
    baselines = {
        result.graph_label: result.total_time_us
        for result in results
        if result.scheme == "streamsync"
    }
    rows: List[Dict[str, object]] = []
    for result in results:
        baseline = baselines[result.graph_label]
        label = result.policy_label if result.scheme == "cusync" else result.scheme
        mixed_point = isinstance(result.policy, PolicyAssignment) and bool(result.policy.edges)
        rows.append(
            {
                "workload": result.graph_label,
                "policy": label,
                "mixed": mixed_point,
                "total_time_us": result.total_time_us,
                "wait_time_us": result.total_wait_time_us,
                "improvement": (baseline - result.total_time_us) / baseline,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Cross-architecture comparison — the Figure 6/7/8 story per architecture
# ----------------------------------------------------------------------
def arch_comparison(
    arches: Sequence = ("V100", "A100", "H100-SXM", "RTX-4090"),
    batch_seq: int = 512,
    seq: int = 512,
    conv_batch: int = 1,
    conv_channels: int = 256,
    include_end_to_end: bool = True,
    mode: str = "thread",
    cache_stats: Optional[Dict[str, object]] = None,
    tuned: bool = False,
) -> List[Dict[str, object]]:
    """Reproduce the paper's speedup story per GPU architecture.

    The paper evaluates on one V100 and notes the scheme carries to
    Ampere; this experiment asks the quantitative question across the
    registered architecture axis: for each of the five model workloads
    (the Figure 6 MLP/attention blocks, the Figure 7 conv chains) and each
    architecture, how much of the StreamSync time does the best cuSync
    policy recover?  Each workload's graph is built **once** and re-run
    under every ``(arch, scheme, policy)`` point — kernels are re-bound
    per run, never rebuilt — via one multi-graph ``Session.sweep`` in
    ``mode`` (thread by default: the attention and LLaMA graphs carry
    closure range maps).  ``arches`` accepts registered names,
    :class:`~repro.gpu.arch.ArchSpec` values (including
    ``ArchSpec(...).scaled(...)`` what-ifs) and raw instances.

    With ``include_end_to_end=True`` a Figure 8-style end-to-end row per
    architecture (GPT-3 transformer-layer inference estimate) is appended.

    Returns one row per (workload, arch, policy) with the improvement over
    that workload's StreamSync baseline *on the same architecture*, plus a
    ``best`` flag marking each (workload, arch)'s winning policy.

    ``cache_stats``, when given a dict, measures the session's sweep-result
    cache on this grid: after the fresh sweep, the *same* work list is
    swept again — every point replays from cache — and the dict is filled
    with ``replay_s`` (wall time of the cached re-sweep), ``hits`` /
    ``misses`` / ``hit_rate`` and ``replay_identical`` (whether the
    replayed results matched the fresh ones bit for bit, ignoring the
    ``cached`` flag).  This is the regeneration scenario (re-deriving
    figure variants from one grid) that the cache exists for.

    ``tuned=True`` resolves the MLP workloads' tile configurations from
    the committed tuned-config table (``TUNED_CONFIGS.json``) **per
    architecture** instead of reusing the V100-tuned grids everywhere:
    each MLP gets one graph per arch (built with that arch's tuned tiles,
    swept only on that arch, StreamSync baseline included so improvements
    stay same-graph-same-arch), while the remaining workloads keep one
    shared graph across the arch axis.  Row keys are unchanged — the
    per-arch graphs report under the workload's base name — so tuned and
    untuned records are row-for-row comparable.
    """
    from repro.gpu.arch import resolve_arch
    from repro.pipeline import sweep_archs

    workloads = _model_workloads(batch_seq, seq, conv_batch, conv_channels)
    session = Session()
    work: List[Tuple[PipelineGraph, SweepPoint]] = []
    for workload, families in workloads:
        graph = workload.to_graph()
        if tuned and isinstance(workload, (GptMlp, LlamaMlp)):
            # One graph per arch, carrying that arch's tuned tiles; the
            # deterministic `@<arch>` rename keeps multi-graph sweep
            # labels unique (rows strip it below).
            for arch in arches:
                resolved = resolve_arch(arch)
                twin = type(workload)(
                    config=workload.config,
                    batch_seq=workload.batch_seq,
                    arch=resolved,
                    tuned=True,
                ).to_graph()
                twin = twin.renamed(f"{graph.name}@{resolved.name}")
                work.extend(
                    sweep_archs(
                        twin, (arch,), policies=families, schemes=("streamsync", "cusync")
                    )
                )
        else:
            work.extend(
                sweep_archs(graph, arches, policies=families, schemes=("streamsync", "cusync"))
            )
    results = session.sweep(work, mode=mode)

    if cache_stats is not None:
        replay_start = time.perf_counter()
        replayed = session.sweep(work, mode=mode)
        replay_s = time.perf_counter() - replay_start
        hits, misses = session.sweep_cache_hits, session.sweep_cache_misses
        cache_stats.update(
            replay_s=replay_s,
            hits=hits,
            misses=misses,
            hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            # SweepResult equality already ignores the ``cached`` flag.
            replay_identical=replayed == results,
        )

    baselines: Dict[Tuple[str, str], float] = {
        (result.graph_label, result.arch_name): result.total_time_us
        for result in results
        if result.scheme == "streamsync"
    }
    rows: List[Dict[str, object]] = []
    for result in results:
        baseline = baselines[(result.graph_label, result.arch_name)]
        label = result.policy_label if result.scheme == "cusync" else result.scheme
        rows.append(
            {
                # Per-arch tuned graphs are labelled `<name>@<arch>`; rows
                # report under the base workload name so tuned and untuned
                # records share row keys.
                "workload": result.graph_label.split("@", 1)[0],
                "arch": result.arch_name,
                "policy": label,
                "total_time_us": result.total_time_us,
                "wait_time_us": result.total_wait_time_us,
                "improvement": (baseline - result.total_time_us) / baseline,
                "best": False,
            }
        )
    # Flag the winning cusync policy per (workload, arch).
    by_group: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    for row in rows:
        if row["policy"] != "streamsync":
            by_group.setdefault((row["workload"], row["arch"]), []).append(row)
    for group in by_group.values():
        max(group, key=lambda row: row["improvement"])["best"] = True

    if include_end_to_end:
        for arch in arches:
            resolved = resolve_arch(arch)
            layer = TransformerLayer(
                config=GPT3_145B, batch=1, seq=seq, cached=0, arch=resolved,
                tuned=tuned,
            )
            estimate = layer.estimate()
            rows.append(
                {
                    "workload": "end_to_end_gpt3_layer",
                    "arch": resolved.name,
                    "policy": "best",
                    "total_time_us": estimate.cusync_us,
                    "wait_time_us": 0.0,
                    "improvement": estimate.improvement,
                    "best": True,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Section V-D — maximum synchronization overhead
# ----------------------------------------------------------------------
def overhead_experiment(
    arch: GpuArchitecture = TESLA_V100,
    blocks: Optional[int] = None,
) -> Dict[str, float]:
    """Reproduce the worst-case overhead study (Section V-D).

    Two copy kernels, one full wave of maximum-occupancy thread blocks,
    consumer block *i* depends on producer block *i*.  The paper measures
    2–3% overhead of cuSync over StreamSync.
    """
    cost_model = CostModel(arch=arch)
    copy_problem = CopyProblem.for_block_count(1, source="input", destination="mid")
    occupancy = CopyKernel("probe", copy_problem, cost_model=cost_model).occupancy()
    if blocks is None:
        blocks = arch.blocks_per_wave(occupancy)

    producer_problem = CopyProblem.for_block_count(blocks, source="input", destination="mid")
    consumer_problem = CopyProblem.for_block_count(blocks, source="mid", destination="output")
    producer = CopyKernel("copy_producer", producer_problem, cost_model=cost_model)
    consumer = CopyKernel(
        "copy_consumer", consumer_problem, sync_inputs=("mid",), cost_model=cost_model
    )
    # One graph, both schemes: the per-stage overrides pin the policy and
    # the +WRT flags regardless of the run-time family.
    graph = PipelineGraph(
        stages=[
            StageSpec(
                "copy_producer", producer, policy=TileSync(), optimizations=OptimizationFlags.wrt()
            ),
            StageSpec(
                "copy_consumer", consumer, policy=TileSync(), optimizations=OptimizationFlags.wrt()
            ),
        ],
        edges=[Edge("copy_producer", "copy_consumer", tensor="mid")],
    )
    session = Session(arch=arch, cost_model=cost_model)
    streamsync_us = session.run(graph, scheme="streamsync").total_time_us
    cusync_us = session.run(graph, scheme="cusync").total_time_us
    return {
        "blocks_per_kernel": float(blocks),
        "occupancy": float(occupancy),
        "streamsync_us": streamsync_us,
        "cusync_us": cusync_us,
        "overhead": (cusync_us - streamsync_us) / streamsync_us,
    }


# ----------------------------------------------------------------------
# Serving — request-level latency percentiles under open-loop load
# ----------------------------------------------------------------------
def serving_comparison(
    requests: int = 48,
    rate_rps: float = 400.0,
    seed: int = 7,
    schemes: Sequence[str] = ("streamsync", "streamk", "cusync"),
    policy: str = "TileSync",
    config=None,
    slo_us: float = 5_000.0,
    session: Optional[Session] = None,
) -> List[Dict[str, object]]:
    """Request-level serving comparison: one scenario, every scheme.

    This is where the paper's per-kernel-launch improvement compounds:
    under open-loop Poisson load, per-iteration latency differences feed
    back through the queue, so a scheme that shaves each iteration also
    drains the queue faster and cuts the p99 *more* than the per-run
    speedup alone suggests.  One seeded
    :class:`~repro.serving.ServingScenario` (arrivals *and* length mix
    pinned by ``seed``) runs under every scheme through a shared
    :class:`~repro.pipeline.Session`, so each report's cache counters
    describe that scheme's run alone.

    Returns one row per scheme: the
    :meth:`~repro.serving.LatencyReport.summary` dict (percentiles,
    TTFT, throughput, goodput and cache-hit counters) — deterministic
    for fixed arguments, which is what the benchmark gate relies on.
    """
    from repro.models.config import TransformerConfig
    from repro.serving import PoissonArrivals, ServingScenario, compare_schemes

    if config is None:
        config = TransformerConfig(
            name="srv-small", hidden=256, layers=2, tensor_parallel=8
        )
    scenario = ServingScenario(
        arrivals=PoissonArrivals(
            rate_rps=rate_rps,
            prompt_tokens=(16, 96),
            decode_tokens=(2, 8),
            seed=seed,
        ),
        requests=requests,
        config=config,
        max_batch=4,
        max_kv_tokens=2048,
        max_prefill_tokens=256,
        slo_us=slo_us,
    )
    reports = compare_schemes(
        scenario, schemes=schemes, policy=policy, session=session
    )
    return [reports[scheme].summary() for scheme in schemes]
