"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render a fractional improvement as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned plain-text table (paper-style)."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append(line(["-" * width for width in widths]))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
