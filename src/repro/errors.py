"""Exception hierarchy for the cuSync reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything the library raises with a single except clause while still
being able to distinguish simulator deadlocks from DSL compile errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SimulationError(ReproError):
    """A failure inside the GPU simulator (inconsistent state, bad launch)."""


class DeadlockError(SimulationError):
    """The simulated GPU cannot make progress.

    Raised when every occupied SM slot is busy-waiting on a semaphore that no
    runnable thread block will ever post — exactly the failure mode the
    paper's wait-kernel mechanism exists to prevent (Section III-B).
    """

    def __init__(self, message: str, waiting_blocks=None):
        super().__init__(message)
        #: Descriptions of the blocks that were stuck when the deadlock was
        #: detected, useful for debugging synchronization policies.
        self.waiting_blocks = list(waiting_blocks or [])


class SynchronizationError(ReproError):
    """A synchronization policy or dependency declaration is inconsistent."""


class GraphValidationError(ReproError):
    """A declarative :class:`~repro.pipeline.PipelineGraph` is malformed.

    Raised at graph *construction* time — duplicate stage names, edges that
    reference unknown stages (dangling edges), edges whose tensor is not
    produced by their producer stage, and dependency cycles are all rejected
    before any executor sees the graph.
    """


class DataRaceError(SynchronizationError):
    """A consumer tile read data before its producer tile posted.

    Only detectable in functional simulation mode, where kernels track which
    tiles of each tensor have actually been written.
    """


class DslError(ReproError):
    """Base class for errors raised by the cuSyncGen DSL front end."""


class DslBoundsError(DslError):
    """A dependency references a producer tile outside the producer grid."""


class CodegenError(ReproError):
    """The policy / tile-order generator could not handle a dependence."""


class ModelConfigError(ReproError):
    """An ML model configuration is inconsistent (shapes, parallelism)."""
