"""Exception hierarchy for the cuSync reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything the library raises with a single except clause while still
being able to distinguish simulator deadlocks from DSL compile errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SimulationError(ReproError):
    """A failure inside the GPU simulator (inconsistent state, bad launch)."""


@dataclass(frozen=True)
class SemaphoreWaiter:
    """One blocked semaphore wait at the moment a deadlock was detected.

    A forensic record: which block was stuck, which semaphore it was
    polling, the threshold it needed and the value the semaphore actually
    held.  ``deficit`` is the nearest-miss delta — a deficit of 1 usually
    means an off-by-one in the policy's expected-value computation, while a
    huge deficit points at a producer that never ran at all.
    """

    #: Human-readable name of the blocked thread block.
    block: str
    #: Semaphore array the block is polling.
    array: str
    #: Index within the array.
    index: int
    #: Threshold the wait requires the semaphore to reach.
    required: int
    #: Value the semaphore actually held when the deadlock was detected.
    observed: int

    @property
    def deficit(self) -> int:
        """How far the semaphore was from satisfying the wait."""
        return self.required - self.observed

    def describe(self) -> str:
        return (
            f"{self.block} waits {self.array}[{self.index}] >= {self.required} "
            f"(observed {self.observed}, short by {self.deficit})"
        )


class DeadlockError(SimulationError):
    """The simulated GPU cannot make progress.

    Raised when every occupied SM slot is busy-waiting on a semaphore that no
    runnable thread block will ever post — exactly the failure mode the
    paper's wait-kernel mechanism exists to prevent (Section III-B).

    Beyond the stuck block names (:attr:`waiting_blocks`), the simulator
    attaches wait-graph forensics: one :class:`SemaphoreWaiter` per blocked
    threshold (:attr:`waiters`, with observed values and nearest-miss
    deltas) and, when the blocked blocks wait on each other's future posts,
    the dependency cycle (:attr:`cycle`).
    """

    def __init__(
        self,
        message: str,
        waiting_blocks=None,
        waiters: Optional[Sequence[SemaphoreWaiter]] = None,
        cycle: Optional[Sequence[str]] = None,
    ):
        super().__init__(message)
        #: Descriptions of the blocks that were stuck when the deadlock was
        #: detected, useful for debugging synchronization policies.
        self.waiting_blocks = list(waiting_blocks or [])
        #: Per-waiter forensics: blocked thresholds with observed values.
        self.waiters: List[SemaphoreWaiter] = list(waiters or [])
        #: Block names forming a wait cycle (block *i* waits on a semaphore
        #: only block *i+1* could still post), or ``None`` when the deadlock
        #: is not cyclic (e.g. the producer kernel was never launched).
        self.cycle: Optional[List[str]] = list(cycle) if cycle else None

    def report(self) -> str:
        """Multi-line forensic report of every blocked waiter."""
        lines = [str(self)]
        for waiter in self.waiters:
            lines.append("  " + waiter.describe())
        if self.cycle:
            lines.append("  dependency cycle: " + " -> ".join(self.cycle + [self.cycle[0]]))
        return "\n".join(lines)


class LivelockError(SimulationError):
    """The simulation ran past a watchdog limit without completing.

    Unlike a :class:`DeadlockError` (no runnable work at all), a livelock
    keeps producing events without finishing blocks — e.g. a custom policy
    re-posting in a loop.  The watchdog trips on either the event-count
    guard (``max_events``) or the simulated-time guard (``max_sim_time_us``)
    and records where the run stood.
    """

    def __init__(
        self,
        message: str,
        guard: str = "max_events",
        events_processed: int = 0,
        simulated_time_us: float = 0.0,
        completed_blocks: int = 0,
        total_blocks: int = 0,
        limit: float = 0.0,
    ):
        super().__init__(message)
        #: Which guard tripped: ``"max_events"`` or ``"max_sim_time_us"``.
        self.guard = guard
        self.events_processed = events_processed
        self.simulated_time_us = simulated_time_us
        self.completed_blocks = completed_blocks
        self.total_blocks = total_blocks
        self.limit = limit


class SweepPointError(SimulationError):
    """A sweep point failed in a worker and the original exception could
    not be transported back (e.g. an unpicklable exception type raised in a
    worker process).  The original traceback text is preserved verbatim in
    :attr:`traceback_text` and included in the message, so the failure is
    debuggable without re-running the point in-process.
    """

    def __init__(
        self,
        message: str,
        point_label: str = "",
        attempts: int = 1,
        error_type: str = "",
        traceback_text: str = "",
    ):
        if traceback_text:
            message = f"{message}\n--- original traceback ---\n{traceback_text.rstrip()}"
        super().__init__(message)
        self.point_label = point_label
        self.attempts = attempts
        self.error_type = error_type
        self.traceback_text = traceback_text


class FaultInjectionError(ReproError):
    """Base class for failures raised *by* injected faults (chaos testing).

    These never occur outside an active
    :class:`~repro.testing.faults.FaultPlan`; the sweep layer treats them
    like any other point failure (retry, collect, or raise).
    """


class InjectedFaultError(FaultInjectionError):
    """An ``error`` fault fired: the evaluation raised deterministically."""


class InjectedCrashError(FaultInjectionError):
    """A ``crash`` fault fired outside a worker process.

    In ``mode="process"`` a crash fault kills the worker with ``os._exit``
    (producing a ``BrokenProcessPool``); in serial and thread modes the
    process cannot be sacrificed, so the crash degrades to this exception.
    """


class SynchronizationError(ReproError):
    """A synchronization policy or dependency declaration is inconsistent."""


class GraphValidationError(ReproError):
    """A declarative :class:`~repro.pipeline.PipelineGraph` is malformed.

    Raised at graph *construction* time — duplicate stage names, edges that
    reference unknown stages (dangling edges), edges whose tensor is not
    produced by their producer stage, and dependency cycles are all rejected
    before any executor sees the graph.
    """


class DataRaceError(SynchronizationError):
    """A consumer tile read data before its producer tile posted.

    Only detectable in functional simulation mode, where kernels track which
    tiles of each tensor have actually been written.
    """


class DslError(ReproError):
    """Base class for errors raised by the cuSyncGen DSL front end."""


class DslBoundsError(DslError):
    """A dependency references a producer tile outside the producer grid."""


class CodegenError(ReproError):
    """The policy / tile-order generator could not handle a dependence."""


class ModelConfigError(ReproError):
    """An ML model configuration is inconsistent (shapes, parallelism)."""


class TuningError(ReproError):
    """An autotuning request is inconsistent or incomplete.

    Raised by :mod:`repro.tune` for malformed search spaces (empty axes,
    unknown stage names in a tile choice) and by
    :class:`repro.dsl.autotune.TuningResult` when a derived quantity is
    requested that the tuning run never measured — e.g.
    ``streamsync_time_us`` when no StreamSync baseline was part of the
    run.  Structured replacement for the bare ``KeyError`` the legacy
    tuner used to leak.
    """


class ServingError(ReproError):
    """A serving scenario is inconsistent (arrivals, budgets, admission).

    Raised by :mod:`repro.serving` when a traffic description cannot be
    realized: non-positive rates or token counts, an unsorted replay
    trace, or a request whose KV footprint exceeds the batcher's budget
    and therefore could never be admitted.
    """


class ServingStallError(ServingError):
    """The serving loop ran past a watchdog limit without resolving every
    request.

    The serving analogue of :class:`LivelockError`: instead of spinning
    until the heat death of the universe (an overloaded scenario under the
    ``"none"`` shedding policy grows its queue without bound), the
    :class:`~repro.serving.ServingSimulator` watchdogs trip on either the
    iteration-count guard (``max_iterations``) or the simulated-time guard
    (``max_sim_time_us``) and attach queue forensics: how deep the
    admission queue was, which request had been waiting longest and for
    how long, and how much KV budget the running batch held when the loop
    was declared stalled.
    """

    def __init__(
        self,
        message: str,
        guard: str = "max_iterations",
        iterations: int = 0,
        simulated_time_us: float = 0.0,
        completed: int = 0,
        shed: int = 0,
        total_requests: int = 0,
        queue_depth: int = 0,
        running: int = 0,
        kv_reserved: int = 0,
        oldest_request_id: Optional[int] = None,
        oldest_waited_us: float = 0.0,
        limit: float = 0.0,
    ):
        super().__init__(message)
        #: Which guard tripped: ``"max_iterations"`` or ``"max_sim_time_us"``.
        self.guard = guard
        self.iterations = iterations
        self.simulated_time_us = simulated_time_us
        self.completed = completed
        self.shed = shed
        self.total_requests = total_requests
        #: Admission-queue depth at the moment the watchdog tripped.
        self.queue_depth = queue_depth
        #: Sequences running in the batch when the watchdog tripped.
        self.running = running
        #: KV tokens reserved by the running batch.
        self.kv_reserved = kv_reserved
        #: The longest-waiting queued request (``None`` for an empty queue).
        self.oldest_request_id = oldest_request_id
        self.oldest_waited_us = oldest_waited_us
        self.limit = limit

    def report(self) -> str:
        """Multi-line forensic report of the stalled serving loop."""
        lines = [
            str(self),
            f"  guard: {self.guard} (limit {self.limit})",
            f"  iterations: {self.iterations}, simulated {self.simulated_time_us:.1f}us",
            f"  resolved: {self.completed} completed + {self.shed} shed "
            f"of {self.total_requests}",
            f"  queue depth: {self.queue_depth}, running: {self.running}, "
            f"kv reserved: {self.kv_reserved}",
        ]
        if self.oldest_request_id is not None:
            lines.append(
                f"  oldest queued request: {self.oldest_request_id} "
                f"(waited {self.oldest_waited_us:.1f}us)"
            )
        return "\n".join(lines)
