"""Regenerate the committed ``TUNED_CONFIGS.json`` artifact.

Usage::

    PYTHONPATH=src python -m repro.tune [--output PATH] [--strategy grid|halving]
                                        [--arches A100 H100-SXM RTX-4090]
                                        [--mode thread] [--batch-seq 512]

Tunes the preset MLP spaces per architecture and writes the merged
best-known-config table.  Tesla V100 is deliberately *not* tuned: the
models' built-in defaults are the paper's V100-tuned Table-IV grids, and
keeping V100 out of the table keeps that reproduction byte-stable (the
resolver falls back to the defaults, without warning, on V100).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.pipeline.session import Session
from repro.tune.presets import gpt3_mlp_space, llama_mlp_space
from repro.tune.strategies import GridSearch, SuccessiveHalving
from repro.tune.table import DEFAULT_TABLE_PATH, TunedConfigTable, reset_default_table
from repro.tune.tuner import Tuner


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(DEFAULT_TABLE_PATH))
    parser.add_argument("--strategy", choices=("grid", "halving"), default="halving")
    parser.add_argument(
        "--arches", nargs="+", default=["A100", "H100-SXM", "RTX-4090"]
    )
    parser.add_argument("--mode", default="thread", choices=("serial", "thread", "process"))
    parser.add_argument("--batch-seq", type=int, default=512)
    args = parser.parse_args(argv)

    spaces = [
        gpt3_mlp_space(batch_seq=args.batch_seq, arches=tuple(args.arches)),
        llama_mlp_space(batch_seq=args.batch_seq, arches=tuple(args.arches)),
    ]
    strategy_for = lambda: (
        GridSearch() if args.strategy == "grid" else SuccessiveHalving(eta=2)
    )

    table = TunedConfigTable()
    tuner = Tuner(session=Session(), mode=args.mode)
    start = time.perf_counter()
    for space in spaces:
        report = tuner.tune(space, strategy_for())
        print(report.summary())
        for entry in report.entries:
            table.put(entry)
    elapsed = time.perf_counter() - start

    table.save(args.output)
    reset_default_table()
    print(
        f"wrote {len(table)} entries to {args.output} in {elapsed:.1f}s "
        f"({tuner.session.sweep_cache_misses} simulations, "
        f"{tuner.session.sweep_cache_hits} cache hits)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
