"""The committed best-known-config table: workload × arch → tuned configs.

``TUNED_CONFIGS.json`` at the repo root is the durable output of
:mod:`repro.tune`: for each ``(workload key, architecture)`` pair it
records the winning tile configuration (one
:class:`~repro.kernels.gemm.GemmConfig` per stage, or ``None`` when the
workload's own default tile won), the winning policy, and the measured
times.  Model constructors resolve it through
:func:`tuned_gemm_configs` when built with ``tuned=True``.

Fallback semantics (the per-arch bugfix this table exists for): the
seed's tile grids are the paper's **V100**-tuned Table-IV values, and
every other architecture used to silently reuse them.  With the table in
place, an arch without a tuned entry still falls back to those V100
grids — but *explicitly*, with a one-time :class:`RuntimeWarning` per
``(workload, arch)`` naming the fallback.  Tesla V100 itself never
warns: the V100 grids **are** its tuned configuration (the table
deliberately carries no V100 entries, keeping the paper's Table-IV
reproduction byte-stable).

The artifact path can be overridden with the ``REPRO_TUNED_CONFIGS``
environment variable (tests point it at temporary tables); a missing
file resolves to an empty table, i.e. V100 fallback everywhere.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

from repro.errors import TuningError
from repro.gpu.arch import ArchLike, TESLA_V100, resolve_arch
from repro.kernels.gemm import GemmConfig

#: Environment variable overriding the default artifact path.
TUNED_CONFIGS_ENV = "REPRO_TUNED_CONFIGS"

#: The committed artifact at the repository root.
DEFAULT_TABLE_PATH = Path(__file__).resolve().parents[3] / "TUNED_CONFIGS.json"

#: Schema version of the serialized artifact.
TABLE_VERSION = "tuned-configs/v1"

_CONFIG_FIELDS = (
    "tile_m",
    "tile_n",
    "tile_k",
    "split_k",
    "threads_per_block",
    "pipeline_stages",
)


def encode_gemm_config(config: GemmConfig) -> Dict[str, int]:
    """JSON-safe encoding of a :class:`GemmConfig` (all six fields)."""
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


def decode_gemm_config(payload: Mapping[str, int]) -> GemmConfig:
    unknown = set(payload) - set(_CONFIG_FIELDS)
    if unknown:
        raise TuningError(f"unknown GemmConfig fields in tuned entry: {sorted(unknown)}")
    return GemmConfig(**{name: int(payload[name]) for name in _CONFIG_FIELDS if name in payload})


@dataclass(frozen=True)
class TunedEntry:
    """One row of the table: the best known configuration of a workload
    on one architecture.

    ``configs`` maps stage names to tile configurations as a sorted tuple
    of pairs (hashable); ``None`` means the workload's own default tile
    configuration won the search — the model then builds exactly the
    graph it would have built untuned, so tuned and untuned graphs share
    cache entries.  ``baseline_us`` is the StreamSync time on the default
    tile, ``default_best_us`` the best searched policy's time on the
    default tile (when the search covered it) — together they show what
    the tuned configuration actually bought.
    """

    workload: str
    arch: str
    policy: str
    time_us: float
    baseline_us: float
    default_best_us: Optional[float] = None
    tile: str = "default"
    configs: Optional[Tuple[Tuple[str, GemmConfig], ...]] = None

    def config_map(self) -> Optional[Dict[str, GemmConfig]]:
        """The per-stage tile configs as a dict, or ``None`` for default."""
        if self.configs is None:
            return None
        return dict(self.configs)

    @property
    def improvement_vs_default(self) -> Optional[float]:
        """Fractional win of the tuned config over the default tile's best
        searched policy (``None`` when the search did not measure it)."""
        if self.default_best_us is None or self.default_best_us <= 0:
            return None
        return 1.0 - self.time_us / self.default_best_us

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "workload": self.workload,
            "arch": self.arch,
            "policy": self.policy,
            "time_us": self.time_us,
            "baseline_us": self.baseline_us,
            "tile": self.tile,
        }
        if self.default_best_us is not None:
            payload["default_best_us"] = self.default_best_us
        if self.configs is not None:
            payload["configs"] = {
                stage: encode_gemm_config(config) for stage, config in self.configs
            }
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "TunedEntry":
        try:
            configs_raw = payload.get("configs")
            configs: Optional[Tuple[Tuple[str, GemmConfig], ...]] = None
            if configs_raw is not None:
                configs = tuple(
                    sorted(
                        (str(stage), decode_gemm_config(entry))
                        for stage, entry in configs_raw.items()
                    )
                )
            default_best = payload.get("default_best_us")
            return cls(
                workload=str(payload["workload"]),
                arch=str(payload["arch"]),
                policy=str(payload["policy"]),
                time_us=float(payload["time_us"]),
                baseline_us=float(payload["baseline_us"]),
                default_best_us=float(default_best) if default_best is not None else None,
                tile=str(payload.get("tile", "default")),
                configs=configs,
            )
        except TuningError:
            raise
        except Exception as exc:
            raise TuningError(f"malformed tuned entry: {exc!r}") from exc


class TunedConfigTable:
    """An in-memory ``workload × arch → TunedEntry`` mapping with JSON I/O."""

    def __init__(self, entries: Iterable[TunedEntry] = ()) -> None:
        self._entries: Dict[Tuple[str, str], TunedEntry] = {}
        for entry in entries:
            self.put(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, entry: TunedEntry) -> None:
        self._entries[(entry.workload, entry.arch)] = entry

    def get(self, workload: str, arch: ArchLike) -> Optional[TunedEntry]:
        """The entry for ``(workload, arch)``, or ``None``.

        ``arch`` accepts anything :func:`~repro.gpu.arch.resolve_arch`
        does — entries key by the resolved architecture *name*.
        """
        return self._entries.get((workload, resolve_arch(arch).name))

    def entries(self) -> Tuple[TunedEntry, ...]:
        return tuple(self._entries[key] for key in sorted(self._entries))

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "version": TABLE_VERSION,
            "entries": [entry.to_json() for entry in self.entries()],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "TunedConfigTable":
        version = payload.get("version")
        if version != TABLE_VERSION:
            raise TuningError(
                f"unsupported tuned-config table version {version!r} "
                f"(expected {TABLE_VERSION!r})"
            )
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise TuningError("tuned-config table 'entries' must be a list")
        return cls(TunedEntry.from_json(entry) for entry in raw_entries)

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        text = json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TunedConfigTable":
        """Load a table from disk; a missing file is an *empty* table."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise TuningError(f"corrupt tuned-config table at {path}: {exc}") from exc
        return cls.from_json(payload)


# ----------------------------------------------------------------------
# The process-wide default table (lazy; overridable via environment)
# ----------------------------------------------------------------------
_default_table: Optional[TunedConfigTable] = None
_default_lock = threading.Lock()
_warned_fallbacks: Set[Tuple[str, str]] = set()


def table_path() -> Path:
    """The artifact path the default table loads from."""
    override = os.environ.get(TUNED_CONFIGS_ENV)
    return Path(override) if override else DEFAULT_TABLE_PATH


def default_table() -> TunedConfigTable:
    """The lazily-loaded process-wide table (see :func:`table_path`)."""
    global _default_table
    with _default_lock:
        if _default_table is None:
            _default_table = TunedConfigTable.load(table_path())
        return _default_table


def reset_default_table() -> None:
    """Drop the cached default table and the one-time-warning memory.

    Call after changing ``REPRO_TUNED_CONFIGS`` or rewriting the artifact
    (tests do; ``python -m repro.tune`` does after regenerating).
    """
    global _default_table
    with _default_lock:
        _default_table = None
        _warned_fallbacks.clear()


def tuned_gemm_configs(
    workload: str,
    arch: ArchLike,
    table: Optional[TunedConfigTable] = None,
) -> Optional[Dict[str, GemmConfig]]:
    """Resolve the tuned per-stage tile configs for ``(workload, arch)``.

    Returns ``None`` when the caller should use its own default
    configuration: either the table has no entry for this pair (V100
    fallback — warns once per pair, except on Tesla V100 itself, whose
    defaults are the paper's tuned grids), or the entry records that the
    default tile won the search.
    """
    resolved = resolve_arch(arch)
    lookup = table if table is not None else default_table()
    entry = lookup.get(workload, resolved.name)
    if entry is None:
        if resolved.name != TESLA_V100.name:
            key = (workload, resolved.name)
            with _default_lock:
                first_time = key not in _warned_fallbacks
                _warned_fallbacks.add(key)
            if first_time:
                warnings.warn(
                    f"no tuned tile configs for workload {workload!r} on "
                    f"{resolved.name!r}; falling back to the V100-tuned "
                    f"defaults (run `python -m repro.tune` to tune)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return None
    return entry.config_map()
