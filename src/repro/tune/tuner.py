"""The tuner: one strategy over one space through one ``Session``.

:meth:`Tuner.tune` measures per-arch StreamSync baselines on the default
tile, drives the strategy's candidate visits through
:meth:`Session.sweep <repro.pipeline.session.Session.sweep>`, and folds
everything into a :class:`TuneReport`: the full trial log (one
:class:`Trial` per evaluation, including cached replays), per-arch
winners, cache-exploitation counters and ready-to-commit
:class:`~repro.tune.table.TunedEntry` rows.

Because every measurement goes through the session's sweep caches, a
rerun of the same tune against a warm session (or a session backed by a
populated :class:`~repro.service.store.SweepResultStore`) replays every
previously-visited point — ``novel_simulations == 0`` — and produces a
bit-identical trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TuningError
from repro.gpu.arch import resolve_arch
from repro.pipeline.session import Session, SweepResult
from repro.tune.space import Candidate, DEFAULT_TILE, SearchSpace
from repro.tune.strategies import GridSearch, SearchStrategy
from repro.tune.table import TunedEntry


@dataclass(frozen=True)
class Trial:
    """One evaluation the tuner performed (baselines use ``rung=-1``)."""

    rung: int
    arch: str
    tile: str
    policy: str
    scheme: str
    time_us: float
    wait_time_us: float
    #: Replayed from the sweep cache / result store instead of simulated.
    cached: bool

    @property
    def is_baseline(self) -> bool:
        return self.rung < 0


@dataclass(frozen=True)
class TuneReport:
    """Everything one :meth:`Tuner.tune` run produced."""

    space: str
    strategy: str
    trials: Tuple[Trial, ...]
    #: Ready-to-commit table rows, one per arch (winner of the search).
    entries: Tuple[TunedEntry, ...]
    #: Sweep-cache replays during this run (in-memory tier).
    cache_hits: int
    #: Result-store replays during this run (persistent tier).
    store_hits: int
    #: Points that actually simulated (cache+store misses).
    novel_simulations: int

    def baseline_for(self, arch: str) -> float:
        """StreamSync time on the default tile for ``arch``."""
        for trial in self.trials:
            if trial.is_baseline and trial.arch == arch:
                return trial.time_us
        raise TuningError(f"no baseline was measured for arch {arch!r}")

    def best_for(self, arch: str) -> Trial:
        """The fastest search trial for ``arch`` (earliest on ties)."""
        best: Optional[Trial] = None
        for trial in self.trials:
            if trial.is_baseline or trial.arch != arch:
                continue
            if best is None or trial.time_us < best.time_us:
                best = trial
        if best is None:
            raise TuningError(f"the search visited no candidates for arch {arch!r}")
        return best

    def winners(self) -> Dict[str, Trial]:
        """Per-arch winning trials, keyed by resolved arch name."""
        arches: List[str] = []
        for trial in self.trials:
            if not trial.is_baseline and trial.arch not in arches:
                arches.append(trial.arch)
        return {arch: self.best_for(arch) for arch in arches}

    def trajectory(self) -> Tuple[Tuple[int, str, str, str, float], ...]:
        """The search's visit log: ``(rung, arch, tile, policy, time)``.

        Excludes the ``cached`` flag, so a cold run and its warm replay
        produce *equal* trajectories — the determinism tests' anchor.
        """
        return tuple(
            (trial.rung, trial.arch, trial.tile, trial.policy, trial.time_us)
            for trial in self.trials
            if not trial.is_baseline
        )

    def summary(self) -> str:
        lines = [
            f"tuned {self.space} [{self.strategy}]: "
            f"{len(self.trials)} trials, {self.novel_simulations} simulated, "
            f"{self.cache_hits} cache hits, {self.store_hits} store hits"
        ]
        for entry in self.entries:
            improvement = entry.improvement_vs_default
            vs_default = (
                f", {improvement:+.1%} vs default tile"
                if improvement is not None
                else ""
            )
            lines.append(
                f"  {entry.arch}: {entry.tile} + {entry.policy} = "
                f"{entry.time_us:.2f}us (streamsync {entry.baseline_us:.2f}us"
                f"{vs_default})"
            )
        return "\n".join(lines)


class Tuner:
    """Runs search strategies over a :class:`SearchSpace`.

    ``session`` defaults to a fresh :class:`Session`; pass a long-lived
    one (optionally backed by a ``result_store``) to make reruns replay
    from cache.  ``mode`` / ``workers`` forward to every underlying
    :meth:`Session.sweep` call; all modes are bit-identical.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        result_store=None,
        mode: Optional[str] = "serial",
        workers: Optional[int] = None,
    ) -> None:
        if session is None:
            session = Session(result_store=result_store)
        elif result_store is not None and session.result_store is None:
            session.result_store = result_store
        self.session = session
        self.mode = mode
        self.workers = workers

    # ------------------------------------------------------------------
    def tune(self, space: SearchSpace, strategy: Optional[SearchStrategy] = None) -> TuneReport:
        """Run ``strategy`` (default :class:`GridSearch`) over ``space``."""
        strategy = strategy if strategy is not None else GridSearch()
        session = self.session
        hits0 = session.sweep_cache_hits
        misses0 = session.sweep_cache_misses
        store0 = session.sweep_store_hits

        trials: List[Trial] = []

        # Per-arch StreamSync baselines on the default tile, recorded as
        # rung -1 trials.  The default-tile graph keeps the workload's
        # natural name, so these sweep entries are identical to the ones
        # an untuned `Session.sweep` of the workload would produce.
        baseline_graph = space.graph_for(DEFAULT_TILE)
        baseline_work = [
            (baseline_graph, space.baseline_point(arch)) for arch in space.arches
        ]
        for (graph, point), result in zip(
            baseline_work,
            session.sweep(baseline_work, mode=self.mode, workers=self.workers),
        ):
            trials.append(self._trial(-1, DEFAULT_TILE.label, point.scheme, result))

        def evaluate(batch: Sequence[Candidate], rung: int) -> List[float]:
            work = [(space.graph_for(c.tile), space.point_for(c)) for c in batch]
            results = session.sweep(work, mode=self.mode, workers=self.workers)
            times: List[float] = []
            for candidate, result in zip(batch, results):
                trials.append(
                    self._trial(rung, candidate.tile.label, space.scheme, result)
                )
                times.append(result.total_time_us)
            return times

        strategy.run(space.candidates(), evaluate)

        report = TuneReport(
            space=space.name,
            strategy=strategy.name,
            trials=tuple(trials),
            entries=self._entries(space, trials),
            cache_hits=session.sweep_cache_hits - hits0,
            store_hits=session.sweep_store_hits - store0,
            novel_simulations=session.sweep_cache_misses - misses0,
        )
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _trial(rung: int, tile: str, scheme: str, result: SweepResult) -> Trial:
        if not isinstance(result, SweepResult):
            raise TuningError(
                f"tuning requires successful evaluations, got {result!r}"
            )
        return Trial(
            rung=rung,
            arch=result.arch_name,
            tile=tile,
            policy=result.policy_label,
            scheme=scheme,
            time_us=result.total_time_us,
            wait_time_us=result.total_wait_time_us,
            cached=result.cached,
        )

    @staticmethod
    def _entries(space: SearchSpace, trials: Sequence[Trial]) -> Tuple[TunedEntry, ...]:
        tiles = {tile.label: tile for tile in space.tile_choices}
        tiles.setdefault(DEFAULT_TILE.label, DEFAULT_TILE)
        entries: List[TunedEntry] = []
        for arch in space.arches:
            arch_name = resolve_arch(arch).name
            best: Optional[Trial] = None
            baseline: Optional[Trial] = None
            default_best: Optional[float] = None
            for trial in trials:
                if trial.arch != arch_name:
                    continue
                if trial.is_baseline:
                    if baseline is None:
                        baseline = trial
                    continue
                if best is None or trial.time_us < best.time_us:
                    best = trial
                if trial.tile == DEFAULT_TILE.label and (
                    default_best is None or trial.time_us < default_best
                ):
                    default_best = trial.time_us
            if best is None or baseline is None:
                continue  # the strategy never visited this arch
            entries.append(
                TunedEntry(
                    workload=space.name,
                    arch=arch_name,
                    policy=best.policy,
                    time_us=best.time_us,
                    baseline_us=baseline.time_us,
                    default_best_us=default_best,
                    tile=best.tile,
                    configs=tiles[best.tile].configs,
                )
            )
        return tuple(entries)
