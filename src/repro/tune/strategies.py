"""Search strategies: grid, seeded random, successive halving.

Every strategy drives the same interface — ``run(candidates, evaluate)``
where ``evaluate(batch, rung)`` measures a batch of
:class:`~repro.tune.space.Candidate` values and returns their times in
batch order.  The tuner's evaluate callback routes each batch through
one :meth:`Session.sweep <repro.pipeline.session.Session.sweep>` call,
so strategies never talk to the simulator directly and inherit the
sweep cache's guarantees for free:

* Re-evaluating a candidate (successive-halving survivors are measured
  again on every rung) replays from cache — bit-identical, near-free.
* A strategy that aborts a candidate early never leaves a partial
  result anywhere: the cache and the result store only ever see
  complete :class:`~repro.pipeline.session.SweepResult` values produced
  by full point evaluations, so tuner-populated entries are
  byte-identical to entries a direct sweep of the same point writes.
* Seeded strategies are deterministic: same seed → same visit
  trajectory → same winner, in every sweep mode.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import TuningError
from repro.gpu.arch import resolve_arch
from repro.tune.space import Candidate

#: ``evaluate(batch, rung) -> times`` — measures a batch, in batch order.
EvaluateFn = Callable[[Sequence[Candidate], int], List[float]]


class SearchStrategy:
    """Base class; subclasses visit candidates through ``evaluate``."""

    name: str = ""

    def run(self, candidates: Sequence[Candidate], evaluate: EvaluateFn) -> None:
        raise NotImplementedError


class GridSearch(SearchStrategy):
    """Exhaustive: every candidate, one rung."""

    name = "grid"

    def run(self, candidates: Sequence[Candidate], evaluate: EvaluateFn) -> None:
        if candidates:
            evaluate(list(candidates), 0)


class RandomSearch(SearchStrategy):
    """A seeded uniform sample of the space, one rung.

    Sampling uses a private :class:`random.Random` seeded at
    construction, so the visit order — and therefore the search
    trajectory and the winner — is a pure function of
    ``(space, samples, seed)``.
    """

    def __init__(self, samples: int, seed: int = 0) -> None:
        if samples < 1:
            raise TuningError("RandomSearch needs samples >= 1")
        self.samples = samples
        self.seed = seed
        self.name = f"random(samples={samples}, seed={seed})"

    def run(self, candidates: Sequence[Candidate], evaluate: EvaluateFn) -> None:
        if not candidates:
            return
        rng = random.Random(self.seed)
        count = min(self.samples, len(candidates))
        evaluate(rng.sample(list(candidates), count), 0)


class SuccessiveHalving(SearchStrategy):
    """Rung-based elimination, independently per architecture.

    Candidates are grouped by their arch axis (per-arch winners are the
    tuner's output, so arches never compete with each other).  Each rung
    evaluates every surviving candidate and keeps the best
    ``ceil(n / eta)`` per group — survivors are *re-evaluated* on every
    rung, which costs nothing beyond the first measurement because the
    sweep cache replays them, and guarantees rung results are full
    evaluations rather than partial ones.  Ties break on earlier
    position in the deterministic candidate order.
    """

    def __init__(self, eta: int = 2) -> None:
        if eta < 2:
            raise TuningError("SuccessiveHalving needs eta >= 2")
        self.eta = eta
        self.name = f"halving(eta={eta})"

    def run(self, candidates: Sequence[Candidate], evaluate: EvaluateFn) -> None:
        if not candidates:
            return
        order: List[object] = []
        groups: Dict[object, List[Candidate]] = {}
        for candidate in candidates:
            key = resolve_arch(candidate.arch).name
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(candidate)
        rung = 0
        while True:
            active = [candidate for key in order for candidate in groups[key]]
            times = evaluate(active, rung)
            position = 0
            final = True
            for key in order:
                members = groups[key]
                scored: List[Tuple[float, int, Candidate]] = []
                for index, candidate in enumerate(members):
                    scored.append((times[position], index, candidate))
                    position += 1
                if len(members) > 1:
                    final = False
                    keep = max(1, math.ceil(len(members) / self.eta))
                    scored.sort(key=lambda entry: (entry[0], entry[1]))
                    groups[key] = [candidate for _, _, candidate in scored[:keep]]
            if final:
                return
            rung += 1
