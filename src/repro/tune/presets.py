"""Ready-made search spaces for the repo's tunable workloads.

Both MLP spaces search the same family of tile grids the paper's
Table IV draws from: producer/consumer tile shapes ``(tile_m, tile_n)``
in {128, 256}² with a small split-K ladder per stage, plus the
``default`` tile (the workload's V100-tuned grids) as the anchor the
winner must beat.  21 tile choices × policies × arches.

``gpt3_mlp_space`` graphs are fully picklable (every sweep mode works
and results persist to the store); ``llama_mlp_space`` graphs carry the
SwiGLU closure range map, so they sweep in serial/thread modes with
in-memory caching only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.arch import ArchLike
from repro.kernels.gemm import GemmConfig
from repro.models.config import GPT3_145B, LLAMA_65B, TransformerConfig
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.session import SweepPolicy
from repro.tune.space import DEFAULT_TILE, SearchSpace, TileChoice

#: Producer/consumer tile shapes shared by both MLP grids.
_TILE_SHAPES: Tuple[Tuple[int, int], ...] = (
    (128, 128),
    (128, 256),
    (256, 128),
    (256, 256),
)

#: ``(producer split_k, consumer split_k)`` ladder.
_SPLIT_LADDER: Tuple[Tuple[int, int], ...] = (
    (1, 1),
    (2, 1),
    (2, 2),
    (3, 2),
    (4, 2),
)


def mlp_tile_grid(stage1: str, stage2: str) -> Tuple[TileChoice, ...]:
    """The default + 20 candidate tile choices for a two-GeMM MLP."""
    choices: List[TileChoice] = [DEFAULT_TILE]
    for tile_m, tile_n in _TILE_SHAPES:
        for split1, split2 in _SPLIT_LADDER:
            label = f"{tile_m}x{tile_n}/k{split1}.{split2}"
            choices.append(
                TileChoice.of(
                    label,
                    {
                        stage1: GemmConfig(tile_m=tile_m, tile_n=tile_n, tile_k=32, split_k=split1),
                        stage2: GemmConfig(tile_m=tile_m, tile_n=tile_n, tile_k=32, split_k=split2),
                    },
                )
            )
    return tuple(choices)


def gpt3_mlp_space(
    batch_seq: int = 512,
    config: TransformerConfig = GPT3_145B,
    arches: Sequence[ArchLike] = ("A100", "H100-SXM", "RTX-4090"),
    policies: Sequence[SweepPolicy] = ("TileSync", "RowSync"),
    tile_choices: Optional[Sequence[TileChoice]] = None,
) -> SearchSpace:
    """The GPT-3 MLP's ``(tile, policy, arch)`` space.

    The default tile resolves to the paper's V100 Table-IV grids (via
    :func:`~repro.models.mlp.gpt3_mlp_gemm_configs`), so the search's
    ``default_best_us`` is exactly the number the untuned model posts.
    """
    from repro.models.mlp import GptMlp

    def builder(configs: Optional[Dict[str, GemmConfig]]) -> PipelineGraph:
        gemm_configs = None
        if configs is not None:
            gemm_configs = (configs["mlp_gemm1"], configs["mlp_gemm2"])
        return GptMlp(
            config=config, batch_seq=batch_seq, gemm_configs=gemm_configs
        ).to_graph()

    return SearchSpace(
        name=f"mlp_{config.name}_b{batch_seq}",
        builder=builder,
        tile_choices=tile_choices
        if tile_choices is not None
        else mlp_tile_grid("mlp_gemm1", "mlp_gemm2"),
        policies=policies,
        arches=arches,
    )


def llama_mlp_space(
    batch_seq: int = 512,
    config: TransformerConfig = LLAMA_65B,
    arches: Sequence[ArchLike] = ("A100", "H100-SXM", "RTX-4090"),
    policies: Sequence[SweepPolicy] = ("TileSync", "RowSync", "StridedTileSync"),
    tile_choices: Optional[Sequence[TileChoice]] = None,
) -> SearchSpace:
    """The LLaMA MLP's ``(tile, policy, arch)`` space.

    The default tile is :func:`~repro.kernels.gemm.choose_gemm_config`'s
    V100 heuristic choice — the graphs the untuned model builds.  The
    SwiGLU closure keeps these graphs out of ``mode="process"`` sweeps
    and the persistent store; use serial or thread mode.
    """
    from repro.models.llama_mlp import LlamaMlp

    def builder(configs: Optional[Dict[str, GemmConfig]]) -> PipelineGraph:
        gemm_configs = None
        if configs is not None:
            gemm_configs = (configs["llama_gemm1"], configs["llama_gemm2"])
        return LlamaMlp(
            config=config, batch_seq=batch_seq, gemm_configs=gemm_configs
        ).to_graph()

    return SearchSpace(
        name=f"llama_mlp_{config.name}_b{batch_seq}",
        builder=builder,
        tile_choices=tile_choices
        if tile_choices is not None
        else mlp_tile_grid("llama_gemm1", "llama_gemm2"),
        policies=policies,
        arches=arches,
    )
