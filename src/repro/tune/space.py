"""Search spaces: ``(tile, policy, arch)`` cross products over one workload.

A :class:`SearchSpace` owns a graph *builder* — a callable taking an
optional ``{stage name: GemmConfig}`` mapping and returning the
workload's :class:`~repro.pipeline.graph.PipelineGraph` built with those
tile configs (``None`` → the workload's defaults).  Tile choices are the
only axis that changes the graph itself; policies and architectures ride
in the :class:`~repro.pipeline.session.SweepPoint`, so a space lowers
every candidate to a ``(graph, point)`` pair :meth:`Session.sweep
<repro.pipeline.session.Session.sweep>` evaluates directly — which is
what makes tuner runs cacheable and bit-deterministic.

Graphs are memoized per tile label and **renamed deterministically**
(``<name>@<tile label>``) so multi-graph sweep labels — and the
``graph_label`` field persisted by the result store — do not depend on
sweep order or on how many tiles a strategy happened to visit.  The
default tile keeps the workload's natural name, so the tuner's baseline
entries are byte-identical to the entries a plain ``Session.sweep`` of
the untuned workload would persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import TuningError
from repro.gpu.arch import ArchLike, resolve_arch
from repro.kernels.gemm import GemmConfig
from repro.cusync.optimizations import OptimizationFlags
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.session import SweepPoint, SweepPolicy


@dataclass(frozen=True)
class TileChoice:
    """One point on the tile axis: a label plus per-stage tile configs.

    ``configs`` is a sorted tuple of ``(stage name, GemmConfig)`` pairs
    (hashable, canonical ordering); ``None`` means "the workload's own
    default configuration" — whatever the builder produces unconfigured.
    """

    label: str
    configs: Optional[Tuple[Tuple[str, GemmConfig], ...]] = None

    def __post_init__(self) -> None:
        if not self.label:
            raise TuningError("a TileChoice needs a non-empty label")
        if self.configs is not None:
            object.__setattr__(self, "configs", tuple(sorted(self.configs)))

    @classmethod
    def of(cls, label: str, configs: Mapping[str, GemmConfig]) -> "TileChoice":
        """Build a choice from a ``{stage: config}`` mapping."""
        return cls(label, tuple(sorted(configs.items())))

    def config_map(self) -> Optional[Dict[str, GemmConfig]]:
        return None if self.configs is None else dict(self.configs)


#: The workload's own default tile configuration.
DEFAULT_TILE = TileChoice("default", None)


@dataclass(frozen=True)
class Candidate:
    """One fully-specified search point: tile × policy × arch."""

    tile: TileChoice
    policy: SweepPolicy
    arch: ArchLike

    def label(self) -> str:
        policy = self.policy if isinstance(self.policy, str) else (
            self.policy.label() if self.policy is not None else ""
        )
        return f"{self.tile.label}/{policy}@{resolve_arch(self.arch).name}"


GraphBuilder = Callable[[Optional[Dict[str, GemmConfig]]], PipelineGraph]


class SearchSpace:
    """The cross product of tile, policy and arch axes for one workload.

    ``name`` is the workload key the tuned-config table is addressed by
    (conventionally the workload graph's natural name);  ``builder``
    builds the graph for one tile choice's config map.  Candidates
    enumerate in a fixed arch-major order (arch, then tile, then policy),
    so every strategy sees the same deterministic sequence.
    """

    def __init__(
        self,
        name: str,
        builder: GraphBuilder,
        tile_choices: Sequence[TileChoice] = (DEFAULT_TILE,),
        policies: Sequence[SweepPolicy] = ("TileSync",),
        arches: Sequence[ArchLike] = ("V100",),
        scheme: str = "cusync",
        baseline_scheme: str = "streamsync",
        optimizations: Optional[OptimizationFlags] = None,
    ) -> None:
        if not name:
            raise TuningError("a SearchSpace needs a workload name")
        if not tile_choices:
            raise TuningError(f"search space {name!r} has an empty tile axis")
        if not policies:
            raise TuningError(f"search space {name!r} has an empty policy axis")
        if not arches:
            raise TuningError(f"search space {name!r} has an empty arch axis")
        labels = [tile.label for tile in tile_choices]
        if len(set(labels)) != len(labels):
            duplicates = sorted({label for label in labels if labels.count(label) > 1})
            raise TuningError(
                f"search space {name!r} has duplicate tile labels: {duplicates}"
            )
        self.name = name
        self.builder = builder
        self.tile_choices: Tuple[TileChoice, ...] = tuple(tile_choices)
        self.policies: Tuple[SweepPolicy, ...] = tuple(policies)
        self.arches: Tuple[ArchLike, ...] = tuple(arches)
        self.scheme = scheme
        self.baseline_scheme = baseline_scheme
        self.optimizations = optimizations
        self._graphs: Dict[str, PipelineGraph] = {}

    def __len__(self) -> int:
        return len(self.tile_choices) * len(self.policies) * len(self.arches)

    # ------------------------------------------------------------------
    def graph_for(self, tile: TileChoice) -> PipelineGraph:
        """The (memoized) graph built with ``tile``'s configs.

        Non-default tiles rename the graph to ``<name>@<tile label>`` so
        sweep labels and persisted store entries are deterministic
        regardless of which tiles a strategy visits; the default tile
        keeps the builder's natural name.
        """
        graph = self._graphs.get(tile.label)
        if graph is None:
            graph = self.builder(tile.config_map())
            if tile.configs is not None and graph.name:
                graph = graph.renamed(f"{graph.name}@{tile.label}")
            self._graphs[tile.label] = graph
        return graph

    def point_for(self, candidate: Candidate) -> SweepPoint:
        return SweepPoint(
            scheme=self.scheme,
            policy=candidate.policy,
            arch=candidate.arch,
            optimizations=self.optimizations,
        )

    def baseline_point(self, arch: ArchLike) -> SweepPoint:
        """The no-policy baseline point (StreamSync by default)."""
        return SweepPoint(scheme=self.baseline_scheme, policy=None, arch=arch)

    def candidates(self) -> Tuple[Candidate, ...]:
        """Every search point, in deterministic arch-major order."""
        return tuple(
            Candidate(tile=tile, policy=policy, arch=arch)
            for arch in self.arches
            for tile in self.tile_choices
            for policy in self.policies
        )
