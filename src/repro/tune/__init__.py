"""Autotuning over ``(tile, policy, arch)`` on top of :class:`Session.sweep`.

The package that closes the paper's loop — "generate every candidate,
run them all, keep the fastest" — as a real subsystem instead of the
dormant seed-era ``dsl.autotune``:

:mod:`repro.tune.space`
    :class:`SearchSpace`: the cross product of tile-config choices
    (:class:`TileChoice`), policy candidates and architectures for one
    workload, lowered to ``(graph, SweepPoint)`` work lists.
:mod:`repro.tune.strategies`
    :class:`GridSearch`, seeded :class:`RandomSearch` and
    :class:`SuccessiveHalving` — all three drive the same evaluate
    callback, so every strategy inherits the sweep cache's replay
    guarantees (only novel points simulate; reruns are near-free and
    bit-deterministic).
:mod:`repro.tune.tuner`
    :class:`Tuner` orchestrates a strategy over a space through one
    :class:`~repro.pipeline.session.Session`, producing a
    :class:`TuneReport` of per-rung :class:`Trial` records, per-arch
    winners and cache-exploitation counters.
:mod:`repro.tune.table`
    The committed best-known-config artifact ``TUNED_CONFIGS.json``
    (:class:`TunedConfigTable`) and the :func:`tuned_gemm_configs`
    resolver the model constructors' ``tuned=True`` paths use, with an
    explicit V100 fallback for arches that have no tuned entry.
:mod:`repro.tune.presets`
    Ready-made spaces for the repo's workloads
    (:func:`gpt3_mlp_space`, :func:`llama_mlp_space`).

``python -m repro.tune`` regenerates ``TUNED_CONFIGS.json``.
"""

from repro.tune.space import Candidate, DEFAULT_TILE, SearchSpace, TileChoice
from repro.tune.strategies import (
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
)
from repro.tune.table import (
    DEFAULT_TABLE_PATH,
    TUNED_CONFIGS_ENV,
    TunedConfigTable,
    TunedEntry,
    default_table,
    reset_default_table,
    tuned_gemm_configs,
)
from repro.tune.tuner import Trial, TuneReport, Tuner
from repro.tune.presets import gpt3_mlp_space, llama_mlp_space

__all__ = [
    "Candidate",
    "DEFAULT_TABLE_PATH",
    "DEFAULT_TILE",
    "GridSearch",
    "RandomSearch",
    "SearchSpace",
    "SearchStrategy",
    "SuccessiveHalving",
    "TUNED_CONFIGS_ENV",
    "TileChoice",
    "Trial",
    "TuneReport",
    "TunedConfigTable",
    "TunedEntry",
    "Tuner",
    "default_table",
    "gpt3_mlp_space",
    "llama_mlp_space",
    "reset_default_table",
    "tuned_gemm_configs",
]
