"""The W / R / T optimizations of Section IV-C.

cuSyncGen applies three optimizations on top of a base policy depending on
the grid sizes and the GPU:

* **W — avoid the wait-kernel.**  When both the producer and the consumer
  fit in fewer than two waves, the consumer cannot starve the producer of
  SMs, so the extra wait-kernel launch (and its ~6 µs launch latency) is
  unnecessary.
* **R — reorder tile loads.**  Overlap waiting on a synchronized input with
  loading the other, unsynchronized input.
* **T — avoid the custom tile processing order.**  When both kernels fit in
  at most two waves, the default block order is already fine and the atomic
  tile-counter indirection can be skipped.

The paper's policy names encode the applied optimizations, e.g.
``TileSync+WRT``; :func:`decorate_policy_name` reproduces that naming for
the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.arch import GpuArchitecture


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of the Section IV-C optimizations are enabled."""

    avoid_wait_kernel: bool = False
    reorder_loads: bool = False
    avoid_custom_tile_order: bool = False

    # ------------------------------------------------------------------
    # Convenience constructors matching the paper's suffixes
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "OptimizationFlags":
        """The "Vanilla" configuration of Table V: no optimizations."""
        return cls()

    @classmethod
    def r(cls) -> "OptimizationFlags":
        """``+R``: reorder tile loads only."""
        return cls(reorder_loads=True)

    @classmethod
    def wr(cls) -> "OptimizationFlags":
        """``+WR``: avoid the wait-kernel and reorder tile loads."""
        return cls(avoid_wait_kernel=True, reorder_loads=True)

    @classmethod
    def wrt(cls) -> "OptimizationFlags":
        """``+WRT``: all three optimizations."""
        return cls(avoid_wait_kernel=True, reorder_loads=True, avoid_custom_tile_order=True)

    @property
    def suffix(self) -> str:
        """The paper-style suffix, e.g. ``"+WRT"`` (empty when nothing is on)."""
        letters = ""
        if self.avoid_wait_kernel:
            letters += "W"
        if self.reorder_loads:
            letters += "R"
        if self.avoid_custom_tile_order:
            letters += "T"
        return f"+{letters}" if letters else ""

    def with_(self, **kwargs) -> "OptimizationFlags":
        """Return a copy with some flags replaced."""
        return replace(self, **kwargs)


def auto_optimizations(
    producer_blocks: int,
    consumer_blocks: int,
    producer_occupancy: int,
    consumer_occupancy: int,
    arch: GpuArchitecture,
) -> OptimizationFlags:
    """Derive the optimization flags cuSyncGen would choose (Section IV-C).

    The wait-kernel and the custom tile order are only needed when the two
    kernels together cannot fit on the GPU at once — i.e. when either kernel
    needs two or more waves; otherwise they are pure overhead.  Reordering
    tile loads never hurts in this model, so it is always enabled.
    """
    producer_waves = producer_blocks / arch.blocks_per_wave(producer_occupancy)
    consumer_waves = consumer_blocks / arch.blocks_per_wave(consumer_occupancy)
    small = producer_waves < 2.0 and consumer_waves < 2.0
    return OptimizationFlags(
        avoid_wait_kernel=small,
        reorder_loads=True,
        avoid_custom_tile_order=small,
    )


def decorate_policy_name(policy_name: str, flags: OptimizationFlags) -> str:
    """Paper-style display name, e.g. ``TileSync+WRT``."""
    return f"{policy_name}{flags.suffix}"
