"""Pipeline assembly: stages, dependencies, wait-kernels and execution.

:class:`CuSyncPipeline` corresponds to the host-side code of the paper's
Figure 4a (the ``MLP`` function): create a stage per kernel, declare
dependencies between stages, and invoke the kernels — each on its own
stream, with a wait-kernel in front of every consumer unless the W
optimization elides it.

Since the introduction of the declarative :mod:`repro.pipeline` API this
class is the **per-execution binding layer**: the ``cusync`` backend
materializes one pipeline (fresh :class:`~repro.cusync.custage.CuStage`
objects, stream assignment, semaphore allocation) per run of an immutable
:class:`~repro.pipeline.PipelineGraph` and discards it afterwards.  It can
still be used directly as the imperative handle shown below.

The pipeline builds plain :class:`~repro.gpu.kernel.KernelLaunch` objects
and runs them on the :class:`~repro.gpu.simulator.GpuSimulator`; a
:class:`PipelineResult` wraps the simulation outcome with stage-aware
accessors used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.dim3 import Dim3
from repro.errors import SynchronizationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import KernelLaunch, Segment, ThreadBlockProgram
from repro.gpu.memory import GlobalMemory
from repro.gpu.simulator import GpuSimulator, SimulationResult
from repro.gpu.stream import Stream
from repro.kernels.base import TiledKernel
from repro.cusync.custage import CuStage, RangeMap
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import SyncPolicy
from repro.cusync.semaphores import SemaphoreAllocator
from repro.cusync.tile_orders import TileOrder

#: Occupancy of the single-block wait-kernel (it uses almost no resources).
WAIT_KERNEL_OCCUPANCY = 32


@dataclass
class _StageEntry:
    stage: CuStage
    kernel: TiledKernel
    stream: Optional[Stream] = None


@dataclass
class PipelineResult:
    """Outcome of running a synchronized pipeline on the simulator."""

    simulation: SimulationResult
    stage_names: List[str] = field(default_factory=list)
    wait_kernel_names: List[str] = field(default_factory=list)

    @property
    def total_time_us(self) -> float:
        """End-to-end time of the pipeline (host launch to last block end)."""
        return self.simulation.total_time_us

    @property
    def memory(self) -> GlobalMemory:
        return self.simulation.memory

    def kernel_duration_us(self, name: str) -> float:
        return self.simulation.kernel_duration_us(name)

    def total_wait_time_us(self) -> float:
        """Total busy-wait time across all blocks (synchronization cost)."""
        return self.simulation.trace.total_wait_time_us()

    def tensor(self, name: str) -> np.ndarray:
        """Fetch a tensor from simulated global memory (functional mode)."""
        return self.memory.tensor(name)

    def summary(self) -> str:
        return self.simulation.trace.summary()


class CuSyncPipeline:
    """A set of dependent kernels synchronized with cuSync.

    Typical use (two dependent GeMMs, as in the paper's MLP example)::

        pipeline = CuSyncPipeline()
        prod = pipeline.add_stage(gemm1, policy=RowSync())
        cons = pipeline.add_stage(gemm2, policy=RowSync())
        pipeline.add_dependency(prod, cons, tensor="XW1")
        result = pipeline.run()
    """

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        self.functional = functional
        self._entries: List[_StageEntry] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_stage(
        self,
        kernel: TiledKernel,
        policy: Optional[SyncPolicy] = None,
        order: Optional[TileOrder] = None,
        optimizations: Optional[OptimizationFlags] = None,
        name: Optional[str] = None,
    ) -> CuStage:
        """Wrap ``kernel`` in a stage and register it with the pipeline.

        Stages must be added in producer-before-consumer order (the order
        kernels are launched on the host).
        """
        stage = CuStage(
            name=name if name is not None else kernel.name,
            geometry=kernel.stage_geometry(),
            policy=policy,
            order=order,
            optimizations=optimizations,
        )
        stage.stage_index = len(self._entries)
        kernel.sync = stage
        kernel.cost_model = self.cost_model
        kernel.functional = self.functional
        self._entries.append(_StageEntry(stage=stage, kernel=kernel))
        return stage

    def add_dependency(
        self,
        producer: CuStage,
        consumer: CuStage,
        tensor: str,
        range_map: Optional[RangeMap] = None,
        policy: Optional[SyncPolicy] = None,
    ) -> None:
        """Declare ``consumer`` reads ``tensor`` produced by ``producer``.

        ``policy`` synchronizes this one edge under a different policy than
        the producer's default (per-edge policy assignment): the producer
        posts to an extra semaphore array sized by the override.
        """
        consumer.depends_on(producer, tensor, range_map=range_map, policy=policy)

    @property
    def stages(self) -> List[CuStage]:
        return [entry.stage for entry in self._entries]

    @property
    def kernels(self) -> List[TiledKernel]:
        return [entry.kernel for entry in self._entries]

    # ------------------------------------------------------------------
    # Launch assembly
    # ------------------------------------------------------------------
    def build_launches(self, memory: GlobalMemory) -> List[KernelLaunch]:
        """Allocate semaphores and assemble the launch sequence."""
        if not self._entries:
            raise SynchronizationError("pipeline has no stages")
        self._check_topological_order()
        SemaphoreAllocator(memory).allocate(self.stages)

        launches: List[KernelLaunch] = []
        for entry in self._entries:
            stage = entry.stage
            stream = Stream(priority=stage.stage_index, name=f"stream_{stage.name}")
            entry.stream = stream
            if stage.needs_wait_kernel():
                launches.append(self._wait_kernel_launch(stage, stream))
            launches.append(entry.kernel.build_launch(stream=stream))
        return launches

    def _check_topological_order(self) -> None:
        for entry in self._entries:
            for dependency in entry.stage.dependencies.values():
                if dependency.producer.stage_index >= entry.stage.stage_index:
                    raise SynchronizationError(
                        f"stage '{entry.stage.name}' depends on '{dependency.producer.name}' "
                        "but was added to the pipeline before it; add producers first"
                    )

    def _wait_kernel_launch(self, stage: CuStage, stream: Stream) -> KernelLaunch:
        """Single-block kernel that blocks the consumer's stream until every
        producer has started (Section III-B)."""
        waits = stage.wait_kernel_waits()
        poll_duration = self.cost_model.wait_kernel_poll_us()

        def build(tile: Dim3) -> ThreadBlockProgram:
            segment = Segment(
                label="wait-kernel",
                waits=list(waits),
                duration_us=poll_duration,
                # The real wait kernel busy-waits at poll granularity; the
                # simulated block parks in the wake index instead (woken
                # once, no re-dispatch) and back-charges the polls it would
                # have issued while parked.
                poll_interval_us=poll_duration,
            )
            return ThreadBlockProgram(tile=tile, segments=[segment])

        return KernelLaunch(
            name=f"waitkernel_{stage.name}",
            grid=Dim3(1, 1, 1),
            program_builder=build,
            occupancy=WAIT_KERNEL_OCCUPANCY,
            stream=stream,
            tags={"kernel_class": "WaitKernel"},
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        memory: Optional[GlobalMemory] = None,
        tensors: Optional[Dict[str, np.ndarray]] = None,
    ) -> PipelineResult:
        """Run the pipeline on the simulator and return the result.

        ``tensors`` provides the input arrays for functional simulation
        (weights, activations); outputs are allocated automatically.
        """
        memory = memory if memory is not None else GlobalMemory()
        if tensors:
            for name, array in tensors.items():
                memory.store_tensor(name, array)
        if self.functional:
            for entry in self._entries:
                entry.kernel.allocate_functional_tensors(memory)

        launches = self.build_launches(memory)
        tracked = {entry.stage.geometry.output for entry in self._entries if entry.stage.is_producer}
        simulator = GpuSimulator(
            arch=self.arch,
            memory=memory,
            cost_model=self.cost_model,
            functional=self.functional,
            tracked_tensors=tracked,
        )
        result = simulator.run(launches)
        return PipelineResult(
            simulation=result,
            stage_names=[entry.stage.name for entry in self._entries],
            wait_kernel_names=[
                f"waitkernel_{entry.stage.name}"
                for entry in self._entries
                if entry.stage.needs_wait_kernel()
            ],
        )
