"""``CuStage``: the synchronization state of one kernel in a pipeline.

A stage wraps one kernel launch and provides everything the paper's
``CuStage`` object provides (Figure 4):

* ``tile()`` — the custom tile processing order (installed in the launch as
  a dispatch-counter → tile lookup);
* ``start()`` — the stage-start flag posted when the first block begins,
  which releases the consumer's wait-kernel;
* ``wait()`` — expressed here as :meth:`plan_reads`: the stage splits a
  consumer's read of a producer-owned tensor into chunks and attaches the
  semaphore waits dictated by the *producer's* policy;
* ``post()`` — :meth:`posts_for`: the semaphore increment performed after an
  output tile is complete.

Dependencies are declared between stages (``CuSync::dependency`` in the
paper); each dependency may carry a *range map* that translates element
coordinates of the consumer's read into coordinates of the producer's
output — this is how sliced/strided dependences (the Q/K/V slices of the
attention QKV GeMM, Figure 5b) are expressed, and it is exactly the affine
dependence information cuSyncGen extracts from the DSL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.dim3 import Dim3, ceil_div
from repro.errors import SynchronizationError
from repro.gpu.kernel import SemPost, SemWait, TensorAccess, TileOrderFn
from repro.kernels.base import IndexRange, ReadPlanStep, StageGeometry, SyncInterface
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import SyncPolicy, TileSync
from repro.cusync.semaphores import STAGE_START_ARRAY, stage_semaphore_array
from repro.cusync.tile_orders import RowMajorOrder, TileOrder

#: Maps (rows, cols, batch) of a consumer read to the producer's coordinates.
RangeMap = Callable[[IndexRange, IndexRange, int], Tuple[IndexRange, IndexRange, int]]


@dataclass
class Dependency:
    """One producer → consumer edge for a specific tensor.

    ``policy`` overrides the producer's default policy for this edge only
    (per-edge policy assignment); ``None`` inherits the producer's policy.
    """

    producer: "CuStage"
    tensor: str
    range_map: Optional[RangeMap] = None
    policy: Optional[SyncPolicy] = None


class CuStage(SyncInterface):
    """Synchronization facilities of one kernel (the paper's ``CuStage``)."""

    #: Whether a producer whose consumer edges *all* override its default
    #: policy skips posting the (unused) slot-0 semaphore array.  A real
    #: cuSync producer only posts the schemes its consumers registered, so
    #: the elision is the faithful model; the flag exists so tests can
    #: compare against the unelided behaviour.
    elide_idle_slot0: bool = True

    def __init__(
        self,
        name: str,
        geometry: StageGeometry,
        policy: Optional[SyncPolicy] = None,
        order: Optional[TileOrder] = None,
        optimizations: Optional[OptimizationFlags] = None,
    ) -> None:
        self.name = name
        self.geometry = geometry
        self.policy = policy if policy is not None else TileSync()
        self.order = order if order is not None else RowMajorOrder()
        self.optimizations = optimizations if optimizations is not None else OptimizationFlags()
        #: Index of the stage within its pipeline; set by the pipeline.
        self.stage_index: int = 0
        #: Dependencies of this stage, keyed by the tensor it reads.
        self.dependencies: Dict[str, Dependency] = {}
        #: Stages that consume this stage's output.
        self.consumers: List["CuStage"] = []
        #: Memoized consumer-read plans keyed by
        #: (tensor, rows, cols, batch, policy slot).  Consumer blocks in the
        #: same tile row/column ask for identical ranges, so the per-range
        #: planning loop runs once per distinct range instead of once per
        #: dispatched block.  Cached plans are shared (ReadPlanStep is
        #: frozen): callers must not mutate them.
        self._consumer_read_cache: Dict[
            Tuple[str, IndexRange, IndexRange, int, int], List[ReadPlanStep]
        ] = {}
        #: Memoized ``_slot_of`` resolutions keyed by the policy object's
        #: identity.  ``plan_consumer_reads`` runs once per consumer block
        #: binding and the edge's policy object is stable for the life of
        #: the stage (``None`` or the canonical registered instance), so
        #: the per-call ``policy.key()`` comparisons collapse to one dict
        #: hit.  Values hold the key object, keeping its id() from being
        #: recycled while the entry exists.
        self._slot_memo: Dict[int, Tuple[int, SyncPolicy, str, Optional[SyncPolicy]]] = {}
        #: Additional producer-side policies demanded by consumer edges that
        #: override this stage's default (slot 0 is ``self.policy``); each
        #: gets its own semaphore array and one extra post per output tile.
        self._edge_policies: List[SyncPolicy] = []
        #: How many consumer edges synchronize through slot 0 (the stage's
        #: default policy).  When every edge overrides the default, nobody
        #: ever waits on the slot-0 array and its posts are elided.
        self._slot0_edges: int = 0
        # Validate the policy against the logical grid up front (the bounds
        # check cuSyncGen performs in step 2 of its workflow).
        self.policy.validate(self.logical_grid)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Dim3:
        """The launch grid of the stage's kernel (includes split-K blocks)."""
        return self.geometry.grid

    @property
    def logical_grid(self) -> Dim3:
        """The grid of logical output tiles (split-K folded away)."""
        return self.geometry.logical_grid

    @property
    def semaphore_array(self) -> str:
        """Name of this stage's semaphore array in global memory."""
        return stage_semaphore_array(self.name)

    @property
    def posts_per_tile(self) -> int:
        """How many posts one logical tile receives (split-K contributions)."""
        return self.geometry.split_k

    def logical_tile(self, tile: Dim3) -> Dim3:
        """Fold a launch-grid tile coordinate into its logical tile.

        Without split-K the launch tile *is* the logical tile, so the
        (validated) ``Dim3`` construction is skipped on that per-block path.
        """
        split_k = self.geometry.split_k
        if split_k == 1:
            return tile
        return Dim3(tile.x, tile.y, tile.z // split_k)

    # ------------------------------------------------------------------
    # Dependency declaration (CuSync::dependency in the paper)
    # ------------------------------------------------------------------
    def depends_on(
        self,
        producer: "CuStage",
        tensor: str,
        range_map: Optional[RangeMap] = None,
        policy: Optional[SyncPolicy] = None,
    ) -> None:
        """Declare that this stage reads ``tensor`` produced by ``producer``.

        ``policy`` makes this one edge synchronize under a different policy
        than the producer's default: the producer allocates an extra
        semaphore array for it and posts both after each output tile.
        """
        if tensor in self.dependencies:
            raise SynchronizationError(
                f"stage '{self.name}' already has a dependency for tensor '{tensor}'"
            )
        if policy is not None:
            policy = producer.register_edge_policy(policy)
        if policy is None:
            # The edge synchronizes through the producer's default policy
            # (slot 0), which therefore must keep posting.
            producer._slot0_edges += 1
        self.dependencies[tensor] = Dependency(
            producer=producer, tensor=tensor, range_map=range_map, policy=policy
        )
        producer.consumers.append(self)

    # ------------------------------------------------------------------
    # Per-edge policy slots (producer side)
    # ------------------------------------------------------------------
    def register_edge_policy(self, policy: SyncPolicy) -> Optional[SyncPolicy]:
        """Register a consumer edge's policy override with this producer.

        Returns the canonical policy object for the edge: ``None`` when the
        override is value-identical to the stage default (the edge simply
        uses slot 0), otherwise the deduplicated instance whose slot the
        edge's waits and the producer's extra posts will share.
        """
        if policy.key() == self.policy.key():
            return None
        for existing in self._edge_policies:
            if existing.key() == policy.key():
                return existing
        policy.validate(self.logical_grid)
        self._edge_policies.append(policy)
        return policy

    def semaphore_slots(self) -> List[Tuple[str, SyncPolicy]]:
        """Every (array name, policy) pair this producer posts to."""
        slots = [(self.semaphore_array, self.policy)]
        slots.extend(
            (stage_semaphore_array(self.name, index), edge_policy)
            for index, edge_policy in enumerate(self._edge_policies, start=1)
        )
        return slots

    def _slot_of(self, policy: Optional[SyncPolicy]) -> Tuple[int, SyncPolicy, str]:
        """Resolve an edge policy to its (slot, policy, array) triple."""
        memo = self._slot_memo.get(id(policy))
        if memo is not None:
            return memo[0], memo[1], memo[2]
        resolved = self._slot_of_uncached(policy)
        self._slot_memo[id(policy)] = (*resolved, policy)
        return resolved

    def _slot_of_uncached(self, policy: Optional[SyncPolicy]) -> Tuple[int, SyncPolicy, str]:
        if policy is None or policy.key() == self.policy.key():
            return 0, self.policy, self.semaphore_array
        for index, existing in enumerate(self._edge_policies, start=1):
            if existing.key() == policy.key():
                return index, existing, stage_semaphore_array(self.name, index)
        raise SynchronizationError(
            f"stage '{self.name}': edge policy {policy!r} was never registered "
            "(declare the dependency with depends_on(..., policy=...))"
        )

    @property
    def is_consumer(self) -> bool:
        return bool(self.dependencies)

    @property
    def is_producer(self) -> bool:
        return bool(self.consumers)

    # ------------------------------------------------------------------
    # SyncInterface: consumer side
    # ------------------------------------------------------------------
    @property
    def reorder_loads(self) -> bool:  # type: ignore[override]
        return self.optimizations.reorder_loads

    def plan_reads(
        self, tensor: str, rows: IndexRange, cols: IndexRange, batch: int = 0
    ) -> List[ReadPlanStep]:
        dependency = self.dependencies.get(tensor)
        if dependency is None:
            return [ReadPlanStep(rows=rows, cols=cols, batch=batch)]
        if dependency.range_map is not None:
            rows, cols, batch = dependency.range_map(rows, cols, batch)
        return dependency.producer.plan_consumer_reads(
            tensor, rows, cols, batch, policy=dependency.policy
        )

    def plan_consumer_reads(
        self,
        tensor: str,
        rows: IndexRange,
        cols: IndexRange,
        batch: int,
        policy: Optional[SyncPolicy] = None,
    ) -> List[ReadPlanStep]:
        """Producer-side mapping: element ranges of *my output* → guarded chunks.

        One chunk is emitted per column tile (the consumer's main-loop
        direction); consecutive chunks whose semaphore requirements are
        identical are merged, which collapses RowSync dependences into a
        single wait covering the whole range.

        ``policy`` selects the edge's policy slot: ``None`` (or a policy
        value-identical to the stage default) plans against slot 0, an
        override registered via :meth:`depends_on` plans against its own
        semaphore array.

        Results are memoized per (tensor, rows, cols, batch, slot): the
        policies, geometry and order of a stage are fixed once the pipeline
        is built, so identical ranges always plan identically.  The
        returned list is shared between callers and must be treated as
        immutable.
        """
        slot, slot_policy, array = self._slot_of(policy)
        key = (tensor, rows, cols, batch, slot)
        cached = self._consumer_read_cache.get(key)
        if cached is not None:
            return cached
        steps = self._plan_consumer_reads_uncached(tensor, rows, cols, batch, slot_policy, array)
        self._consumer_read_cache[key] = steps
        return steps

    def _plan_consumer_reads_uncached(
        self,
        tensor: str,
        rows: IndexRange,
        cols: IndexRange,
        batch: int,
        policy: SyncPolicy,
        array: str,
    ) -> List[ReadPlanStep]:
        geometry = self.geometry
        grid = self.logical_grid
        if not (0 <= batch < grid.z):
            raise SynchronizationError(
                f"stage '{self.name}': consumer read references batch {batch} "
                f"outside the producer's batch range [0, {grid.z})"
            )

        row_lo = max(0, rows[0]) // geometry.tile_rows
        row_hi = min(grid.y, ceil_div(max(rows[1], rows[0] + 1), geometry.tile_rows))
        col_lo = max(0, cols[0]) // geometry.tile_cols
        col_hi = min(grid.x, ceil_div(max(cols[1], cols[0] + 1), geometry.tile_cols))
        row_hi = max(row_hi, row_lo + 1)
        col_hi = max(col_hi, col_lo + 1)

        # Batched requirement derivation: one vectorized policy evaluation
        # for the whole (column, row) window instead of two Python calls per
        # covered tile.  ``.tolist()`` yields plain ints, so the emitted
        # waits are value-identical to the scalar path.
        col_indices = np.arange(col_lo, col_hi, dtype=np.int64)[:, None]
        row_indices = np.arange(row_lo, row_hi, dtype=np.int64)[None, :]
        semaphores = policy.semaphore_indices(col_indices, row_indices, batch, grid).tolist()
        required_values = (
            policy.expected_values(col_indices, row_indices, batch, grid) * self.posts_per_tile
        ).tolist()

        steps: List[ReadPlanStep] = []
        previous_requirements: Optional[Tuple[Tuple[int, int], ...]] = None
        for column_offset, tile_col in enumerate(range(col_lo, col_hi)):
            requirements: Dict[int, int] = {}
            reads: List[TensorAccess] = []
            column_semaphores = semaphores[column_offset]
            column_required = required_values[column_offset]
            for row_offset, tile_row in enumerate(range(row_lo, row_hi)):
                semaphore = column_semaphores[row_offset]
                required = column_required[row_offset]
                existing = requirements.get(semaphore, 0)
                if required > existing:
                    requirements[semaphore] = required
                reads.append(TensorAccess(tensor, (tile_col, tile_row, batch)))

            chunk_cols = (
                max(cols[0], tile_col * geometry.tile_cols),
                min(cols[1], (tile_col + 1) * geometry.tile_cols),
            )
            normalized = tuple(sorted(requirements.items()))
            if steps and normalized == previous_requirements:
                # Same semaphores as the previous chunk: extend it instead of
                # waiting again (this is what makes RowSync one wait total).
                last = steps[-1]
                steps[-1] = ReadPlanStep(
                    rows=last.rows,
                    cols=(last.cols[0], chunk_cols[1]),
                    waits=last.waits,
                    reads=tuple(list(last.reads) + reads),
                    batch=batch,
                )
                continue
            waits = tuple(
                SemWait(array, semaphore, required) for semaphore, required in normalized
            )
            steps.append(
                ReadPlanStep(rows=rows, cols=chunk_cols, waits=waits, reads=tuple(reads), batch=batch)
            )
            previous_requirements = normalized
        return steps

    # ------------------------------------------------------------------
    # SyncInterface: producer side
    # ------------------------------------------------------------------
    @property
    def slot0_posts_elided(self) -> bool:
        """Whether the stage's default (slot-0) semaphore posts are skipped.

        True exactly when consumer edges exist, every one of them overrides
        the stage's default policy, and elision is enabled: no wait ever
        reads the slot-0 array, so a faithful producer does not pay the
        atomic increments for it (per-policy-slot post elision).
        """
        return (
            self.elide_idle_slot0
            and bool(self._edge_policies)
            and self._slot0_edges == 0
        )

    def posts_for(self, tile: Dim3, grid: Dim3) -> List[SemPost]:
        if not self.is_producer:
            return []
        logical = self.logical_tile(tile)
        posts = []
        if not self.slot0_posts_elided:
            posts.append(
                SemPost(
                    self.semaphore_array,
                    self.policy.semaphore_index(logical, self.logical_grid),
                    1,
                )
            )
        # Consumer edges that override this stage's policy synchronize
        # through their own slot: the block posts once per distinct policy
        # (the CUDA analogue would increment one semaphore array per
        # registered scheme), so mixing policies costs extra posts only on
        # stages that actually mix.
        for index, edge_policy in enumerate(self._edge_policies, start=1):
            posts.append(
                SemPost(
                    stage_semaphore_array(self.name, index),
                    edge_policy.semaphore_index(logical, self.logical_grid),
                    1,
                )
            )
        return posts

    def output_tile_key(self, tile: Dim3, grid: Dim3):
        logical = self.logical_tile(tile)
        return (logical.x, logical.y, logical.z)

    def tile_order(self, grid: Dim3) -> Optional[TileOrderFn]:
        if self.optimizations.avoid_custom_tile_order:
            return None
        return self.order.order_fn(grid)

    def first_block_posts(self) -> List[SemPost]:
        # Posting the start flag is cheap and only matters when a consumer's
        # wait-kernel polls it, so it is emitted whenever the stage has
        # consumers (the producer cannot know whether the consumer elided
        # its wait-kernel).
        if not self.is_producer:
            return []
        return [SemPost(STAGE_START_ARRAY, self.stage_index, 1)]

    # ------------------------------------------------------------------
    # Wait-kernel support (consumer side)
    # ------------------------------------------------------------------
    def wait_kernel_waits(self) -> List[SemWait]:
        """Semaphore conditions the stage's wait-kernel polls."""
        producers = {dep.producer.stage_index for dep in self.dependencies.values()}
        return [SemWait(STAGE_START_ARRAY, index, 1) for index in sorted(producers)]

    def needs_wait_kernel(self) -> bool:
        """Whether a wait-kernel must precede this stage's kernel."""
        return self.is_consumer and not self.optimizations.avoid_wait_kernel

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"CuStage({self.name}, grid={self.grid}, policy={self.policy.name}, "
            f"order={self.order.name}, opts={self.optimizations.suffix or 'none'})"
        )

    def __repr__(self) -> str:
        return self.describe()
