"""Synchronization policies and the first-class policy space.

A policy is a mapping from producer tiles to semaphores (Section III-E): a
producer thread block increments the semaphore its tile maps to, and a
consumer thread block waits until the semaphore reaches the value that means
"every producer tile I depend on through this semaphore is finished".

A policy must implement two methods, mirroring the paper's ``sem`` and
``value``:

``semaphore_index(tile, grid)``
    Which semaphore the (logical) producer tile posts to.
``expected_value(tile, grid)``
    The semaphore value at which that tile is guaranteed complete.

Tiles here are *logical* tiles ``(x, y, batch)``: the split-K dimension is
folded away by :class:`~repro.cusync.custage.CuStage`, which multiplies the
expected values by the number of posts per logical tile.

Provided policies (all from the paper):

* :class:`TileSync` — one semaphore per tile, the finest granularity.
* :class:`RowSync` — one semaphore per row of tiles; fewer synchronizations
  at the cost of coarser overlap.
* :class:`StridedSync` — tiles at a fixed column stride share a semaphore
  (the Q/K/V slices of the fused attention GeMM, Figure 5b).
* :class:`Conv2DTileSync` — TileSync specialised for implicit-GeMM Conv2D.
* :class:`BatchSync` — one semaphore per batch entry (coarsest useful
  granularity; included as a reference point for the ablation benches).

On top of the policy classes this module provides the **policy space API**:

* :class:`PolicySpec` — a hashable, picklable ``(family, parameters)``
  value naming a policy without instantiating it;
* a user-extensible registry (:func:`register_policy`,
  :func:`resolve_policy`, :func:`registered_policies`) that subsumes the
  previously hard-coded family strings.  Factories receive a
  :class:`PolicyContext` describing the producer stage so grid-adaptive
  families (``StridedTileSync``) can specialise or fall back;
* :class:`PolicyAssignment` — a run-wide default spec plus per-stage and
  per-edge overrides, letting one pipeline execution mix policy families
  edge by edge (a GeMM → GeMM edge under ``RowSync`` while a sibling
  attention edge uses ``StridedSync``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from repro.common.dim3 import Dim3
from repro.common.validation import check_positive
from repro.errors import ModelConfigError, SynchronizationError


class SyncPolicy(ABC):
    """Mapping of producer tiles to semaphores."""

    #: Short name used in reports and benchmark tables.
    name: str = "policy"

    @abstractmethod
    def num_semaphores(self, grid: Dim3) -> int:
        """Number of semaphores needed for a producer with ``grid`` tiles."""

    @abstractmethod
    def semaphore_index(self, tile: Dim3, grid: Dim3) -> int:
        """Semaphore posted by the producer block computing ``tile``."""

    @abstractmethod
    def expected_value(self, tile: Dim3, grid: Dim3) -> int:
        """Semaphore value at which ``tile`` is guaranteed to be complete."""

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def key(self) -> Tuple:
        """Value identity of the policy, used to deduplicate per-edge slots.

        Two policy objects with equal keys map every tile to the same
        semaphore and expected value.  Parameterized policies must extend
        the tuple with their parameters (see :class:`StridedSync`).
        """
        return (type(self).__name__,)

    # ------------------------------------------------------------------
    # Vectorized evaluation
    #
    # ``semaphore_index_batch`` / ``expected_value_batch`` are the numpy
    # counterparts of the scalar methods: they receive equal-shaped integer
    # arrays of tile coordinates and return an array of the same shape.
    # Built-in policies override them with closed-form arithmetic; the
    # safe entry points below fall back to the scalar methods whenever a
    # subclass overrides the scalar mapping without updating the batch one.
    # ------------------------------------------------------------------
    def semaphore_index_batch(
        self, xs: np.ndarray, ys: np.ndarray, zs: np.ndarray, grid: Dim3
    ) -> np.ndarray:
        """Vectorized ``semaphore_index`` (default: scalar loop)."""
        flat = [
            self.semaphore_index(Dim3(int(x), int(y), int(z)), grid)
            for x, y, z in zip(xs.ravel(), ys.ravel(), zs.ravel())
        ]
        return np.array(flat, dtype=np.int64).reshape(xs.shape)

    def expected_value_batch(
        self, xs: np.ndarray, ys: np.ndarray, zs: np.ndarray, grid: Dim3
    ) -> np.ndarray:
        """Vectorized ``expected_value`` (default: scalar loop)."""
        flat = [
            self.expected_value(Dim3(int(x), int(y), int(z)), grid)
            for x, y, z in zip(xs.ravel(), ys.ravel(), zs.ravel())
        ]
        return np.array(flat, dtype=np.int64).reshape(xs.shape)

    def semaphore_indices(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        """Safe batched ``semaphore_index`` over broadcastable coordinates."""
        xs, ys, zs = np.broadcast_arrays(np.asarray(xs), np.asarray(ys), np.asarray(zs))
        if _has_native_batch(type(self)):
            return np.asarray(self.semaphore_index_batch(xs, ys, zs, grid))
        return SyncPolicy.semaphore_index_batch(self, xs, ys, zs, grid)

    def expected_values(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        """Safe batched ``expected_value`` over broadcastable coordinates."""
        xs, ys, zs = np.broadcast_arrays(np.asarray(xs), np.asarray(ys), np.asarray(zs))
        if _has_native_batch(type(self)):
            return np.asarray(self.expected_value_batch(xs, ys, zs, grid))
        return SyncPolicy.expected_value_batch(self, xs, ys, zs, grid)

    # ------------------------------------------------------------------
    def validate(self, grid: Dim3) -> None:
        """Check that every tile maps to a valid semaphore index.

        Policies generated by cuSyncGen are validated against the declared
        grid bounds before use (step 2 of the Section IV-A workflow).  For
        policies with native batch implementations the whole grid is checked
        with a handful of numpy reductions instead of one Python call pair
        per tile, so validation no longer dominates graph construction on
        large sweeps; the first offending tile is still reported exactly.
        """
        count = self.num_semaphores(grid)
        zs, ys, xs = np.indices((grid.z, grid.y, grid.x), dtype=np.int64)
        indices = self.semaphore_indices(xs, ys, zs, grid)
        bad = (indices < 0) | (indices >= count)
        if bad.any():
            z, y, x = np.unravel_index(int(np.flatnonzero(bad.ravel())[0]), bad.shape)
            tile = Dim3(int(x), int(y), int(z))
            raise SynchronizationError(
                f"{self.name}: tile {tile} maps to semaphore "
                f"{self.semaphore_index(tile, grid)}, "
                f"outside the allocated range [0, {count})"
            )
        values = self.expected_values(xs, ys, zs, grid)
        non_positive = values <= 0
        if non_positive.any():
            z, y, x = np.unravel_index(
                int(np.flatnonzero(non_positive.ravel())[0]), non_positive.shape
            )
            tile = Dim3(int(x), int(y), int(z))
            raise SynchronizationError(
                f"{self.name}: tile {tile} has non-positive expected value "
                f"{self.expected_value(tile, grid)}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _defining_class(cls: type, attribute: str) -> Optional[type]:
    for klass in cls.__mro__:
        if attribute in vars(klass):
            return klass
    return None


#: Per-class memo of whether the batch methods can be trusted (see below).
_BATCH_NATIVE: Dict[type, bool] = {}


def _has_native_batch(cls: type) -> bool:
    """Whether ``cls`` provides batch methods consistent with its scalars.

    A batch method is trusted only when it is defined at (or below) the
    class that defines the scalar method it mirrors: a subclass that
    overrides ``semaphore_index`` but inherits ``semaphore_index_batch``
    from its parent would silently diverge, so such classes fall back to
    the scalar loop.
    """
    cached = _BATCH_NATIVE.get(cls)
    if cached is None:
        cached = True
        for scalar, batch in (
            ("semaphore_index", "semaphore_index_batch"),
            ("expected_value", "expected_value_batch"),
        ):
            batch_def = _defining_class(cls, batch)
            scalar_def = _defining_class(cls, scalar)
            if batch_def is None or batch_def is SyncPolicy:
                cached = False
            elif scalar_def is not None and not issubclass(batch_def, scalar_def):
                cached = False
        _BATCH_NATIVE[cls] = cached
    return cached


class TileSync(SyncPolicy):
    """One semaphore per producer tile (the paper's finest-grained policy)."""

    name = "TileSync"

    def num_semaphores(self, grid: Dim3) -> int:
        return grid.volume

    def semaphore_index(self, tile: Dim3, grid: Dim3) -> int:
        return (tile.z * grid.y + tile.y) * grid.x + tile.x

    def expected_value(self, tile: Dim3, grid: Dim3) -> int:
        return 1

    def semaphore_index_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return (zs * grid.y + ys) * grid.x + xs

    def expected_value_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return np.ones(xs.shape, dtype=np.int64)


class RowSync(SyncPolicy):
    """One semaphore per row of producer tiles.

    All tiles with the same ``y`` (and batch) share a semaphore; the row is
    ready when the semaphore reaches ``grid.x``.  Compared to TileSync this
    trades overlap granularity for far fewer synchronization operations,
    which the paper shows wins for large GeMMs (Table IV, sizes >= 512).
    """

    name = "RowSync"

    def num_semaphores(self, grid: Dim3) -> int:
        return grid.y * grid.z

    def semaphore_index(self, tile: Dim3, grid: Dim3) -> int:
        return tile.z * grid.y + tile.y

    def expected_value(self, tile: Dim3, grid: Dim3) -> int:
        return grid.x

    def semaphore_index_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return zs * grid.y + ys

    def expected_value_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return np.full(xs.shape, grid.x, dtype=np.int64)


@dataclass
class StridedSync(SyncPolicy):
    """Tiles whose columns differ by a multiple of ``stride`` share a semaphore.

    This is the policy cuSyncGen generates for the attention dependence
    where one consumer tile needs the Q, K and V slices of the fused QKV
    GeMM output: producer tiles ``x``, ``x + stride`` and ``x + 2*stride``
    (with ``stride = grid.x / groups``) map to the same semaphore, and the
    semaphore is ready once all ``groups`` tiles have posted.
    """

    stride: int
    name: str = "StridedSync"

    def __post_init__(self) -> None:
        check_positive("stride", self.stride)

    def key(self) -> Tuple:
        return (type(self).__name__, self.stride)

    def groups(self, grid: Dim3) -> int:
        if grid.x % self.stride != 0:
            raise SynchronizationError(
                f"StridedSync stride {self.stride} does not divide grid.x={grid.x}"
            )
        return grid.x // self.stride

    def num_semaphores(self, grid: Dim3) -> int:
        return self.stride * grid.y * grid.z

    def semaphore_index(self, tile: Dim3, grid: Dim3) -> int:
        return (tile.z * grid.y + tile.y) * self.stride + (tile.x % self.stride)

    def expected_value(self, tile: Dim3, grid: Dim3) -> int:
        return self.groups(grid)

    def semaphore_index_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return (zs * grid.y + ys) * self.stride + xs % self.stride

    def expected_value_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return np.full(xs.shape, self.groups(grid), dtype=np.int64)


class Conv2DTileSync(TileSync):
    """Per-tile synchronization for implicit-GeMM Conv2D kernels.

    Functionally identical to :class:`TileSync` on the producer's tile grid;
    the difference in the paper is how the *consumer's* implicit-GeMM
    coordinates map back to producer tiles (the ``x / (R*S)`` mapping of
    Figure 5c), which in this reproduction is handled by the stage's
    range-to-tile mapping, including the receptive-field halo.
    """

    name = "Conv2DTileSync"


class BatchSync(SyncPolicy):
    """One semaphore per batch entry: the coarsest useful granularity.

    Not evaluated in the paper, but a useful lower bound when studying the
    synchronization-granularity trade-off in the ablation benchmarks.
    """

    name = "BatchSync"

    def num_semaphores(self, grid: Dim3) -> int:
        return grid.z

    def semaphore_index(self, tile: Dim3, grid: Dim3) -> int:
        return tile.z

    def expected_value(self, tile: Dim3, grid: Dim3) -> int:
        return grid.x * grid.y

    def semaphore_index_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return np.broadcast_to(zs, xs.shape).copy()

    def expected_value_batch(self, xs, ys, zs, grid: Dim3) -> np.ndarray:
        return np.full(xs.shape, grid.x * grid.y, dtype=np.int64)


# ======================================================================
# The first-class policy space: specs, registry, assignments
# ======================================================================
class PolicySpec:
    """A policy family plus parameters, without an instance.

    Specs are the *declarative* half of the policy space: hashable (usable
    as dict keys and in frozen dataclasses such as
    :class:`~repro.pipeline.session.SweepPoint`), picklable (they cross
    process boundaries in parallel sweeps) and cheap.  They are turned into
    :class:`SyncPolicy` objects by :func:`resolve_policy`, which consults
    the family registry with a per-stage :class:`PolicyContext`::

        PolicySpec("RowSync")
        PolicySpec("StridedSync", stride=4)
        PolicySpec("StridedTileSync", groups=3)   # grid-adaptive family

    Parameter values must themselves be hashable.
    """

    __slots__ = ("family", "params")

    def __init__(self, family: str, **params: Any) -> None:
        if not isinstance(family, str) or not family:
            raise ModelConfigError("PolicySpec needs a non-empty family name")
        object.__setattr__(self, "family", family)
        object.__setattr__(self, "params", tuple(sorted(params.items())))

    @classmethod
    def _from_state(cls, family: str, params: Tuple[Tuple[str, Any], ...]) -> "PolicySpec":
        spec = cls.__new__(cls)
        object.__setattr__(spec, "family", family)
        object.__setattr__(spec, "params", tuple(params))
        return spec

    @classmethod
    def coerce(cls, value: Union[str, "PolicySpec"]) -> "PolicySpec":
        """Lower a family-name string to a spec; pass specs through."""
        if isinstance(value, PolicySpec):
            return value
        if isinstance(value, str):
            return cls(value)
        raise ModelConfigError(
            f"expected a policy family name or PolicySpec, got {value!r} "
            f"(pass SyncPolicy instances via StageSpec.policy / Edge.policy)"
        )

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)

    def label(self) -> str:
        if not self.params:
            return self.family
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.family}({rendered})"

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("PolicySpec is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicySpec):
            return NotImplemented
        return (self.family.lower(), self.params) == (other.family.lower(), other.params)

    def __hash__(self) -> int:
        return hash((self.family.lower(), self.params))

    def __reduce__(self):
        return (PolicySpec._from_state, (self.family, self.params))

    def __repr__(self) -> str:
        return f"PolicySpec({self.label()!r})" if self.params else f"PolicySpec({self.family!r})"


@dataclass(frozen=True)
class PolicyContext:
    """What a policy factory may know about the producer stage it serves.

    ``logical_grid`` is the producer's grid of logical output tiles;
    ``strided_groups`` is the stage's declared Q/K/V-style grouping (see
    :class:`~repro.pipeline.graph.StageSpec`).  All fields are optional so
    specs can also be resolved stage-free (e.g. in tests).
    """

    stage_name: str = ""
    logical_grid: Optional[Dim3] = None
    strided_groups: Optional[int] = None


#: A factory builds a policy instance from spec parameters and the context.
PolicyFactory = Callable[[Dict[str, Any], PolicyContext], SyncPolicy]
#: An order factory optionally pairs a tile processing order with a family
#: (returning ``None`` means "use the executor default, row-major").
OrderFactory = Callable[[Dict[str, Any], PolicyContext], Optional[object]]


@dataclass(frozen=True)
class _PolicyEntry:
    canonical: str
    factory: PolicyFactory
    order_factory: Optional[OrderFactory] = None


_POLICY_REGISTRY: Dict[str, _PolicyEntry] = {}

#: Bumped on every registry mutation; consumers that key derived caches on
#: policy *specs* (whose meaning resolves through this registry) compare
#: generations to know when to flush — mirrors
#: :func:`repro.gpu.arch.arch_registry_generation`.
_REGISTRY_GENERATION = 0


def policy_registry_generation() -> int:
    """Monotonic counter of policy-registry mutations (register/unregister)."""
    return _REGISTRY_GENERATION


def register_policy(
    family: str,
    factory: Optional[PolicyFactory] = None,
    *,
    aliases: Iterable[str] = (),
    order_factory: Optional[OrderFactory] = None,
    overwrite: bool = False,
):
    """Register a policy family under ``family`` (and ``aliases``).

    Usable directly (``register_policy("MySync", make_mysync)``) or as a
    decorator over the factory::

        @register_policy("HaloSync", aliases=("halo",))
        def _make_halo(params, ctx):
            return HaloSync(radius=params.get("radius", 1))

    The factory receives the spec's parameters (a plain dict) and a
    :class:`PolicyContext`; it returns a ready :class:`SyncPolicy`.  An
    ``order_factory`` may pair a custom tile processing order with the
    family (the registry hook behind ``StridedTileSync``'s grouped-columns
    order).  Re-registering a taken name raises unless ``overwrite=True``.
    """

    def _register(the_factory: PolicyFactory) -> PolicyFactory:
        global _REGISTRY_GENERATION
        entry = _PolicyEntry(
            canonical=family, factory=the_factory, order_factory=order_factory
        )
        names = [name.lower() for name in (family, *aliases)]
        # Validate every name before inserting any, so a conflicting alias
        # cannot leave a partial registration behind.
        if not overwrite:
            for name in names:
                existing = _POLICY_REGISTRY.get(name)
                if existing is not None:
                    raise ModelConfigError(
                        f"policy family {name!r} is already registered "
                        f"(for {existing.canonical!r}); pass overwrite=True to replace it"
                    )
        for name in names:
            _POLICY_REGISTRY[name] = entry
        _REGISTRY_GENERATION += 1
        return the_factory

    if factory is not None:
        return _register(factory)
    return _register


def unregister_policy(family: str) -> None:
    """Remove a family and every alias registered for it.

    Aliases are matched by the entry's canonical name (not object
    identity), so stale aliases left behind by an ``overwrite=True``
    re-registration are cleaned up too.
    """
    global _REGISTRY_GENERATION
    canonical = _registry_entry(family).canonical.lower()
    for name in [n for n, e in _POLICY_REGISTRY.items() if e.canonical.lower() == canonical]:
        del _POLICY_REGISTRY[name]
    _REGISTRY_GENERATION += 1


def registered_policies() -> Tuple[str, ...]:
    """Canonical names of every registered family, sorted."""
    return tuple(sorted({entry.canonical for entry in _POLICY_REGISTRY.values()}))


def _registry_entry(family: str) -> _PolicyEntry:
    entry = _POLICY_REGISTRY.get(family.lower())
    if entry is None:
        raise ModelConfigError(f"unknown synchronization policy family {family!r}")
    return entry


def resolve_policy(
    policy: Union[str, PolicySpec, SyncPolicy],
    context: Optional[PolicyContext] = None,
) -> SyncPolicy:
    """Turn a family name / spec into a policy instance for one stage.

    :class:`SyncPolicy` instances pass through unchanged; strings lower to
    parameterless specs.  ``context`` defaults to an empty context, which
    is enough for families that need no stage information.
    """
    if isinstance(policy, SyncPolicy):
        return policy
    spec = PolicySpec.coerce(policy)
    entry = _registry_entry(spec.family)
    return entry.factory(dict(spec.params), context if context is not None else PolicyContext())


def resolve_order_for(
    policy: Union[str, PolicySpec],
    context: Optional[PolicyContext] = None,
):
    """The tile processing order a family pairs with, or ``None`` for default."""
    spec = PolicySpec.coerce(policy)
    entry = _registry_entry(spec.family)
    if entry.order_factory is None:
        return None
    return entry.order_factory(dict(spec.params), context if context is not None else PolicyContext())


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
def _reject_params(family: str, params: Dict[str, Any]) -> None:
    if params:
        raise ModelConfigError(
            f"policy family {family!r} takes no parameters, got {sorted(params)}"
        )


def _make_tilesync(params: Dict[str, Any], ctx: PolicyContext) -> SyncPolicy:
    _reject_params("TileSync", params)
    return TileSync()


def _make_rowsync(params: Dict[str, Any], ctx: PolicyContext) -> SyncPolicy:
    _reject_params("RowSync", params)
    return RowSync()


def _make_conv2d_tilesync(params: Dict[str, Any], ctx: PolicyContext) -> SyncPolicy:
    _reject_params("Conv2DTileSync", params)
    return Conv2DTileSync()


def _make_batchsync(params: Dict[str, Any], ctx: PolicyContext) -> SyncPolicy:
    _reject_params("BatchSync", params)
    return BatchSync()


def _make_stridedsync(params: Dict[str, Any], ctx: PolicyContext) -> SyncPolicy:
    stride = params.get("stride")
    groups = params.get("groups")
    unknown = set(params) - {"stride", "groups"}
    if unknown:
        raise ModelConfigError(
            f"policy family 'StridedSync' got unknown parameters {sorted(unknown)}"
        )
    if stride is None:
        if groups is None:
            raise ModelConfigError(
                "PolicySpec('StridedSync') needs stride=... or groups=..."
            )
        if ctx.logical_grid is None:
            raise ModelConfigError(
                "PolicySpec('StridedSync', groups=...) needs a stage context "
                "to derive the stride from the producer grid"
            )
        if ctx.logical_grid.x % groups != 0:
            raise SynchronizationError(
                f"StridedSync groups {groups} does not divide "
                f"grid.x={ctx.logical_grid.x}"
            )
        stride = ctx.logical_grid.x // groups
    return StridedSync(stride=stride)


def _strided_tile_groups(params: Dict[str, Any], ctx: PolicyContext) -> Optional[int]:
    """The group count StridedTileSync specialises on, or None to fall back."""
    unknown = set(params) - {"groups"}
    if unknown:
        raise ModelConfigError(
            f"policy family 'StridedTileSync' got unknown parameters {sorted(unknown)}"
        )
    groups = params.get("groups", ctx.strided_groups)
    grid = ctx.logical_grid
    if groups is not None and grid is not None and grid.x % groups == 0 and grid.x > groups:
        return groups
    return None


def _make_strided_tilesync(params: Dict[str, Any], ctx: PolicyContext) -> SyncPolicy:
    groups = _strided_tile_groups(params, ctx)
    if groups is not None:
        return StridedSync(stride=ctx.logical_grid.x // groups)
    return TileSync()


def _strided_tilesync_order(params: Dict[str, Any], ctx: PolicyContext):
    from repro.cusync.tile_orders import GroupedColumnsOrder

    groups = _strided_tile_groups(params, ctx)
    if groups is not None:
        return GroupedColumnsOrder(group=groups)
    return None


register_policy("TileSync", _make_tilesync, aliases=("tile",))
register_policy("RowSync", _make_rowsync, aliases=("row",))
register_policy("Conv2DTileSync", _make_conv2d_tilesync, aliases=("conv2dtile",))
register_policy("BatchSync", _make_batchsync, aliases=("batch",))
register_policy("StridedSync", _make_stridedsync)
register_policy(
    "StridedTileSync",
    _make_strided_tilesync,
    aliases=("strided",),
    order_factory=_strided_tilesync_order,
)


# ----------------------------------------------------------------------
# Per-edge policy assignment
# ----------------------------------------------------------------------
#: Keys addressing one graph edge: ``(producer, consumer, tensor)`` exact,
#: or ``(producer, consumer)`` matching every tensor of the pair.
EdgeKey = Union[Tuple[str, str, str], Tuple[str, str]]


def _normalize_edge_key(key) -> Tuple[str, str, Optional[str]]:
    if hasattr(key, "producer") and hasattr(key, "consumer"):
        return (key.producer, key.consumer, getattr(key, "tensor", None))
    parts = tuple(key)
    if len(parts) == 2:
        return (parts[0], parts[1], None)
    if len(parts) == 3:
        return (parts[0], parts[1], parts[2])
    raise ModelConfigError(
        f"edge keys are (producer, consumer[, tensor]) tuples or Edge objects, got {key!r}"
    )


class PolicyAssignment:
    """Per-edge policy specs over a pipeline graph, with a run-wide default.

    An assignment decides, for every producer → consumer edge, which policy
    family guards the consumer's reads of that edge's tensor:

    * ``edges`` overrides win (keyed exactly by ``(producer, consumer,
      tensor)`` or for the whole pair by ``(producer, consumer)``);
    * otherwise the producer stage's entry in ``stages`` applies;
    * otherwise ``default`` applies.

    The stage entry also selects the producer's *posting* policy and tile
    order, exactly like the legacy run-wide family string did — stage-level
    overrides are sugar that lowers onto every edge out of the stage.
    Assignments are immutable, hashable and picklable, so they ride inside
    :class:`~repro.pipeline.session.SweepPoint` grids across process
    boundaries::

        PolicyAssignment(
            default="RowSync",
            edges={("attn_qkv", "attn_scores", "XQ"): "StridedTileSync"},
        )
    """

    __slots__ = ("default", "stages", "edges")

    def __init__(
        self,
        default: Union[str, PolicySpec] = "TileSync",
        stages: Optional[Mapping[str, Union[str, PolicySpec]]] = None,
        edges: Optional[Mapping[EdgeKey, Union[str, PolicySpec]]] = None,
    ) -> None:
        object.__setattr__(self, "default", PolicySpec.coerce(default))
        object.__setattr__(
            self,
            "stages",
            tuple(
                sorted((name, PolicySpec.coerce(spec)) for name, spec in (stages or {}).items())
            ),
        )
        normalized = {}
        for key, spec in (edges or {}).items():
            normalized[_normalize_edge_key(key)] = PolicySpec.coerce(spec)
        object.__setattr__(
            self,
            "edges",
            tuple(sorted(normalized.items(), key=lambda item: (item[0][0], item[0][1], item[0][2] or ""))),
        )

    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, value: Union[str, PolicySpec, "PolicyAssignment"]) -> "PolicyAssignment":
        """Lower a family name / spec to a uniform assignment; pass through."""
        if isinstance(value, PolicyAssignment):
            return value
        return cls(default=PolicySpec.coerce(value))

    def spec_for_stage(self, name: str) -> PolicySpec:
        for stage_name, spec in self.stages:
            if stage_name == name:
                return spec
        return self.default

    def spec_for_edge(
        self, producer: str, consumer: str, tensor: str
    ) -> Optional[PolicySpec]:
        """The edge's override spec, or ``None`` (inherit the producer stage)."""
        pair_match: Optional[PolicySpec] = None
        for (key_producer, key_consumer, key_tensor), spec in self.edges:
            if key_producer != producer or key_consumer != consumer:
                continue
            if key_tensor == tensor:
                return spec
            if key_tensor is None:
                pair_match = spec
        return pair_match

    def edge_keys(self) -> Tuple[Tuple[str, str, Optional[str]], ...]:
        return tuple(key for key, _ in self.edges)

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.stages)

    # ------------------------------------------------------------------
    def with_default(self, default: Union[str, PolicySpec]) -> "PolicyAssignment":
        return PolicyAssignment(default=default, stages=dict(self.stages), edges=dict(self.edges))

    def with_stage(self, name: str, spec: Union[str, PolicySpec]) -> "PolicyAssignment":
        stages = dict(self.stages)
        stages[name] = PolicySpec.coerce(spec)
        return PolicyAssignment(default=self.default, stages=stages, edges=dict(self.edges))

    def with_edge(self, key: EdgeKey, spec: Union[str, PolicySpec]) -> "PolicyAssignment":
        edges = dict(self.edges)
        edges[_normalize_edge_key(key)] = PolicySpec.coerce(spec)
        return PolicyAssignment(default=self.default, stages=dict(self.stages), edges=edges)

    # ------------------------------------------------------------------
    def label(self) -> str:
        parts = [self.default.label()]
        parts.extend(f"{name}={spec.label()}" for name, spec in self.stages)
        for (producer, consumer, tensor), spec in self.edges:
            edge = f"{producer}->{consumer}" + (f":{tensor}" if tensor else "")
            parts.append(f"{edge}={spec.label()}")
        return "+".join(parts) if len(parts) > 1 else parts[0]

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("PolicyAssignment is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyAssignment):
            return NotImplemented
        return (self.default, self.stages, self.edges) == (other.default, other.stages, other.edges)

    def __hash__(self) -> int:
        return hash((self.default, self.stages, self.edges))

    def __reduce__(self):
        return (
            PolicyAssignment,
            (self.default, dict(self.stages), {key: spec for key, spec in self.edges}),
        )

    def __repr__(self) -> str:
        return f"PolicyAssignment({self.label()})"
