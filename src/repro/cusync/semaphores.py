"""Semaphore allocation for cuSync stages.

The ``init`` method of the paper's ``CuStage`` allocates one global-memory
semaphore array per stage, sized by the stage's policy.  In the
reproduction the allocation happens once per pipeline run so that repeated
runs (warmup + measured iterations in benchmarks) start from zeroed
semaphores, exactly as the CUDA implementation re-initializes its arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.gpu.memory import GlobalMemory, SemaphoreArray

#: Name of the shared array holding one "kernel has started" flag per stage,
#: used by the wait-kernel mechanism (Section III-B).
STAGE_START_ARRAY = "cusync_stage_start"


def stage_semaphore_array(stage_name: str, slot: int = 0) -> str:
    """Name of a tile-semaphore array belonging to ``stage_name``.

    Slot 0 is the stage's own (default) policy and keeps the historical
    name; additional slots exist only when consumer edges override the
    producer's policy (per-edge policy assignment), one array per distinct
    override policy.
    """
    if slot == 0:
        return f"cusync_{stage_name}_sems"
    return f"cusync_{stage_name}_sems.{slot}"


class SemaphoreAllocator:
    """Allocates (or re-initializes) all semaphore state of a pipeline."""

    def __init__(self, memory: GlobalMemory):
        self.memory = memory

    def allocate(self, stages: Iterable) -> Dict[str, SemaphoreArray]:
        """Allocate per-stage tile semaphores plus the stage-start flags.

        ``stages`` is an iterable of :class:`~repro.cusync.custage.CuStage`;
        the import is kept local to avoid a circular dependency.  Every
        policy slot of a stage (the default policy plus any per-edge
        overrides) gets its own array, sized by that slot's policy.

        Returns the allocated arrays by name.  Re-allocation at an
        unchanged size re-initializes the existing array in place (see
        :meth:`~repro.gpu.memory.GlobalMemory.alloc_semaphores`), so the
        raw backing lists the simulator pre-resolves per run — and any
        reference a caller takes from the returned mapping — stay valid
        across the warmup/measure re-allocations of repeated pipeline runs.
        """
        stage_list = list(stages)
        arrays: Dict[str, SemaphoreArray] = {}
        if not stage_list:
            return arrays
        start = self.memory.alloc_semaphores(STAGE_START_ARRAY, len(stage_list))
        arrays[STAGE_START_ARRAY] = start
        for stage in stage_list:
            for array, policy in stage.semaphore_slots():
                count = policy.num_semaphores(stage.logical_grid)
                arrays[array] = self.memory.alloc_semaphores(array, max(1, count))
        return arrays
