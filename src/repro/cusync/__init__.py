"""cuSync: fine-grained synchronization of dependent kernels.

This package is the reproduction of the paper's primary contribution.  It
provides:

* :class:`~repro.cusync.custage.CuStage` — per-kernel synchronization state
  (tile order, wait/post mapping, wait-kernel release);
* the synchronization policies of Section III-E / IV
  (:mod:`repro.cusync.policies`): TileSync, RowSync, StridedSync,
  Conv2DTileSync and BatchSync;
* tile processing orders (:mod:`repro.cusync.tile_orders`);
* the W/R/T optimizations of Section IV-C
  (:mod:`repro.cusync.optimizations`);
* :class:`~repro.cusync.handle.CuSyncPipeline` — the host-side API that
  wires stages, dependencies, streams and wait-kernels together and runs
  the result on the GPU simulator.
"""

from repro.cusync.policies import (
    SyncPolicy,
    TileSync,
    RowSync,
    StridedSync,
    Conv2DTileSync,
    BatchSync,
    PolicySpec,
    PolicyContext,
    PolicyAssignment,
    register_policy,
    unregister_policy,
    registered_policies,
    resolve_policy,
    resolve_order_for,
)
from repro.cusync.tile_orders import (
    TileOrder,
    RowMajorOrder,
    ColumnMajorOrder,
    GroupedColumnsOrder,
    FunctionOrder,
    ExplicitOrder,
)
from repro.cusync.optimizations import OptimizationFlags, auto_optimizations, decorate_policy_name
from repro.cusync.custage import CuStage, Dependency, RangeMap
from repro.cusync.semaphores import SemaphoreAllocator, STAGE_START_ARRAY, stage_semaphore_array
from repro.cusync.handle import CuSyncPipeline, PipelineResult

__all__ = [
    "SyncPolicy",
    "TileSync",
    "RowSync",
    "StridedSync",
    "Conv2DTileSync",
    "BatchSync",
    "PolicySpec",
    "PolicyContext",
    "PolicyAssignment",
    "register_policy",
    "unregister_policy",
    "registered_policies",
    "resolve_policy",
    "resolve_order_for",
    "TileOrder",
    "RowMajorOrder",
    "ColumnMajorOrder",
    "GroupedColumnsOrder",
    "FunctionOrder",
    "ExplicitOrder",
    "OptimizationFlags",
    "auto_optimizations",
    "decorate_policy_name",
    "CuStage",
    "Dependency",
    "RangeMap",
    "SemaphoreAllocator",
    "STAGE_START_ARRAY",
    "stage_semaphore_array",
    "CuSyncPipeline",
    "PipelineResult",
]
