"""Tile processing orders (Section III-C).

The CUDA runtime may schedule thread blocks onto SMs in any order; cuSync
therefore decouples *which block runs* from *which tile it processes*: each
block atomically increments a counter when it starts and processes the tile
at that position of a precomputed order.  The order is chosen so the
consumer consumes tiles in the same order the producer produces them,
minimizing busy-wait time.

The classes here produce the permutation of tiles for a grid; the
:class:`~repro.cusync.custage.CuStage` turns it into the per-dispatch lookup
the simulator uses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.common.dim3 import Dim3
from repro.common.tiles import delinearize, iter_tiles
from repro.common.validation import check_positive
from repro.errors import SynchronizationError


class TileOrder(ABC):
    """A total order over the tiles of a grid."""

    name: str = "order"

    @abstractmethod
    def permutation(self, grid: Dim3) -> List[Dim3]:
        """Tiles in processing order: entry *i* is processed by the *i*-th block."""

    def order_fn(self, grid: Dim3) -> Callable[[int], Dim3]:
        """Lookup function handed to the simulator's dispatch counter."""
        order = self.permutation(grid)
        if len(order) != grid.volume:
            raise SynchronizationError(
                f"{self.name}: permutation has {len(order)} entries for grid {grid} "
                f"with {grid.volume} tiles"
            )
        if len(set(order)) != len(order):
            raise SynchronizationError(f"{self.name}: permutation repeats tiles for grid {grid}")

        def lookup(dispatch_index: int) -> Dim3:
            return order[dispatch_index]

        return lookup

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RowMajorOrder(TileOrder):
    """x fastest, then y, then z — the paper's ``RowMajor`` function."""

    name = "RowMajor"

    def permutation(self, grid: Dim3) -> List[Dim3]:
        return list(iter_tiles(grid))


class ColumnMajorOrder(TileOrder):
    """y fastest, then x, then z."""

    name = "ColumnMajor"

    def permutation(self, grid: Dim3) -> List[Dim3]:
        tiles: List[Dim3] = []
        for z in range(grid.z):
            for x in range(grid.x):
                for y in range(grid.y):
                    tiles.append(Dim3(x, y, z))
        return tiles


@dataclass
class GroupedColumnsOrder(TileOrder):
    """Process groups of ``group`` consecutive column tiles of a row together.

    This is the shape of the order cuSyncGen generates for strided
    dependences: all producer tiles one consumer tile needs are scheduled
    consecutively (Section IV-A, "Generate Tile Processing Order").  With
    ``group = grid.x`` it degenerates to row-major order.
    """

    group: int
    name: str = "GroupedColumns"

    def __post_init__(self) -> None:
        check_positive("group", self.group)

    def permutation(self, grid: Dim3) -> List[Dim3]:
        if grid.x % self.group != 0:
            raise SynchronizationError(
                f"GroupedColumnsOrder group {self.group} does not divide grid.x={grid.x}"
            )
        stride = grid.x // self.group
        tiles: List[Dim3] = []
        for z in range(grid.z):
            for y in range(grid.y):
                for start in range(stride):
                    for member in range(self.group):
                        tiles.append(Dim3(start + member * stride, y, z))
        return tiles


@dataclass
class FunctionOrder(TileOrder):
    """Wrap an arbitrary ``linear index -> priority`` function as an order.

    The function receives the tile's row-major linear index and grid and
    must return a unique priority; tiles are processed in increasing
    priority.  This is the escape hatch for generated or experimental
    orders.
    """

    function: Callable[[Dim3, Dim3], int]
    name: str = "FunctionOrder"

    def permutation(self, grid: Dim3) -> List[Dim3]:
        tiles = list(iter_tiles(grid))
        priorities = [self.function(tile, grid) for tile in tiles]
        if len(set(priorities)) != len(priorities):
            raise SynchronizationError(
                f"{self.name}: priority function is not a bijection on grid {grid}"
            )
        paired = sorted(zip(priorities, range(len(tiles))))
        return [tiles[index] for _, index in paired]


@dataclass
class ExplicitOrder(TileOrder):
    """An order given as an explicit list of tiles (used by tests/codegen)."""

    tiles: Sequence[Dim3]
    name: str = "ExplicitOrder"

    def permutation(self, grid: Dim3) -> List[Dim3]:
        return list(self.tiles)
