"""Python reproduction of *cuSync* (CGO 2024).

cuSync is a framework for fine-grained synchronization of dependent GPU
kernels: instead of stream synchronization (consumer waits for every thread
block of the producer), dependent kernels run on separate streams and only
dependent *tiles* synchronize through global-memory semaphores, letting
independent tiles of both kernels share the GPU's final, otherwise
under-utilized wave.

This package re-implements the whole system on top of a discrete-event GPU
simulator (no GPU required):

* :mod:`repro.gpu` — the simulated GPU substrate (SMs, waves, streams,
  semaphores, cost model);
* :mod:`repro.kernels` — tiled GeMM / Conv2D / Softmax-Dropout / copy
  kernels (the CUTLASS analogue);
* :mod:`repro.cusync` — the cuSync framework itself (stages, policies, tile
  orders, optimizations, pipelines);
* :mod:`repro.pipeline` — the declarative API: one immutable
  :class:`~repro.pipeline.PipelineGraph` per computation, pluggable
  execution backends (``streamsync`` / ``streamk`` / ``cusync``) and a
  :class:`~repro.pipeline.Session` for repeated runs and parallel sweeps;
* :mod:`repro.dsl` — the cuSyncGen DSL and policy/tile-order compiler;
* :mod:`repro.models` — the ML-model workloads of the evaluation (GPT-3,
  LLaMA, ResNet-38, VGG-19);
* :mod:`repro.baselines` — StreamSync and Stream-K;
* :mod:`repro.bench` — the experiment harness reproducing every table and
  figure of the paper's evaluation;
* :mod:`repro.service` — the sweep service: content-addressed result
  persistence plus an async, coalescing job layer;
* :mod:`repro.serving` — request-level serving on the simulator:
  open-loop traffic, continuous batching, latency-percentile reports.
"""

from repro.errors import (
    ReproError,
    SimulationError,
    DeadlockError,
    LivelockError,
    SemaphoreWaiter,
    SweepPointError,
    FaultInjectionError,
    InjectedCrashError,
    InjectedFaultError,
    SynchronizationError,
    GraphValidationError,
    DataRaceError,
    DslError,
    DslBoundsError,
    CodegenError,
    ModelConfigError,
    ServingError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "LivelockError",
    "SemaphoreWaiter",
    "SweepPointError",
    "FaultInjectionError",
    "InjectedCrashError",
    "InjectedFaultError",
    "SynchronizationError",
    "GraphValidationError",
    "DataRaceError",
    "DslError",
    "DslBoundsError",
    "CodegenError",
    "ModelConfigError",
    "ServingError",
    "__version__",
]
