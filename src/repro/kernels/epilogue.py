"""Fused pointwise epilogues.

The paper fuses pointwise computations with GeMM/Conv2D kernels: GPT-3's MLP
fuses GeLU with the first GeMM (Figure 2a), LLaMA fuses SwiGLU with its
third GeMM (Figure 3).  An epilogue contributes a small amount of extra
compute to the tile's final segment and, in functional mode, transforms the
computed tile values.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class Epilogue(ABC):
    """A pointwise function applied to an output tile as it is stored."""

    #: Extra floating point operations per output element.
    flops_per_element: float = 0.0
    #: Extra input elements read per output element (e.g. SwiGLU reads XV).
    extra_reads_per_element: float = 0.0

    @abstractmethod
    def apply(self, values: np.ndarray, memory=None, rows=None, cols=None, batch=0) -> np.ndarray:
        """Apply the epilogue to ``values`` (a tile of the output)."""

    @property
    def name(self) -> str:
        return type(self).__name__


class Identity(Epilogue):
    """No epilogue: the tile is stored unchanged."""

    flops_per_element = 0.0

    def apply(self, values, memory=None, rows=None, cols=None, batch=0):
        return values


class ReLU(Epilogue):
    """Rectified linear unit."""

    flops_per_element = 1.0

    def apply(self, values, memory=None, rows=None, cols=None, batch=0):
        return np.maximum(values, 0.0)


class GeLU(Epilogue):
    """Gaussian error linear unit (tanh approximation, as used by GPT-3)."""

    flops_per_element = 10.0

    def apply(self, values, memory=None, rows=None, cols=None, batch=0):
        inner = math.sqrt(2.0 / math.pi) * (values + 0.044715 * values ** 3)
        return 0.5 * values * (1.0 + np.tanh(inner))


class SwiGLUMultiply(Epilogue):
    """The SwiGLU gate of LLaMA's MLP: ``Swish(XW1) * XV`` (Figure 3).

    The epilogue reads the matching tile of a second tensor (``gate_tensor``)
    from global memory and multiplies element-wise after applying the Swish
    (SiLU) activation to the GeMM result.
    """

    flops_per_element = 6.0
    extra_reads_per_element = 1.0

    def __init__(self, gate_tensor: str):
        self.gate_tensor = gate_tensor

    def apply(self, values, memory=None, rows=None, cols=None, batch=0):
        swish = values / (1.0 + np.exp(-values))
        if memory is None or not memory.has_tensor(self.gate_tensor):
            return swish
        gate = memory.tensor(self.gate_tensor)
        if gate.ndim == 3:
            gate_tile = gate[batch, rows[0]:rows[1], cols[0]:cols[1]]
        else:
            gate_tile = gate[rows[0]:rows[1], cols[0]:cols[1]]
        return swish * gate_tile
