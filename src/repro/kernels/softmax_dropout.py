"""Fused Softmax + Dropout kernel.

The paper's Attention implementation develops a fused Softmax-Dropout CUDA
kernel for the ``R = Softmax(Dropout(P))`` step between the two attention
GeMMs (Figure 2b) and reports it needs only 5 changed lines to adopt cuSync
(Table III).  The kernel is row-wise: each thread block normalizes a band of
rows of the attention-score matrix ``P``; a row of the output depends on the
*entire* row of ``P`` (the ForAll dependence of Figure 5b), which is what
makes RowSync-style policies natural here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.dim3 import Dim3, ceil_div
from repro.common.validation import check_in_range, check_positive
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import Segment, TensorAccess, ThreadBlockProgram
from repro.gpu.memory import GlobalMemory
from repro.gpu.occupancy import KernelResources, SOFTMAX_KERNEL_RESOURCES
from repro.kernels.base import ReadPlanStep, StageGeometry, SyncInterface, TiledKernel


@dataclass(frozen=True)
class SoftmaxDropoutProblem:
    """Row-wise softmax followed by dropout over a ``[rows, row_length]`` matrix.

    In attention, ``rows`` is ``B * S`` query positions (per batch entry and
    generated token) and ``row_length`` is the number of attended keys
    ``S + S'``.
    """

    rows: int
    row_length: int
    input: str = "P"
    output: str = "R"
    dropout_probability: float = 0.1
    seed: int = 0
    batch: int = 1
    element_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("row_length", self.row_length)
        check_in_range("dropout_probability", self.dropout_probability, 0.0, 1.0)

    @property
    def total_rows(self) -> int:
        return self.rows * self.batch


class SoftmaxDropoutKernel(TiledKernel):
    """Fused Softmax-Dropout kernel; one thread block per band of rows."""

    SYNC_CALL_SITES = 2

    def __init__(
        self,
        name: str,
        problem: SoftmaxDropoutProblem,
        rows_per_block: int = 8,
        sync: Optional[SyncInterface] = None,
        sync_inputs: Tuple[str, ...] = (),
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        super().__init__(name=name, cost_model=cost_model, sync=sync, functional=functional)
        check_positive("rows_per_block", rows_per_block)
        self.problem = problem
        self.rows_per_block = rows_per_block
        self.sync_inputs = tuple(sync_inputs)

    # ------------------------------------------------------------------
    # TiledKernel interface
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Dim3:
        return Dim3(1, ceil_div(self.problem.rows, self.rows_per_block), self.problem.batch)

    @property
    def resources(self) -> KernelResources:
        return SOFTMAX_KERNEL_RESOURCES

    def stage_geometry(self) -> StageGeometry:
        return StageGeometry(
            grid=self.grid,
            tile_rows=self.rows_per_block,
            tile_cols=self.problem.row_length,
            split_k=1,
            batch=self.problem.batch,
            output=self.problem.output,
        )

    def build_block_program(self, tile: Dim3) -> ThreadBlockProgram:
        problem = self.problem
        occupancy = self.occupancy()
        batch_index = tile.z
        rows = self._clamp_range(
            (tile.y * self.rows_per_block, (tile.y + 1) * self.rows_per_block), problem.rows
        )
        cols = (0, problem.row_length)

        if problem.input in self.sync_inputs:
            plan = self.sync.plan_reads(problem.input, rows, cols, batch_index)
        else:
            plan = [ReadPlanStep(rows=rows, cols=cols, batch=batch_index)]

        row_count = rows[1] - rows[0]
        duration = self.cost_model.softmax_tile_us(row_count, problem.row_length, occupancy)

        # The whole row must be resident before normalization can start, so
        # all waits land on the single compute segment.
        waits = [wait for step in plan for wait in step.waits]
        reads = [read for step in plan for read in step.reads]
        posts = self.sync.posts_for(tile, self.grid)
        writes = [TensorAccess(problem.output, self.sync.output_tile_key(tile, self.grid))]
        compute = self._make_compute(batch_index, rows) if self.functional else None

        segment = Segment(
            label=f"rows[{rows[0]}:{rows[1]}]",
            waits=waits,
            duration_us=duration,
            posts=posts,
            reads=reads,
            writes=writes,
            compute=compute,
        )
        return ThreadBlockProgram(tile=tile, segments=[segment])

    # ------------------------------------------------------------------
    # Functional (numpy) computation
    # ------------------------------------------------------------------
    def allocate_functional_tensors(self, memory: GlobalMemory) -> None:
        problem = self.problem
        shape = (
            (problem.rows, problem.row_length)
            if problem.batch == 1
            else (problem.batch, problem.rows, problem.row_length)
        )
        if not memory.has_tensor(problem.output):
            memory.store_tensor(problem.output, np.zeros(shape, dtype=np.float32))

    def _dropout_mask(self, batch: int, rows: Tuple[int, int]) -> np.ndarray:
        """Deterministic dropout mask for a band of rows.

        Seeding per (batch, row band) keeps the mask independent of tile
        ordering, so every policy produces bit-identical results.
        """
        problem = self.problem
        rng = np.random.default_rng((problem.seed, batch, rows[0]))
        keep = rng.random((rows[1] - rows[0], problem.row_length)) >= problem.dropout_probability
        if problem.dropout_probability >= 1.0:
            return np.zeros_like(keep, dtype=np.float32)
        return keep.astype(np.float32) / (1.0 - problem.dropout_probability)

    def _make_compute(self, batch: int, rows: Tuple[int, int]):
        problem = self.problem

        def compute(memory: GlobalMemory) -> None:
            source = memory.tensor(problem.input)
            target = memory.tensor(problem.output)
            if source.ndim == 3:
                values = source[batch, rows[0]:rows[1], :].astype(np.float32)
            else:
                values = source[rows[0]:rows[1], :].astype(np.float32)
            shifted = values - values.max(axis=1, keepdims=True)
            exponent = np.exp(shifted)
            softmax = exponent / exponent.sum(axis=1, keepdims=True)
            result = softmax * self._dropout_mask(batch, rows)
            if target.ndim == 3:
                target[batch, rows[0]:rows[1], :] = result
            else:
                target[rows[0]:rows[1], :] = result

        return compute

    def reference_result(self, memory: GlobalMemory) -> np.ndarray:
        problem = self.problem
        source = memory.tensor(problem.input).astype(np.float32)
        batched = source if source.ndim == 3 else source[np.newaxis, ...]
        out = np.zeros_like(batched)
        for batch in range(batched.shape[0]):
            values = batched[batch]
            shifted = values - values.max(axis=1, keepdims=True)
            exponent = np.exp(shifted)
            softmax = exponent / exponent.sum(axis=1, keepdims=True)
            for start in range(0, problem.rows, self.rows_per_block):
                rows = (start, min(problem.rows, start + self.rows_per_block))
                out[batch, rows[0]:rows[1], :] = softmax[rows[0]:rows[1], :] * self._dropout_mask(batch, rows)
        return out if source.ndim == 3 else out[0]
