"""Tiled GPU kernel library (the CUTLASS analogue of this reproduction).

The paper synchronizes CUTLASS GeMM and Conv2D kernels plus a hand-written
fused Softmax-Dropout kernel.  This package provides simulator-backed
equivalents.  Every kernel

* computes its launch *grid* from the problem and a tile configuration,
* describes each thread block as a :class:`~repro.gpu.kernel.ThreadBlockProgram`
  whose segments follow the paper's structure (wait for a tile of an input,
  load/compute a K-chunk, post the output tile),
* optionally carries a real numpy computation per tile so results can be
  validated against references, and
* talks to cuSync only through the small :class:`~repro.kernels.base.SyncInterface`
  so the same kernel code runs unmodified under StreamSync (no-op sync) and
  under any cuSync policy — mirroring the "few lines changed" property of
  Table III.
"""

from repro.kernels.base import (
    SyncInterface,
    NoSync,
    ReadPlanStep,
    StageGeometry,
    TiledKernel,
    KernelArtifacts,
)
from repro.kernels.epilogue import Epilogue, Identity, GeLU, ReLU, SwiGLUMultiply
from repro.kernels.gemm import GemmProblem, GemmConfig, GemmKernel, choose_gemm_config
from repro.kernels.conv2d import Conv2dProblem, Conv2dConfig, Conv2dKernel
from repro.kernels.softmax_dropout import SoftmaxDropoutProblem, SoftmaxDropoutKernel
from repro.kernels.elementwise import CopyProblem, CopyKernel
from repro.kernels.streamk import StreamKGemmKernel, StreamKSchedule

__all__ = [
    "SyncInterface",
    "NoSync",
    "ReadPlanStep",
    "StageGeometry",
    "TiledKernel",
    "KernelArtifacts",
    "Epilogue",
    "Identity",
    "GeLU",
    "ReLU",
    "SwiGLUMultiply",
    "GemmProblem",
    "GemmConfig",
    "GemmKernel",
    "choose_gemm_config",
    "Conv2dProblem",
    "Conv2dConfig",
    "Conv2dKernel",
    "SoftmaxDropoutProblem",
    "SoftmaxDropoutKernel",
    "CopyProblem",
    "CopyKernel",
    "StreamKGemmKernel",
    "StreamKSchedule",
]
