"""Elementwise copy kernel.

Section V-D of the paper bounds the overhead of cuSync's synchronization
with a deliberately worst-case pair of kernels: a producer that copies an
input array to an intermediate array and a consumer that copies the
intermediate array to the output, launched with the maximum number of
thread blocks per wave (80 SMs x occupancy 16 = 1280 on V100).  Each
consumer block depends on the producer block with the same index, the
per-block work is minimal, and the measured overhead of cuSync over
StreamSync is 2–3%.

:class:`CopyKernel` is that kernel: a 1-D grid of blocks, each moving a
contiguous chunk of elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.common.dim3 import Dim3, ceil_div
from repro.common.validation import check_positive
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import Segment, TensorAccess, ThreadBlockProgram
from repro.gpu.memory import GlobalMemory
from repro.gpu.occupancy import COPY_KERNEL_RESOURCES, KernelResources
from repro.kernels.base import ReadPlanStep, StageGeometry, SyncInterface, TiledKernel


@dataclass(frozen=True)
class CopyProblem:
    """Copy ``elements`` values from ``source`` to ``destination``."""

    elements: int
    source: str = "input"
    destination: str = "output"
    elements_per_block: int = 4096
    element_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("elements", self.elements)
        check_positive("elements_per_block", self.elements_per_block)

    @classmethod
    def for_block_count(
        cls, blocks: int, source: str = "input", destination: str = "output", elements_per_block: int = 4096
    ) -> "CopyProblem":
        """Build a problem with exactly ``blocks`` thread blocks.

        The overhead experiment specifies the grid size directly (one full
        wave of 1280 blocks), so this constructor works backwards from it.
        """
        return cls(
            elements=blocks * elements_per_block,
            source=source,
            destination=destination,
            elements_per_block=elements_per_block,
        )


class CopyKernel(TiledKernel):
    """1-D copy kernel: block *i* copies elements ``[i*n, (i+1)*n)``."""

    SYNC_CALL_SITES = 2

    def __init__(
        self,
        name: str,
        problem: CopyProblem,
        sync: Optional[SyncInterface] = None,
        sync_inputs: Tuple[str, ...] = (),
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        super().__init__(name=name, cost_model=cost_model, sync=sync, functional=functional)
        self.problem = problem
        self.sync_inputs = tuple(sync_inputs)

    @property
    def grid(self) -> Dim3:
        return Dim3(ceil_div(self.problem.elements, self.problem.elements_per_block), 1, 1)

    @property
    def resources(self) -> KernelResources:
        return COPY_KERNEL_RESOURCES

    def stage_geometry(self) -> StageGeometry:
        # The 1-D element range maps onto the grid's x dimension, so one
        # "column" of the output covers ``elements_per_block`` elements.
        return StageGeometry(
            grid=self.grid,
            tile_rows=1,
            tile_cols=self.problem.elements_per_block,
            split_k=1,
            batch=1,
            output=self.problem.destination,
        )

    def build_block_program(self, tile: Dim3) -> ThreadBlockProgram:
        problem = self.problem
        occupancy = self.occupancy()
        elements = self._clamp_range(
            (tile.x * problem.elements_per_block, (tile.x + 1) * problem.elements_per_block),
            problem.elements,
        )
        if problem.source in self.sync_inputs:
            plan = self.sync.plan_reads(problem.source, (0, 1), elements, 0)
        else:
            plan = [ReadPlanStep(rows=(0, 1), cols=elements)]
        waits = [wait for step in plan for wait in step.waits]
        reads = [read for step in plan for read in step.reads]

        count = elements[1] - elements[0]
        duration = self.cost_model.elementwise_tile_us(count, occupancy, problem.element_bytes)
        posts = self.sync.posts_for(tile, self.grid)
        writes = [TensorAccess(problem.destination, self.sync.output_tile_key(tile, self.grid))]
        compute = self._make_compute(elements) if self.functional else None

        segment = Segment(
            label=f"copy[{elements[0]}:{elements[1]}]",
            waits=waits,
            duration_us=duration,
            posts=posts,
            reads=reads,
            writes=writes,
            compute=compute,
        )
        return ThreadBlockProgram(tile=tile, segments=[segment])

    # ------------------------------------------------------------------
    # Functional (numpy) computation
    # ------------------------------------------------------------------
    def allocate_functional_tensors(self, memory: GlobalMemory) -> None:
        problem = self.problem
        if not memory.has_tensor(problem.destination):
            memory.store_tensor(problem.destination, np.zeros(problem.elements, dtype=np.float32))

    def _make_compute(self, elements: Tuple[int, int]):
        problem = self.problem

        def compute(memory: GlobalMemory) -> None:
            source = memory.tensor(problem.source)
            destination = memory.tensor(problem.destination)
            destination[elements[0]:elements[1]] = source[elements[0]:elements[1]]

        return compute

    def reference_result(self, memory: GlobalMemory) -> np.ndarray:
        return memory.tensor(self.problem.source).astype(np.float32).copy()
