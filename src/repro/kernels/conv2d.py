"""2-D convolution kernel using the implicit-GeMM formulation.

The paper synchronizes the Conv2D kernels of ResNet-38 and VGG-19, which use
CUTLASS's implicit GeMM algorithm: a convolution of ``B`` images of size
``[P, Q, C]`` with a ``[R, S]`` kernel and ``K`` output channels becomes a
GeMM of an implicit ``[B*P*Q, C*R*S]`` matrix (gathered on the fly from the
input activations) with a ``[C*R*S, K]`` filter matrix (Section IV-B).

Tiles are therefore tiles of the implicit GeMM output: ``tile_m`` output
pixels by ``tile_n`` output channels.  The dependence of a second Conv2D on
the first is through the input activations: a chunk of the implicit K
dimension corresponds to a slice of the producer's output channels, and an
output-pixel row range corresponds to a slightly larger (halo-expanded)
input-pixel row range.  Unlike the paper's simplified dependence (which maps
a consumer tile to the producer tile at ``x/(R*S)``), the reproduction
includes the halo rows so that functional simulation never reads pixels the
producer has not written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.dim3 import Dim3, ceil_div
from repro.common.validation import check_non_negative, check_positive
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import Segment, TensorAccess, ThreadBlockProgram
from repro.gpu.memory import GlobalMemory
from repro.gpu.occupancy import KernelResources
from repro.kernels.base import IndexRange, ReadPlanStep, StageGeometry, SyncInterface, TiledKernel
from repro.kernels.epilogue import Epilogue, Identity
from repro.kernels.gemm import GemmConfig, _merge_k_plans


@dataclass(frozen=True)
class Conv2dProblem:
    """A same-padded 2-D convolution, NHWC activations, RSCK filters."""

    batch: int
    height: int
    width: int
    in_channels: int
    out_channels: int
    kernel_r: int = 3
    kernel_s: int = 3
    input: str = "X"
    weight: str = "W"
    output: str = "Y"
    element_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("batch", self.batch)
        check_positive("height", self.height)
        check_positive("width", self.width)
        check_positive("in_channels", self.in_channels)
        check_positive("out_channels", self.out_channels)
        check_positive("kernel_r", self.kernel_r)
        check_positive("kernel_s", self.kernel_s)

    # Implicit GeMM view ------------------------------------------------
    @property
    def gemm_m(self) -> int:
        """Rows of the implicit GeMM: all output pixels."""
        return self.batch * self.height * self.width

    @property
    def gemm_n(self) -> int:
        """Columns of the implicit GeMM: output channels."""
        return self.out_channels

    @property
    def gemm_k(self) -> int:
        """Reduction size of the implicit GeMM: ``C * R * S``."""
        return self.in_channels * self.kernel_r * self.kernel_s

    @property
    def flops(self) -> float:
        return 2.0 * self.gemm_m * self.gemm_n * self.gemm_k

    @property
    def halo_rows(self) -> int:
        """Extra implicit-GeMM rows the receptive field reaches on each side."""
        return (self.kernel_r // 2) * self.width + (self.kernel_s // 2)

    def pixel_coords(self, row: int) -> Tuple[int, int, int]:
        """Map an implicit-GeMM row index to ``(image, y, x)``."""
        image = row // (self.height * self.width)
        rest = row % (self.height * self.width)
        return image, rest // self.width, rest % self.width


#: Conv2D kernels reuse the GeMM tiling configuration.
Conv2dConfig = GemmConfig


def choose_conv2d_config(problem: Conv2dProblem) -> Conv2dConfig:
    """Default CUTLASS-like tile configuration for a Conv2D problem.

    Output-channel counts in ResNet/VGG layers are 64–512, so the column
    tile adapts to the channel count while the pixel tile stays large.
    """
    tile_n = min(128, max(64, problem.out_channels))
    tile_m = 128 if problem.gemm_m >= 128 else 64
    return Conv2dConfig(tile_m=tile_m, tile_n=tile_n, tile_k=32, split_k=1)


class Conv2dKernel(TiledKernel):
    """Implicit-GeMM Conv2D kernel runnable on the simulator."""

    SYNC_CALL_SITES = 3

    def __init__(
        self,
        name: str,
        problem: Conv2dProblem,
        config: Optional[Conv2dConfig] = None,
        epilogue: Optional[Epilogue] = None,
        sync: Optional[SyncInterface] = None,
        sync_inputs: Tuple[str, ...] = (),
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        super().__init__(name=name, cost_model=cost_model, sync=sync, functional=functional)
        self.problem = problem
        self.config = config if config is not None else choose_conv2d_config(problem)
        self.epilogue = epilogue if epilogue is not None else Identity()
        self.sync_inputs = tuple(sync_inputs)
        self._occupancy_cache: Optional[int] = None
        self._invalidate_plan_caches()

    def _invalidate_plan_caches(self) -> None:
        self._occupancy_cache = None
        self._chunk_duration_cache: dict = {}
        self._epilogue_duration_cache: dict = {}
        self._body_segment_cache: dict = {}
        self._grid_cache: Optional[Dim3] = None

    # ------------------------------------------------------------------
    # TiledKernel interface
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Dim3:
        grid = self._grid_cache
        if grid is None:
            cfg, problem = self.config, self.problem
            grid = self._grid_cache = Dim3(
                ceil_div(problem.gemm_n, cfg.tile_n),
                ceil_div(problem.gemm_m, cfg.tile_m),
                cfg.split_k,
            )
        return grid

    @property
    def resources(self) -> KernelResources:
        return self.config.resources(self.problem.element_bytes)

    def occupancy(self) -> int:
        if self._occupancy_cache is None:
            self._occupancy_cache = super().occupancy()
        return self._occupancy_cache

    def stage_geometry(self) -> StageGeometry:
        return StageGeometry(
            grid=self.grid,
            tile_rows=self.config.tile_m,
            tile_cols=self.config.tile_n,
            split_k=self.config.split_k,
            batch=1,
            output=self.problem.output,
        )

    def build_block_program(self, tile: Dim3) -> ThreadBlockProgram:
        problem, cfg = self.problem, self.config
        occupancy = self.occupancy()

        rows = self._clamp_range((tile.y * cfg.tile_m, (tile.y + 1) * cfg.tile_m), problem.gemm_m)
        cols = self._clamp_range((tile.x * cfg.tile_n, (tile.x + 1) * cfg.tile_n), problem.gemm_n)
        split_index = tile.z
        k_per_split = ceil_div(problem.gemm_k, cfg.split_k)
        k_range = self._clamp_range(
            (split_index * k_per_split, (split_index + 1) * k_per_split), problem.gemm_k
        )

        tile_m_actual = rows[1] - rows[0]
        tile_n_actual = cols[1] - cols[0]

        # Share the main-loop segment list between blocks whose read plans
        # are identical (see GemmKernel.build_block_program): only the input
        # activations are ever synchronized, so outside functional mode the
        # body depends on ``rows`` solely when the input is a sync input.
        if self.functional:
            segments = self._body_segments(
                rows, cols, k_range, tile_m_actual, tile_n_actual, occupancy
            )
        else:
            body_key = (
                rows if problem.input in self.sync_inputs else tile_m_actual,
                tile_n_actual,
                k_range,
            )
            body = self._body_segment_cache.get(body_key)
            if body is None:
                body = self._body_segments(
                    rows, cols, k_range, tile_m_actual, tile_n_actual, occupancy
                )
                self._body_segment_cache[body_key] = body
            segments = list(body)

        epilogue_key = (tile_m_actual, tile_n_actual)
        epilogue_duration = self._epilogue_duration_cache.get(epilogue_key)
        if epilogue_duration is None:
            epilogue_duration = self.cost_model.gemm_epilogue_us(
                tile_m_actual, tile_n_actual, occupancy, problem.element_bytes
            )
            if self.epilogue.flops_per_element:
                epilogue_duration += self.cost_model.compute_time_us(
                    tile_m_actual * tile_n_actual * self.epilogue.flops_per_element,
                    occupancy,
                    precision="fp32",
                )
            self._epilogue_duration_cache[epilogue_key] = epilogue_duration
        posts = self.sync.posts_for(tile, self.grid)
        writes = [TensorAccess(problem.output, self.sync.output_tile_key(tile, self.grid))]
        compute = self._make_epilogue_compute(rows, cols) if self.functional else None
        segments.append(
            Segment(
                label="epilogue",
                duration_us=epilogue_duration,
                posts=posts,
                writes=writes,
                compute=compute,
            )
        )
        return ThreadBlockProgram(tile=tile, segments=segments)

    def _body_segments(
        self,
        rows: IndexRange,
        cols: IndexRange,
        k_range: IndexRange,
        tile_m_actual: int,
        tile_n_actual: int,
        occupancy: int,
    ) -> List[Segment]:
        """The main-loop segments of one block (everything but the epilogue)."""
        problem = self.problem
        input_plan = self._plan_input(rows, k_range)
        weight_plan = [ReadPlanStep(rows=k_range, cols=cols)]
        chunks = _merge_k_plans(input_plan, weight_plan, k_range)

        reorder_loads = self.sync.reorder_loads
        segments: List[Segment] = []
        for chunk in chunks:
            k_lo, k_hi = chunk.k_range
            chunk_k = k_hi - k_lo
            shape_key = (tile_m_actual, tile_n_actual, chunk_k)
            duration = self._chunk_duration_cache.get(shape_key)
            if duration is None:
                duration = self.cost_model.gemm_mainloop_chunk_us(
                    tile_m_actual, tile_n_actual, chunk_k, occupancy, problem.element_bytes
                )
                self._chunk_duration_cache[shape_key] = duration
            waits = list(chunk.waits)
            overlappable = 0.0
            if reorder_loads and waits:
                # Reorder-loads: the filter slice can be prefetched while
                # waiting on the producer's activation tile.
                overlappable = self.cost_model.memory_time_us(
                    chunk_k * tile_n_actual * problem.element_bytes, occupancy
                )
            compute = self._make_chunk_compute(rows, cols, (k_lo, k_hi)) if self.functional else None
            segments.append(
                Segment(
                    label=f"k[{k_lo}:{k_hi}]",
                    waits=waits,
                    duration_us=duration,
                    overlappable_us=overlappable,
                    reads=list(chunk.reads),
                    compute=compute,
                )
            )
        return segments

    def _plan_input(self, rows: IndexRange, k_range: IndexRange) -> List[ReadPlanStep]:
        """Plan the gathered reads of the input activations.

        A chunk ``[k0, k1)`` of the implicit K dimension touches the
        producer's output channels ``[k0 // (R*S), ceil(k1 / (R*S)))`` and,
        because of the receptive field, the producer's pixel rows expanded
        by the halo.
        """
        problem = self.problem
        if problem.input not in self.sync_inputs:
            return [ReadPlanStep(rows=rows, cols=k_range)]
        taps = problem.kernel_r * problem.kernel_s
        channel_lo = k_range[0] // taps
        channel_hi = ceil_div(k_range[1], taps)
        pixel_rows = self._clamp_range(
            (rows[0] - problem.halo_rows, rows[1] + problem.halo_rows), problem.gemm_m
        )
        steps = self.sync.plan_reads(problem.input, pixel_rows, (channel_lo, channel_hi), 0)
        # The stage answers in producer-output coordinates (pixel rows x
        # channels); convert the channel ranges back to this kernel's
        # implicit-K coordinates so the main-loop chunks line up.
        converted = []
        for step in steps:
            k_chunk = self._clamp_range((step.cols[0] * taps, step.cols[1] * taps), problem.gemm_k)
            k_chunk = (max(k_chunk[0], k_range[0]), min(k_chunk[1], k_range[1]))
            converted.append(
                ReadPlanStep(rows=rows, cols=k_chunk, waits=step.waits, reads=step.reads, batch=0)
            )
        return converted

    # ------------------------------------------------------------------
    # Functional (numpy) computation
    # ------------------------------------------------------------------
    def allocate_functional_tensors(self, memory: GlobalMemory) -> None:
        problem = self.problem
        if not memory.has_tensor(problem.output):
            memory.store_tensor(
                problem.output,
                np.zeros((problem.batch, problem.height, problem.width, problem.out_channels), np.float32),
            )

    def _gather_input_columns(self, memory: GlobalMemory, rows: IndexRange, k_range: IndexRange) -> np.ndarray:
        """im2col gather: ``[rows, k_range]`` slice of the implicit A matrix."""
        problem = self.problem
        x = memory.tensor(problem.input)
        taps = problem.kernel_r * problem.kernel_s
        pad_r = problem.kernel_r // 2
        pad_s = problem.kernel_s // 2
        out = np.zeros((rows[1] - rows[0], k_range[1] - k_range[0]), dtype=np.float32)
        for column_offset, k in enumerate(range(k_range[0], k_range[1])):
            channel = k // taps
            tap = k % taps
            dr = tap // problem.kernel_s - pad_r
            ds = tap % problem.kernel_s - pad_s
            for row_offset, row in enumerate(range(rows[0], rows[1])):
                image, py, px = problem.pixel_coords(row)
                sy, sx = py + dr, px + ds
                if 0 <= sy < problem.height and 0 <= sx < problem.width:
                    out[row_offset, column_offset] = x[image, sy, sx, channel]
        return out

    def _make_chunk_compute(self, rows: IndexRange, cols: IndexRange, k_range: IndexRange):
        problem = self.problem

        def compute(memory: GlobalMemory) -> None:
            a = self._gather_input_columns(memory, rows, k_range)
            weight = memory.tensor(problem.weight)
            # Weight layout [R, S, C, K] flattened to [C*R*S, K] with the
            # same (channel-major, tap-minor) ordering as the gather above.
            flat = np.transpose(weight, (2, 0, 1, 3)).reshape(problem.gemm_k, problem.out_channels)
            b = flat[k_range[0]:k_range[1], cols[0]:cols[1]].astype(np.float32)
            partial = a @ b
            y = memory.tensor(problem.output)
            for row_offset, row in enumerate(range(rows[0], rows[1])):
                image, py, px = problem.pixel_coords(row)
                y[image, py, px, cols[0]:cols[1]] += partial[row_offset]

        return compute

    def _make_epilogue_compute(self, rows: IndexRange, cols: IndexRange):
        problem = self.problem
        epilogue = self.epilogue

        def compute(memory: GlobalMemory) -> None:
            if isinstance(epilogue, Identity):
                return
            y = memory.tensor(problem.output)
            for row in range(rows[0], rows[1]):
                image, py, px = problem.pixel_coords(row)
                y[image, py, px, cols[0]:cols[1]] = epilogue.apply(
                    y[image, py, px, cols[0]:cols[1]], memory, rows, cols, 0
                )

        return compute

    def reference_result(self, memory: GlobalMemory) -> np.ndarray:
        """Direct same-padded convolution reference."""
        problem = self.problem
        x = memory.tensor(problem.input).astype(np.float32)
        weight = memory.tensor(problem.weight).astype(np.float32)
        pad_r = problem.kernel_r // 2
        pad_s = problem.kernel_s // 2
        padded = np.pad(x, ((0, 0), (pad_r, pad_r), (pad_s, pad_s), (0, 0)))
        out = np.zeros((problem.batch, problem.height, problem.width, problem.out_channels), np.float32)
        for dr in range(problem.kernel_r):
            for ds in range(problem.kernel_s):
                window = padded[:, dr:dr + problem.height, ds:ds + problem.width, :]
                out += np.einsum("bijc,ck->bijk", window, weight[dr, ds])
        if isinstance(self.epilogue, Identity):
            return out
        flat = out.reshape(problem.gemm_m, problem.out_channels)
        flat = self.epilogue.apply(flat, memory, (0, problem.gemm_m), (0, problem.out_channels), 0)
        return flat.reshape(out.shape)
