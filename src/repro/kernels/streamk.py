"""Stream-K GeMM decomposition (the paper's strongest baseline).

Stream-K [Osama et al., PPoPP'23] improves final-wave utilization of GeMM by
*work-centric* decomposition: instead of one thread block per output tile,
the MAC-loop iterations of the tiles that would form a partial wave are
divided evenly among one full wave of thread blocks.  Blocks that share a
tile each produce a partial accumulator in global memory, and a fix-up pass
reduces the partials — the extra global traffic the paper cites as
Stream-K's drawback (Section V-H).

The decomposition follows the two-kernel scheme the paper describes:

* a *data-parallel* kernel computes the tiles belonging to full waves the
  classic way (one block per tile), and
* a *Stream-K* kernel covers the remaining tiles with exactly one wave of
  blocks, splitting iterations evenly and paying the fix-up cost.

Because Stream-K is a single-kernel optimization, dependent GeMMs still use
stream synchronization between them; the comparison against cuSync in
Figure 6 is therefore StreamSync-with-StreamK-kernels vs cuSync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.dim3 import Dim3, ceil_div
from repro.common.tiles import delinearize
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import KernelLaunch, Segment, TensorAccess, ThreadBlockProgram
from repro.gpu.occupancy import KernelResources, OccupancyCalculator
from repro.gpu.stream import Stream, DEFAULT_STREAM
from repro.kernels.base import NoSync, SyncInterface, TiledKernel
from repro.kernels.epilogue import Epilogue, Identity
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem, choose_gemm_config


@dataclass(frozen=True)
class StreamKAssignment:
    """The work of one Stream-K block: a contiguous span of MAC iterations."""

    block: int
    #: Global iteration range ``[start, stop)`` over ``tiles x iters_per_tile``.
    start: int
    stop: int

    @property
    def iterations(self) -> int:
        return self.stop - self.start


@dataclass
class StreamKSchedule:
    """Static description of how a GeMM is decomposed by Stream-K."""

    total_tiles: int
    iters_per_tile: int
    blocks_per_wave: int
    #: Tiles handled by the data-parallel kernel (full waves).
    data_parallel_tiles: int
    #: Tiles handled by the Stream-K kernel (the former partial wave).
    streamk_tiles: int
    #: Number of blocks the Stream-K kernel launches.
    streamk_blocks: int
    assignments: List[StreamKAssignment] = field(default_factory=list)

    @property
    def tiles_split_across_blocks(self) -> int:
        """How many tiles have contributions from more than one block."""
        split = 0
        for tile in range(self.streamk_tiles):
            start = tile * self.iters_per_tile
            stop = start + self.iters_per_tile
            owners = sum(1 for a in self.assignments if a.start < stop and a.stop > start)
            if owners > 1:
                split += 1
        return split


class StreamKGemmKernel:
    """Builds the (up to two) kernel launches of a Stream-K GeMM.

    This class intentionally does not accept a :class:`SyncInterface`:
    Stream-K is evaluated as a baseline under stream synchronization, and
    the paper notes it is "not straightforward" to combine it with
    fine-grained synchronization of dependent kernels.
    """

    def __init__(
        self,
        name: str,
        problem: GemmProblem,
        config: Optional[GemmConfig] = None,
        epilogue: Optional[Epilogue] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.name = name
        self.problem = problem
        self.cost_model = cost_model if cost_model is not None else CostModel()
        base_config = config if config is not None else choose_gemm_config(problem, self.cost_model.arch)
        # Stream-K does not need split-K: the final wave is already divided
        # among all SMs, so the classic data-parallel part uses split_k = 1.
        self.config = GemmConfig(
            tile_m=base_config.tile_m,
            tile_n=base_config.tile_n,
            tile_k=base_config.tile_k,
            split_k=1,
            threads_per_block=base_config.threads_per_block,
            pipeline_stages=base_config.pipeline_stages,
        )
        self.epilogue = epilogue if epilogue is not None else Identity()

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    @property
    def resources(self) -> KernelResources:
        return self.config.resources(self.problem.element_bytes)

    def occupancy(self) -> int:
        return OccupancyCalculator(self.cost_model.arch).blocks_per_sm(self.resources)

    def tile_grid(self) -> Dim3:
        problem, cfg = self.problem, self.config
        return Dim3(
            ceil_div(problem.n, cfg.tile_n),
            ceil_div(problem.m, cfg.tile_m),
            problem.batch,
        )

    def schedule(self) -> StreamKSchedule:
        """Compute the Stream-K work assignment."""
        problem, cfg = self.problem, self.config
        grid = self.tile_grid()
        total_tiles = grid.volume
        iters_per_tile = ceil_div(problem.k, cfg.tile_k)
        blocks_per_wave = self.cost_model.arch.blocks_per_wave(self.occupancy())

        full_waves = total_tiles // blocks_per_wave
        data_parallel_tiles = full_waves * blocks_per_wave
        streamk_tiles = total_tiles - data_parallel_tiles

        assignments: List[StreamKAssignment] = []
        streamk_blocks = 0
        if streamk_tiles > 0:
            # Exactly one wave of blocks covers the remaining tiles; with
            # fewer iterations than blocks the launch shrinks accordingly.
            streamk_blocks = min(blocks_per_wave, streamk_tiles * iters_per_tile)
            total_iterations = streamk_tiles * iters_per_tile
            base = total_iterations // streamk_blocks
            remainder = total_iterations % streamk_blocks
            cursor = 0
            for block in range(streamk_blocks):
                size = base + (1 if block < remainder else 0)
                assignments.append(StreamKAssignment(block=block, start=cursor, stop=cursor + size))
                cursor += size

        return StreamKSchedule(
            total_tiles=total_tiles,
            iters_per_tile=iters_per_tile,
            blocks_per_wave=blocks_per_wave,
            data_parallel_tiles=data_parallel_tiles,
            streamk_tiles=streamk_tiles,
            streamk_blocks=streamk_blocks,
            assignments=assignments,
        )

    # ------------------------------------------------------------------
    # Launch construction
    # ------------------------------------------------------------------
    def build_launches(self, stream: Stream = DEFAULT_STREAM) -> List[KernelLaunch]:
        """Build the data-parallel and Stream-K launches (either may be absent)."""
        schedule = self.schedule()
        launches: List[KernelLaunch] = []
        if schedule.data_parallel_tiles > 0:
            launches.append(self._data_parallel_launch(schedule, stream))
        if schedule.streamk_tiles > 0:
            launches.append(self._streamk_launch(schedule, stream))
        return launches

    def _data_parallel_launch(self, schedule: StreamKSchedule, stream: Stream) -> KernelLaunch:
        problem, cfg = self.problem, self.config
        grid = self.tile_grid()
        occupancy = self.occupancy()

        # The data-parallel part covers the first `data_parallel_tiles` tiles
        # in row-major order; reuse GemmKernel's cost structure via a plain
        # unsynchronized kernel over a reduced grid.
        dp_grid = Dim3(schedule.data_parallel_tiles, 1, 1)

        kernel = GemmKernel(
            name=f"{self.name}_dp",
            problem=problem,
            config=cfg,
            epilogue=self.epilogue,
            cost_model=self.cost_model,
            sync=NoSync(),
        )

        def build(tile: Dim3) -> ThreadBlockProgram:
            logical = delinearize(tile.x, grid)
            return kernel.build_block_program(logical)

        return KernelLaunch(
            name=f"{self.name}_dp",
            grid=dp_grid,
            program_builder=build,
            occupancy=occupancy,
            stream=stream,
            tags={"kernel_class": "StreamKGemmKernel", "part": "data_parallel"},
        )

    def _streamk_launch(self, schedule: StreamKSchedule, stream: Stream) -> KernelLaunch:
        problem, cfg = self.problem, self.config
        grid = self.tile_grid()
        occupancy = self.occupancy()
        tile_m, tile_n = cfg.tile_m, cfg.tile_n
        first_streamk_tile = schedule.data_parallel_tiles

        def build(tile: Dim3) -> ThreadBlockProgram:
            assignment = schedule.assignments[tile.x]
            segments: List[Segment] = []
            remaining = assignment.iterations
            cursor = assignment.start
            while remaining > 0:
                tile_index = cursor // schedule.iters_per_tile
                offset_in_tile = cursor % schedule.iters_per_tile
                take = min(remaining, schedule.iters_per_tile - offset_in_tile)
                chunk_k = take * cfg.tile_k
                duration = self.cost_model.gemm_mainloop_chunk_us(
                    tile_m, tile_n, chunk_k, occupancy, problem.element_bytes
                )
                finishes_tile = offset_in_tile + take == schedule.iters_per_tile
                covers_whole_tile = take == schedule.iters_per_tile
                writes = []
                if finishes_tile:
                    logical = delinearize(first_streamk_tile + tile_index, grid)
                    writes = [TensorAccess(problem.c, (logical.x, logical.y, logical.z))]
                    duration += self.cost_model.gemm_epilogue_us(
                        tile_m, tile_n, occupancy, problem.element_bytes
                    )
                    if not covers_whole_tile:
                        # Fix-up: reduce the partial accumulators of every
                        # block that contributed to this tile.
                        tile_start = tile_index * schedule.iters_per_tile
                        tile_stop = tile_start + schedule.iters_per_tile
                        contributors = sum(
                            1
                            for other in schedule.assignments
                            if other.start < tile_stop and other.stop > tile_start
                        )
                        duration += self.cost_model.streamk_fixup_us(
                            tile_m, tile_n, contributors, occupancy
                        )
                elif take < schedule.iters_per_tile:
                    # A partial contribution is spilled to global memory.
                    duration += self.cost_model.memory_time_us(tile_m * tile_n * 4, occupancy)
                segments.append(
                    Segment(label=f"iters[{cursor}:{cursor + take}]", duration_us=duration, writes=writes)
                )
                cursor += take
                remaining -= take
            if not segments:
                segments.append(Segment(label="idle", duration_us=0.0))
            return ThreadBlockProgram(tile=tile, segments=segments)

        return KernelLaunch(
            name=f"{self.name}_sk",
            grid=Dim3(schedule.streamk_blocks, 1, 1),
            program_builder=build,
            occupancy=occupancy,
            stream=stream,
            tags={"kernel_class": "StreamKGemmKernel", "part": "streamk"},
        )
