"""Tiled Generalized Matrix Multiplication (GeMM) kernel.

The structure follows CUTLASS-style GeMMs (and the kernel sketch of the
paper's Figure 4a): the output ``C = epilogue(A @ B)`` is partitioned into
``tile_m x tile_n`` tiles, one per thread block; each block iterates over
the K dimension in chunks, loading a slice of A and a slice of B per chunk;
optionally the K dimension is additionally split across ``split_k`` blocks
(CUTLASS split-K, the z grid dimension in the paper's Table IV).

cuSync integration happens at exactly the call sites the paper adds to
CUTLASS (Table III): the main loop asks the stage how to split its K
iteration and which waits guard each chunk (``stage.wait`` before tile
loads), and the block posts its output tile when done (``stage.post``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.dim3 import Dim3, ceil_div
from repro.common.validation import check_positive
from repro.errors import SimulationError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import Segment, TensorAccess, ThreadBlockProgram
from repro.gpu.memory import GlobalMemory
from repro.gpu.occupancy import KernelResources, OccupancyCalculator
from repro.kernels.base import IndexRange, ReadPlanStep, StageGeometry, SyncInterface, TiledKernel
from repro.kernels.epilogue import Epilogue, Identity


@dataclass(frozen=True)
class GemmProblem:
    """One (possibly batched) GeMM: ``C[b] = A[b] @ B[b]``.

    ``a``, ``b`` and ``c`` are the names under which the operands live in
    simulated global memory; names are what dependencies are declared on.
    """

    m: int
    n: int
    k: int
    a: str = "A"
    b: str = "B"
    c: str = "C"
    batch: int = 1
    element_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive("m", self.m)
        check_positive("n", self.n)
        check_positive("k", self.k)
        check_positive("batch", self.batch)

    @property
    def flops(self) -> float:
        """Total floating point operations of the problem."""
        return 2.0 * self.batch * self.m * self.n * self.k


@dataclass(frozen=True)
class GemmConfig:
    """Tiling configuration of a GeMM kernel (the CUTLASS "kernel config")."""

    tile_m: int = 128
    tile_n: int = 128
    tile_k: int = 32
    split_k: int = 1
    threads_per_block: int = 256
    pipeline_stages: int = 2

    def __post_init__(self) -> None:
        check_positive("tile_m", self.tile_m)
        check_positive("tile_n", self.tile_n)
        check_positive("tile_k", self.tile_k)
        check_positive("split_k", self.split_k)

    def resources(self, element_bytes: int = 2) -> KernelResources:
        """Resource usage implied by the tile shape.

        Shared memory holds double-buffered A and B slices; registers hold
        the per-thread accumulators plus addressing/operand registers.  This
        reproduces the occupancy differences the paper's Table I relies on
        (a 256x128 tile reaches occupancy 2 on V100, a 256x256 tile only 1).
        """
        shared_memory = (
            (self.tile_m + self.tile_n) * self.tile_k * element_bytes * self.pipeline_stages
        )
        accumulators = self.tile_m * self.tile_n // self.threads_per_block
        registers = min(255, accumulators // 2 + 48)
        return KernelResources(
            threads_per_block=self.threads_per_block,
            registers_per_thread=registers,
            shared_memory_per_block=shared_memory,
        )


def choose_gemm_config(
    problem: GemmProblem,
    arch: GpuArchitecture = TESLA_V100,
    max_split_k: int = 4,
) -> GemmConfig:
    """Pick a tile configuration the way the paper's CUTLASS setup does.

    The goals, in order: (i) cover the M dimension with as few row tiles as
    possible (small inference batches fit in one), (ii) prefer large 256-wide
    column tiles, shrinking to 128 when that would leave the GPU mostly
    idle, and (iii) use split-K to raise the number of thread blocks toward
    a full wave when there are few output tiles.
    """
    if problem.m >= 256:
        tile_m = 256
    elif problem.m > 128:
        tile_m = 256
    elif problem.m > 64:
        tile_m = 128
    else:
        tile_m = 64
    tile_m = min(tile_m, 256)

    calculator = OccupancyCalculator(arch)

    def blocks_for(tile_n: int, split_k: int) -> int:
        grid_x = ceil_div(problem.n, tile_n)
        grid_y = ceil_div(problem.m, tile_m)
        return grid_x * grid_y * problem.batch * split_k

    best: Optional[Tuple[float, GemmConfig]] = None
    for tile_n in (256, 128, 64):
        if tile_n > problem.n and tile_n != 64:
            continue
        for split_k in range(1, max_split_k + 1):
            if split_k > 1 and problem.k // split_k < 4 * 32:
                continue
            config = GemmConfig(tile_m=tile_m, tile_n=tile_n, tile_k=32, split_k=split_k)
            occupancy = calculator.blocks_per_sm(config.resources(problem.element_bytes))
            per_wave = arch.blocks_per_wave(occupancy)
            natural_blocks = blocks_for(tile_n, 1)
            if split_k > 1 and natural_blocks >= per_wave:
                # Split-K exists to raise parallelism when there are too few
                # output tiles; never use it once a wave is already full.
                continue
            blocks = blocks_for(tile_n, split_k)
            waves = blocks / per_wave
            utilization = blocks / (math.ceil(waves) * per_wave) if blocks else 0.0
            # Penalize wide splits (extra reduction traffic) and very small
            # tiles (lower per-block efficiency).
            penalty = 0.02 * (split_k - 1) + (0.05 if tile_n == 64 else 0.0)
            score = utilization - penalty
            if best is None or score > best[0] + 1e-9:
                best = (score, config)
    assert best is not None
    return best[1]


class GemmKernel(TiledKernel):
    """A tiled GeMM kernel runnable on the simulator.

    Parameters
    ----------
    sync_inputs:
        Names of the operands whose tiles are produced by an earlier kernel
        in the pipeline and therefore must be guarded with ``stage.wait``.
        Operands not listed are assumed resident before the kernel starts
        (weights, activations of previous layers).
    gate_input:
        Optional name of an extra tensor read element-wise by the epilogue
        (LLaMA's SwiGLU reads ``XV``); it is guarded like a synchronized
        input when listed in ``sync_inputs``.
    a_transform:
        Optional element-wise transform applied to each loaded slice of the
        A operand before the multiply-accumulate (LLaMA fuses
        ``Swish(XW1) * XV`` into its third GeMM this way).  The callable
        receives ``(values, memory, rows, k_range, batch)`` and returns the
        transformed slice; ``a_transform_flops`` models its per-element cost.
    """

    #: cuSync integration call sites in this kernel (tile order + wait-kernel
    #: release are installed by ``TiledKernel.build_launch``; this method adds
    #: two ``plan_reads`` waits, a gate wait and one ``posts_for``).
    SYNC_CALL_SITES = 4

    def __init__(
        self,
        name: str,
        problem: GemmProblem,
        config: Optional[GemmConfig] = None,
        epilogue: Optional[Epilogue] = None,
        sync: Optional[SyncInterface] = None,
        sync_inputs: Tuple[str, ...] = (),
        gate_input: Optional[str] = None,
        a_transform=None,
        a_transform_flops: float = 0.0,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        super().__init__(name=name, cost_model=cost_model, sync=sync, functional=functional)
        self.problem = problem
        self.config = config if config is not None else choose_gemm_config(problem, self.cost_model.arch)
        self.epilogue = epilogue if epilogue is not None else Identity()
        self.sync_inputs = tuple(sync_inputs)
        self.gate_input = gate_input
        self.a_transform = a_transform
        self.a_transform_flops = a_transform_flops
        self._occupancy_cache: Optional[int] = None
        self._invalidate_plan_caches()
        if functional and self.config.split_k > 1 and not isinstance(self.epilogue, Identity):
            raise SimulationError(
                "functional simulation of a split-K GeMM with a fused epilogue is not supported: "
                "the epilogue would be applied to partial sums"
            )

    # ------------------------------------------------------------------
    # TiledKernel interface
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Dim3:
        grid = self._grid_cache
        if grid is None:
            cfg = self.config
            grid = self._grid_cache = Dim3(
                ceil_div(self.problem.n, cfg.tile_n),
                ceil_div(self.problem.m, cfg.tile_m),
                self.problem.batch * cfg.split_k,
            )
        return grid

    @property
    def resources(self) -> KernelResources:
        return self.config.resources(self.problem.element_bytes)

    def occupancy(self) -> int:
        if self._occupancy_cache is None:
            self._occupancy_cache = super().occupancy()
        return self._occupancy_cache

    def _invalidate_plan_caches(self) -> None:
        # Keyed on tile shapes only: occupancy, element width, epilogue and
        # a_transform cost are fixed per kernel, and reassigning the inputs
        # they derive from (sync / cost_model / functional) lands here.
        self._occupancy_cache = None
        self._chunk_duration_cache: dict = {}
        self._epilogue_duration_cache: dict = {}
        self._overlap_cache: dict = {}
        #: Shared main-loop segment lists, keyed by the ranges that actually
        #: influence them (see :meth:`build_block_program`).
        self._body_segment_cache: dict = {}
        #: Base main-loop segments *without* the B operand's waits, keyed by
        #: the A-side plan and the B step's span.  When both operands are
        #: synchronized the full body differs per column tile solely in the
        #: waits the B plan contributes, so the expensive plan merge runs
        #: once per base key and each column tile composes in O(1) (see
        #: :meth:`_cached_body` / :meth:`_compose_body`).
        self._base_body_cache: dict = {}
        self._grid_cache: Optional[Dim3] = None

    def stage_geometry(self) -> StageGeometry:
        return StageGeometry(
            grid=self.grid,
            tile_rows=self.config.tile_m,
            tile_cols=self.config.tile_n,
            split_k=self.config.split_k,
            batch=self.problem.batch,
            output=self.problem.c,
        )

    # ------------------------------------------------------------------
    # Block program construction
    # ------------------------------------------------------------------
    def build_block_program(self, tile: Dim3) -> ThreadBlockProgram:
        problem, cfg = self.problem, self.config
        occupancy = self.occupancy()

        batch_index = tile.z // cfg.split_k
        split_index = tile.z % cfg.split_k

        rows = self._clamp_range((tile.y * cfg.tile_m, (tile.y + 1) * cfg.tile_m), problem.m)
        cols = self._clamp_range((tile.x * cfg.tile_n, (tile.x + 1) * cfg.tile_n), problem.n)
        k_per_split = ceil_div(problem.k, cfg.split_k)
        k_range = self._clamp_range(
            (split_index * k_per_split, (split_index + 1) * k_per_split), problem.k
        )

        tile_m_actual = rows[1] - rows[0]
        tile_n_actual = cols[1] - cols[0]

        # Main-loop segments carry no per-tile state beyond what their read
        # plans dictate, and the plans themselves are memoized (shared
        # lists) by the producing stage.  Outside functional mode (whose
        # compute closures capture absolute ranges) the immutable segment
        # list can therefore be shared by every block whose operand plans
        # are identical — build_program does O(1) planning work per block
        # after the first tile of each distinct plan combination.
        if self.functional:
            body = self._body_segments(
                rows, cols, k_range, batch_index, tile_m_actual, tile_n_actual, occupancy
            )
        else:
            body = self._cached_body(
                rows, cols, k_range, batch_index, tile_m_actual, tile_n_actual, occupancy
            )

        segments = list(body)
        segments.extend(
            self._epilogue_segments(tile, batch_index, rows, cols, tile_m_actual, tile_n_actual, occupancy)
        )
        return ThreadBlockProgram(tile=tile, segments=segments)

    @staticmethod
    def _neutral_plan(plan: List[ReadPlanStep], span: IndexRange, axis: str) -> bool:
        """Whether ``plan`` is a single waitless step exactly covering ``span``.

        Such plans (unsynchronized operands, ``NoSync`` bindings) contribute
        nothing to the merge beyond the span itself, so bodies built from
        them are shared by tile shape rather than plan identity.
        """
        if len(plan) != 1:
            return False
        step = plan[0]
        if step.waits or step.reads:
            return False
        covered = step.cols if axis == "cols" else step.rows
        return covered == span

    def _cached_body(
        self,
        rows: IndexRange,
        cols: IndexRange,
        k_range: IndexRange,
        batch_index: int,
        tile_m_actual: int,
        tile_n_actual: int,
        occupancy: int,
    ) -> List[Segment]:
        """Memoized body segments, keyed by the operand plans' identities.

        Operand read plans are memoized shared lists (the producing stage
        caches them per distinct requested range), so their object
        identities key the body cache exactly: equal ids mean equal plans.
        Each cache value retains its plan lists, which keeps their ids from
        being recycled while the entry lives.  Waitless single-step plans
        (unsynchronized operands and ``NoSync`` bindings, which return a
        fresh plain step per call) collapse to the tile extent instead, so
        a StreamSync binding shares one body across its whole grid.
        """
        problem = self.problem
        # Unsynchronized operands need no plan at all to derive the key (a
        # fresh plain step per block would only be allocation churn); their
        # plan is materialized lazily on a cache miss.
        a_plan = (
            self._plan_operand(problem.a, rows, k_range, batch_index)
            if problem.a in self.sync_inputs
            else None
        )
        b_plan = (
            self._plan_operand(problem.b, k_range, cols, batch_index, rows_are_k=True)
            if problem.b in self.sync_inputs
            else None
        )
        a_key = (
            tile_m_actual
            if a_plan is None or self._neutral_plan(a_plan, k_range, "cols")
            else id(a_plan)
        )
        b_key = (
            tile_n_actual
            if b_plan is None or self._neutral_plan(b_plan, k_range, "rows")
            else id(b_plan)
        )
        key = (a_key, b_key, tile_m_actual, tile_n_actual, k_range, batch_index)
        entry = self._body_segment_cache.get(key)
        if entry is None:
            built_a = (
                a_plan
                if a_plan is not None
                else [ReadPlanStep(rows=rows, cols=k_range, batch=batch_index)]
            )
            built_b = (
                b_plan
                if b_plan is not None
                else [ReadPlanStep(rows=k_range, cols=cols, batch=batch_index)]
            )
            segments = self._compose_body(
                built_a, built_b, rows, cols, k_range, batch_index,
                tile_m_actual, tile_n_actual, occupancy, a_key,
            )
            entry = (segments, a_plan, b_plan)
            self._body_segment_cache[key] = entry
        return entry[0]

    def _compose_body(
        self,
        a_plan: List[ReadPlanStep],
        b_plan: List[ReadPlanStep],
        rows: IndexRange,
        cols: IndexRange,
        k_range: IndexRange,
        batch_index: int,
        tile_m_actual: int,
        tile_n_actual: int,
        occupancy: int,
        a_key,
    ) -> List[Segment]:
        """Body segments for one distinct (A plan, B plan) combination.

        :func:`_merge_k_plans` splits the K loop at the single B step's row
        span and attaches the B waits to the chunk starting at
        ``b.rows[0]``; the chunk structure depends on the B step's *span*
        but not its waits.  The merged-and-priced A-side segment list is
        therefore cached once per (A plan, B span) — ``_base_body_cache`` —
        and every distinct B step with the same span composes one fresh
        segment in O(1) instead of re-running the plan merge: a TileSync
        consumer of both operands no longer rebuilds its waits per column
        tile.  Multi-step B plans take the full merge, which is
        value-identical by construction.
        """
        if len(b_plan) != 1:
            return self._body_segments_indexed(
                rows, cols, k_range, batch_index, tile_m_actual, tile_n_actual, occupancy,
                a_plan=a_plan, b_plan=b_plan,
            )[0]
        b_step = b_plan[0]
        base_key = (a_key, tile_m_actual, tile_n_actual, k_range, batch_index, b_step.rows)
        entry = self._base_body_cache.get(base_key)
        if entry is None:
            # Same chunk boundaries as the full merge (the neutral step
            # spans exactly what the real B step spans), no B waits yet.
            neutral = [ReadPlanStep(rows=b_step.rows, cols=cols, batch=batch_index)]
            segments, positions = self._body_segments_indexed(
                rows, cols, k_range, batch_index, tile_m_actual, tile_n_actual, occupancy,
                a_plan=a_plan, b_plan=neutral,
            )
            entry = (segments, positions, a_plan)
            self._base_body_cache[base_key] = entry
        base, chunk_positions, _ = entry
        if not b_step.waits and not b_step.reads:
            return base
        position = chunk_positions.get(b_step.rows[0])
        if position is None:
            # No chunk starts at the B step's row start (span outside this
            # split's K range): the merge drops the B waits entirely.
            return base
        target = base[position]
        if self.sync.reorder_loads and b_step.waits and not target.waits:
            # The overlap credit would first appear with the B waits; rare
            # (A unsynchronized under reorder-loads) — take the full merge.
            return self._body_segments_indexed(
                rows, cols, k_range, batch_index, tile_m_actual, tile_n_actual, occupancy,
                a_plan=a_plan, b_plan=b_plan,
            )[0]
        composed = list(base)
        composed[position] = Segment(
            label=target.label,
            waits=list(target.waits) + list(b_step.waits),
            duration_us=target.duration_us,
            overlappable_us=target.overlappable_us,
            reads=list(target.reads) + list(b_step.reads),
        )
        return composed

    def _body_segments(
        self,
        rows: IndexRange,
        cols: IndexRange,
        k_range: IndexRange,
        batch_index: int,
        tile_m_actual: int,
        tile_n_actual: int,
        occupancy: int,
    ) -> List[Segment]:
        """The main-loop segments of one block (everything but the epilogue)."""
        return self._body_segments_indexed(
            rows, cols, k_range, batch_index, tile_m_actual, tile_n_actual, occupancy,
        )[0]

    def _body_segments_indexed(
        self,
        rows: IndexRange,
        cols: IndexRange,
        k_range: IndexRange,
        batch_index: int,
        tile_m_actual: int,
        tile_n_actual: int,
        occupancy: int,
        a_plan: Optional[List[ReadPlanStep]] = None,
        b_plan: Optional[List[ReadPlanStep]] = None,
    ) -> Tuple[List[Segment], Dict[int, int]]:
        """Body segments plus a map of chunk K start → segment position."""
        # Ask the stage how the main loop must be chunked for each operand.
        # A is read as [rows, k], B as [k, cols]; only synchronized operands
        # get real waits — plan_reads on a non-dependent operand is a no-op.
        # ``a_plan`` / ``b_plan`` override the operand plans (the shared
        # body path passes already-derived, possibly neutralized plans; see
        # :meth:`_compose_body`).
        problem = self.problem
        if a_plan is None:
            a_plan = self._plan_operand(problem.a, rows, k_range, batch_index)
        if b_plan is None:
            b_plan = self._plan_operand(problem.b, k_range, cols, batch_index, rows_are_k=True)
        chunks = _merge_k_plans(a_plan, b_plan, k_range)

        reorder_loads = self.sync.reorder_loads
        segments: List[Segment] = []
        chunk_positions: Dict[int, int] = {}
        for chunk in chunks:
            chunk_positions[chunk.k_range[0]] = len(segments)
            k_lo, k_hi = chunk.k_range
            chunk_k = k_hi - k_lo
            duration = self._chunk_duration_us(tile_m_actual, tile_n_actual, chunk_k, occupancy)
            waits = list(chunk.waits)
            reads = list(chunk.reads)
            # Reorder-loads optimization (Section IV-C): while waiting on the
            # synchronized operand's tile, the block can already load the
            # other operand's slice from global memory; that load time is
            # credited against any actual busy-wait time by the simulator.
            overlappable = 0.0
            if reorder_loads and waits:
                overlappable = self._overlap_credit_us(tile_n_actual, chunk_k, occupancy)

            compute = None
            if self.functional:
                compute = self._make_chunk_compute(batch_index, rows, cols, (k_lo, k_hi))
            segments.append(
                Segment(
                    label=f"k[{k_lo}:{k_hi}]",
                    waits=waits,
                    duration_us=duration,
                    overlappable_us=overlappable,
                    reads=reads,
                    compute=compute,
                )
            )
        return segments, chunk_positions

    # ------------------------------------------------------------------
    # Memoized per-shape durations
    #
    # A kernel sees only a handful of distinct (tile_m, tile_n, chunk_k)
    # shapes across its whole grid (interior tiles plus the clamped edge
    # tiles), so after the first few blocks every duration is a dict hit and
    # ``build_block_program`` does no cost-model arithmetic per block.
    # ------------------------------------------------------------------
    def _chunk_duration_us(self, tile_m: int, tile_n: int, chunk_k: int, occupancy: int) -> float:
        key = (tile_m, tile_n, chunk_k)
        duration = self._chunk_duration_cache.get(key)
        if duration is None:
            duration = self.cost_model.gemm_mainloop_chunk_us(
                tile_m, tile_n, chunk_k, occupancy, self.problem.element_bytes
            )
            if self.a_transform_flops:
                duration += self.cost_model.compute_time_us(
                    tile_m * chunk_k * self.a_transform_flops, occupancy, precision="fp32"
                )
            self._chunk_duration_cache[key] = duration
        return duration

    def _overlap_credit_us(self, tile_n: int, chunk_k: int, occupancy: int) -> float:
        key = (tile_n, chunk_k)
        credit = self._overlap_cache.get(key)
        if credit is None:
            credit = self.cost_model.memory_time_us(
                chunk_k * tile_n * self.problem.element_bytes, occupancy
            )
            self._overlap_cache[key] = credit
        return credit

    def _epilogue_duration_us(self, tile_m: int, tile_n: int, occupancy: int) -> float:
        key = (tile_m, tile_n)
        duration = self._epilogue_duration_cache.get(key)
        if duration is None:
            problem = self.problem
            duration = self.cost_model.gemm_epilogue_us(
                tile_m, tile_n, occupancy, problem.element_bytes
            )
            elements = tile_m * tile_n
            if self.epilogue.flops_per_element:
                duration += self.cost_model.compute_time_us(
                    elements * self.epilogue.flops_per_element, occupancy, precision="fp32"
                )
            if self.epilogue.extra_reads_per_element:
                duration += self.cost_model.memory_time_us(
                    elements * self.epilogue.extra_reads_per_element * problem.element_bytes, occupancy
                )
            self._epilogue_duration_cache[key] = duration
        return duration

    def _plan_operand(
        self,
        tensor: str,
        rows: IndexRange,
        cols: IndexRange,
        batch_index: int,
        rows_are_k: bool = False,
    ) -> List[ReadPlanStep]:
        """Plan the reads of one operand, consulting the stage if synchronized."""
        if tensor in self.sync_inputs:
            return self.sync.plan_reads(tensor, rows, cols, batch_index)
        return [ReadPlanStep(rows=rows, cols=cols, batch=batch_index)]

    def _epilogue_segments(
        self,
        tile: Dim3,
        batch_index: int,
        rows: IndexRange,
        cols: IndexRange,
        tile_m_actual: int,
        tile_n_actual: int,
        occupancy: int,
    ) -> List[Segment]:
        """The final segment: fused epilogue, output store and ``post``."""
        problem = self.problem
        duration = self._epilogue_duration_us(tile_m_actual, tile_n_actual, occupancy)

        waits = []
        reads = []
        if self.gate_input is not None and self.gate_input in self.sync_inputs:
            for step in self.sync.plan_reads(self.gate_input, rows, cols, batch_index):
                waits.extend(step.waits)
                reads.extend(step.reads)

        posts = self.sync.posts_for(tile, self.grid)
        writes = [TensorAccess(problem.c, self.sync.output_tile_key(tile, self.grid))]

        compute = None
        if self.functional:
            compute = self._make_epilogue_compute(batch_index, rows, cols)

        return [
            Segment(
                label="epilogue",
                waits=waits,
                duration_us=duration,
                posts=posts,
                reads=reads,
                writes=writes,
                compute=compute,
            )
        ]

    # ------------------------------------------------------------------
    # Functional (numpy) computation
    # ------------------------------------------------------------------
    def allocate_functional_tensors(self, memory: GlobalMemory) -> None:
        """Allocate the zero-initialized output tensor in global memory."""
        problem = self.problem
        shape = (problem.m, problem.n) if problem.batch == 1 else (problem.batch, problem.m, problem.n)
        if not memory.has_tensor(problem.c):
            memory.store_tensor(problem.c, np.zeros(shape, dtype=np.float32))

    def _operand_slice(
        self, memory: GlobalMemory, name: str, batch: int, rows: IndexRange, cols: IndexRange
    ) -> np.ndarray:
        tensor = memory.tensor(name)
        if tensor.ndim == 3:
            return tensor[batch, rows[0]:rows[1], cols[0]:cols[1]]
        return tensor[rows[0]:rows[1], cols[0]:cols[1]]

    def _make_chunk_compute(self, batch: int, rows: IndexRange, cols: IndexRange, k_range: IndexRange):
        problem = self.problem

        def compute(memory: GlobalMemory) -> None:
            a = self._operand_slice(memory, problem.a, batch, rows, k_range)
            b = self._operand_slice(memory, problem.b, batch, k_range, cols)
            if self.a_transform is not None:
                a = self.a_transform(a.astype(np.float32), memory, rows, k_range, batch)
            c = memory.tensor(problem.c)
            partial = a.astype(np.float32) @ b.astype(np.float32)
            if c.ndim == 3:
                c[batch, rows[0]:rows[1], cols[0]:cols[1]] += partial
            else:
                c[rows[0]:rows[1], cols[0]:cols[1]] += partial

        return compute

    def _make_epilogue_compute(self, batch: int, rows: IndexRange, cols: IndexRange):
        problem = self.problem
        epilogue = self.epilogue

        def compute(memory: GlobalMemory) -> None:
            if isinstance(epilogue, Identity):
                return
            c = memory.tensor(problem.c)
            if c.ndim == 3:
                tile_values = c[batch, rows[0]:rows[1], cols[0]:cols[1]]
                c[batch, rows[0]:rows[1], cols[0]:cols[1]] = epilogue.apply(
                    tile_values, memory, rows, cols, batch
                )
            else:
                tile_values = c[rows[0]:rows[1], cols[0]:cols[1]]
                c[rows[0]:rows[1], cols[0]:cols[1]] = epilogue.apply(tile_values, memory, rows, cols, batch)

        return compute

    def reference_result(self, memory: GlobalMemory) -> np.ndarray:
        """Numpy reference of the full problem, for correctness tests."""
        problem = self.problem
        a = memory.tensor(problem.a).astype(np.float32)
        b = memory.tensor(problem.b).astype(np.float32)
        if self.a_transform is not None:
            if a.ndim != 2:
                raise SimulationError("reference_result with a_transform requires batch == 1")
            a = self.a_transform(a, memory, (0, problem.m), (0, problem.k), 0)
        result = a @ b
        if isinstance(self.epilogue, Identity):
            return result
        if problem.batch == 1:
            return self.epilogue.apply(result, memory, (0, problem.m), (0, problem.n), 0)
        out = np.empty_like(result)
        for batch in range(problem.batch):
            out[batch] = self.epilogue.apply(
                result[batch], memory, (0, problem.m), (0, problem.n), batch
            )
        return out


@dataclass(frozen=True)
class _KChunk:
    """A merged main-loop chunk with the waits/reads that guard it."""

    k_range: IndexRange
    waits: Tuple = ()
    reads: Tuple = ()


def _merge_k_plans(
    a_plan: List[ReadPlanStep], b_plan: List[ReadPlanStep], k_range: IndexRange
) -> List[_KChunk]:
    """Merge per-operand read plans into a single K-chunk sequence.

    A's plan splits the K dimension via its column ranges, B's via its row
    ranges.  The merged chunks honour both: a chunk starts wherever either
    plan starts a new guarded step, and carries that step's waits.
    """
    # Fast path for the overwhelmingly common shape: both operands answer
    # with a single step covering the whole K range (unsynchronized inputs
    # and RowSync dependences).  The general merge below would produce
    # exactly one chunk carrying A's waits then B's waits.
    if len(a_plan) == 1 and len(b_plan) == 1 and k_range[1] > k_range[0]:
        a_step, b_step = a_plan[0], b_plan[0]
        if a_step.cols == k_range and b_step.rows == k_range:
            return [
                _KChunk(
                    k_range=k_range,
                    waits=tuple(a_step.waits) + tuple(b_step.waits),
                    reads=tuple(a_step.reads) + tuple(b_step.reads),
                )
            ]
    boundaries = {k_range[0], k_range[1]}
    a_starts = {}
    b_starts = {}
    for step in a_plan:
        boundaries.add(step.cols[0])
        boundaries.add(step.cols[1])
        a_starts[step.cols[0]] = step
    for step in b_plan:
        boundaries.add(step.rows[0])
        boundaries.add(step.rows[1])
        b_starts[step.rows[0]] = step

    ordered = sorted(b for b in boundaries if k_range[0] <= b <= k_range[1])
    chunks: List[_KChunk] = []
    for lo, hi in zip(ordered, ordered[1:]):
        if hi <= lo:
            continue
        waits: List = []
        reads: List = []
        if lo in a_starts:
            waits.extend(a_starts[lo].waits)
            reads.extend(a_starts[lo].reads)
        if lo in b_starts:
            waits.extend(b_starts[lo].waits)
            reads.extend(b_starts[lo].reads)
        chunks.append(_KChunk(k_range=(lo, hi), waits=tuple(waits), reads=tuple(reads)))
    if not chunks:
        chunks.append(_KChunk(k_range=k_range))
    return chunks
