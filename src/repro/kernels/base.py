"""Base classes shared by all tiled kernels.

The key abstraction is :class:`SyncInterface`: the narrow surface through
which a kernel talks to cuSync.  In the paper, adding cuSync to a CUTLASS
kernel means adding a handful of calls — ``stage.tile()``, ``stage.wait()``
before each tile load and ``stage.post()`` after the tile is computed
(Table III counts those lines).  Here the same calls are expressed as:

``plan_reads(tensor, rows, cols, batch)``
    Ask the stage how to split the main loop over an input tensor into
    chunks and which semaphore waits guard each chunk.  With no
    synchronization (``NoSync``) the answer is "one chunk, no waits"; with
    TileSync it is "one chunk per producer tile, one wait each"; with
    RowSync it is "one chunk, one wait for the whole row".

``posts_for(tile)``
    The semaphore posts to perform once the block's output tile is done.

``tile_order`` / ``first_block_posts``
    The custom tile processing order and the wait-kernel release signal.

Keeping this interface small is what makes the "lines changed" experiment
(Table III) meaningful in the reproduction: kernels contain exactly one call
site per mechanism.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.dim3 import Dim3
from repro.gpu.costmodel import CostModel
from repro.gpu.kernel import (
    KernelLaunch,
    SemPost,
    SemWait,
    TensorAccess,
    ThreadBlockProgram,
    TileOrderFn,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.occupancy import KernelResources, OccupancyCalculator
from repro.gpu.stream import Stream, DEFAULT_STREAM

#: Half-open index range ``(start, stop)`` over rows or columns of a tensor.
IndexRange = Tuple[int, int]


@dataclass(frozen=True)
class ReadPlanStep:
    """One chunk of a kernel's main loop over an input tensor.

    ``rows`` and ``cols`` are the element ranges of the input tensor the
    chunk reads; ``waits`` are the semaphore conditions that must hold
    before the chunk's tiles may be loaded; ``reads`` are the producer tile
    keys covered by the chunk, used for data-race detection in functional
    simulation.
    """

    rows: IndexRange
    cols: IndexRange
    waits: Tuple[SemWait, ...] = ()
    reads: Tuple[TensorAccess, ...] = ()
    batch: int = 0


class SyncInterface(ABC):
    """What a kernel needs to know about synchronization.

    Implementations: :class:`NoSync` (StreamSync baseline, every method is a
    no-op) and :class:`repro.cusync.custage.CuStage` (the paper's stage).
    """

    #: Whether the "reorder tile loads" optimization (Section IV-C) is on:
    #: the kernel may overlap waiting on one input with loading another.
    reorder_loads: bool = False

    @abstractmethod
    def plan_reads(
        self, tensor: str, rows: IndexRange, cols: IndexRange, batch: int = 0
    ) -> List[ReadPlanStep]:
        """Split a read of ``tensor[rows, cols]`` into guarded chunks."""

    @abstractmethod
    def posts_for(self, tile: Dim3, grid: Dim3) -> List[SemPost]:
        """Semaphore posts to perform after computing output ``tile``."""

    def tile_order(self, grid: Dim3) -> Optional[TileOrderFn]:
        """Custom tile processing order, or ``None`` for CUDA's default."""
        return None

    def first_block_posts(self) -> List[SemPost]:
        """Posts performed when the kernel's first block starts (wait-kernel release)."""
        return []

    def output_tile_key(self, tile: Dim3, grid: Dim3):
        """Key under which the output tile is recorded for race detection."""
        return (tile.x, tile.y, tile.z)


class NoSync(SyncInterface):
    """The StreamSync baseline: no fine-grained synchronization at all."""

    reorder_loads = False

    def plan_reads(
        self, tensor: str, rows: IndexRange, cols: IndexRange, batch: int = 0
    ) -> List[ReadPlanStep]:
        return [ReadPlanStep(rows=rows, cols=cols, batch=batch)]

    def posts_for(self, tile: Dim3, grid: Dim3) -> List[SemPost]:
        return []


@dataclass(frozen=True)
class StageGeometry:
    """How a kernel's output is tiled, as needed by a cuSync stage.

    A stage uses this to map element ranges of the kernel's output back to
    the tiles (and therefore semaphores) that produce them, and to fold the
    split-K grid dimension into per-tile post counts.
    """

    grid: Dim3
    #: Output rows covered by one tile (the kernel's ``tile_m``).
    tile_rows: int
    #: Output columns covered by one tile (the kernel's ``tile_n``).
    tile_cols: int
    #: Number of blocks that contribute to (and post) each logical tile.
    split_k: int = 1
    #: Number of independent batch entries folded into the grid's z dimension.
    batch: int = 1
    #: Name of the tensor the kernel writes.
    output: str = "C"

    @property
    def logical_grid(self) -> Dim3:
        """The grid of logical tiles: split-K contributions folded away."""
        return Dim3(self.grid.x, self.grid.y, self.batch)


@dataclass
class KernelArtifacts:
    """Static information about a built kernel, used by reports and tests."""

    name: str
    grid: Dim3
    occupancy: int
    blocks: int
    #: Number of cuSync integration call sites in the kernel implementation
    #: (the quantity Table III reports as "lines changed").
    sync_call_sites: int = 0
    tags: dict = field(default_factory=dict)


class TiledKernel(ABC):
    """Common machinery for building a :class:`KernelLaunch` from a kernel.

    Subclasses provide the grid, the per-tile program and the kernel's
    resource usage; this base class handles occupancy and launch assembly.
    """

    #: Number of cuSync integration call sites (wait/post/tile/start) in the
    #: kernel's implementation, reported by the Table III experiment.
    SYNC_CALL_SITES = 0

    def __init__(
        self,
        name: str,
        cost_model: Optional[CostModel] = None,
        sync: Optional[SyncInterface] = None,
        functional: bool = False,
    ) -> None:
        self.name = name
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.sync = sync if sync is not None else NoSync()
        self.functional = functional

    # ------------------------------------------------------------------
    # Plan-cache plumbing
    #
    # Executors re-point ``sync`` / ``cost_model`` / ``functional`` when a
    # kernel is attached to a pipeline (StreamSync strips synchronization,
    # cuSync installs a stage).  Kernels that memoize per-tile plans or
    # durations derived from those attributes hook
    # :meth:`_invalidate_plan_caches` to drop stale entries.
    # ------------------------------------------------------------------
    @property
    def sync(self) -> SyncInterface:
        return self._sync

    @sync.setter
    def sync(self, value: SyncInterface) -> None:
        self._sync = value
        self._invalidate_plan_caches()

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @cost_model.setter
    def cost_model(self, value: CostModel) -> None:
        self._cost_model = value
        self._invalidate_plan_caches()

    @property
    def functional(self) -> bool:
        return self._functional

    @functional.setter
    def functional(self, value: bool) -> None:
        self._functional = value
        self._invalidate_plan_caches()

    def _invalidate_plan_caches(self) -> None:
        """Drop memoized plans/durations; overridden by caching kernels."""

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def structural_state(self) -> tuple:
        """Canonical, process-independent description of this kernel.

        :meth:`PipelineGraph.structural_fingerprint
        <repro.pipeline.graph.PipelineGraph.structural_fingerprint>` hashes
        this to key sweep results by *what the kernel computes*: two
        kernels built from equal configuration — in the same process or
        not — share cache and result-store entries.  The default covers
        kernels whose constructor state lives in public attributes
        (problem/config dataclasses, epilogues, module-level transforms):
        every non-underscore attribute is canonicalized, while the
        run-time bindings (``cost_model`` / ``sync`` / ``functional``) and
        memoized plan caches live in underscore attributes and are
        excluded.  Subclasses whose public attributes carry
        non-structural state must override this.

        Raises :class:`~repro.pipeline.structural.UnportableValueError`
        when the kernel holds values without a process-independent
        identity (e.g. closures); such graphs fall back to per-process
        cache keying.
        """
        from repro.pipeline.structural import canonicalize

        state = {
            name: value
            for name, value in vars(self).items()
            if not name.startswith("_")
        }
        klass = type(self)
        return ("kernel", f"{klass.__module__}.{klass.__qualname__}", canonicalize(state))

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def grid(self) -> Dim3:
        """Launch grid of the kernel."""

    @property
    @abstractmethod
    def resources(self) -> KernelResources:
        """Per-block resource usage, used for occupancy."""

    @abstractmethod
    def build_block_program(self, tile: Dim3) -> ThreadBlockProgram:
        """Program of the thread block that computes ``tile``."""

    def stage_geometry(self) -> StageGeometry:
        """Output tiling description used when a cuSync stage wraps the kernel."""
        raise NotImplementedError(f"{type(self).__name__} does not support cuSync stages")

    # ------------------------------------------------------------------
    # Launch assembly
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Thread blocks resident per SM on the cost model's architecture."""
        return OccupancyCalculator(self.cost_model.arch).blocks_per_sm(self.resources)

    def build_launch(self, stream: Stream = DEFAULT_STREAM, issue_delay_us: float = 0.0) -> KernelLaunch:
        """Assemble the :class:`KernelLaunch` the simulator executes."""
        grid = self.grid
        return KernelLaunch(
            name=self.name,
            grid=grid,
            program_builder=self.build_block_program,
            occupancy=self.occupancy(),
            stream=stream,
            tile_order=self.sync.tile_order(grid),
            on_first_block_start=self.sync.first_block_posts(),
            issue_delay_us=issue_delay_us,
            tags={"kernel_class": type(self).__name__},
        )

    def artifacts(self) -> KernelArtifacts:
        """Static description used by reports (Table III, DESIGN docs)."""
        grid = self.grid
        return KernelArtifacts(
            name=self.name,
            grid=grid,
            occupancy=self.occupancy(),
            blocks=grid.volume,
            sync_call_sites=self.SYNC_CALL_SITES,
            tags={"kernel_class": type(self).__name__},
        )

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _clamp_range(r: IndexRange, limit: int) -> IndexRange:
        lo, hi = r
        return (max(0, lo), min(hi, limit))

    def allocate_functional_tensors(self, memory: GlobalMemory) -> None:
        """Allocate the numpy tensors the kernel writes (functional mode).

        The default implementation does nothing; kernels that support
        functional simulation override it.
        """

    def reference_result(self, memory: GlobalMemory):
        """Reference (numpy) result of the kernel, for correctness tests."""
        raise NotImplementedError(f"{type(self).__name__} has no functional reference")
