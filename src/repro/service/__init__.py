"""Sweep service: content-addressed persistence + an async job layer.

The pieces (see ``docs/service.md`` for the full tour):

:mod:`repro.service.store`
    :class:`SweepResultStore` — a disk-backed, content-addressed store of
    sweep results keyed by structural graph fingerprints, shared across
    processes and sessions.  Plug one into
    :class:`~repro.pipeline.Session` (``result_store=``) for a persistent
    tier under the in-memory sweep cache, or into a
    :class:`SweepService`.

:mod:`repro.service.jobs`
    :class:`SweepService` — an asyncio front that coalesces duplicate
    in-flight points across concurrent clients (each novel point
    simulates exactly once), resolves through memory → store →
    simulation, and streams per-point results.

:mod:`repro.service.audit`
    ``python -m repro.service.audit`` — walk a store's shards, census
    valid/corrupt/version-mismatched entries, optionally quarantine the
    corrupt ones (:meth:`SweepResultStore.audit`).

:mod:`repro.service.fakes`
    In-memory store/worker fakes for tests and experiments.
"""

from .jobs import JobCancelled, PointOutcome, SessionWorker, SweepJob, SweepService
from .store import (
    QUARANTINE_DIR,
    STORE_VERSION,
    ResultStore,
    StoreAudit,
    SweepResultStore,
    content_address,
    decode_result,
    encode_result,
    normalize_key,
)

__all__ = [
    "JobCancelled",
    "PointOutcome",
    "QUARANTINE_DIR",
    "ResultStore",
    "STORE_VERSION",
    "SessionWorker",
    "StoreAudit",
    "SweepJob",
    "SweepResultStore",
    "SweepService",
    "content_address",
    "decode_result",
    "encode_result",
    "normalize_key",
]
