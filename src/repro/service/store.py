"""Disk-backed, content-addressed store for sweep results.

One :class:`SweepResultStore` persists :class:`~repro.pipeline.SweepResult`
values keyed by the fully portable trace key
:meth:`Session.sweep_store_key <repro.pipeline.session.Session.sweep_store_key>`
builds — ``(format tag, graph structural fingerprint, canonical arch,
scheme, canonical policy assignment)`` — so any process that rebuilds an
equal graph addresses the same entries.  Design constraints, in order:

**Never wrong.**  Every entry echoes its full key; a read whose echo does
not match the requested key (a content-address collision, a hand-edited
file) is a miss.  Entries carry a format ``version``; version-mismatched
entries are ignored, never reinterpreted.  Results round-trip through
JSON, whose shortest-round-trip float encoding is exact — replayed
results are bit-identical to the persisted ones.

**Never crash.**  Reads tolerate arbitrary corruption — truncated writes,
garbage bytes, missing fields, wrong types all read as misses (counted in
``corrupt_entries``) and leave the sweep to simulate the point fresh.

**Never torn.**  Writes go to a temporary file in the destination
directory and land with an atomic :func:`os.replace`, so concurrent
writers (or a crash mid-write) can never expose a partial entry; two
writers racing on one key both write complete, identical-keyed entries
and the last one wins.

Layout: ``<root>/<aa>/<address>.json`` where ``address`` is the sha256 of
the canonical JSON encoding of the key and ``aa`` its first two hex
characters (sharding keeps directories small at millions of entries).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.pipeline.session import SweepResult

__all__ = [
    "STORE_VERSION",
    "QUARANTINE_DIR",
    "ResultStore",
    "StoreAudit",
    "SweepResultStore",
    "content_address",
    "decode_result",
    "encode_result",
    "normalize_key",
]

#: Entry-format version.  Bump when the payload schema changes; readers
#: ignore entries written under any other version.
STORE_VERSION = 1

#: Subdirectory (under the store root) corrupt entries are moved to by
#: ``audit(quarantine=True)``.  Deliberately longer than the two-hex
#: shard names, so quarantined files are invisible to normal reads.
QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class StoreAudit:
    """Outcome of one :meth:`SweepResultStore.audit` walk.

    ``corrupt`` covers everything the read path would count in
    ``corrupt_entries``: unparseable JSON, malformed payloads, key echoes
    that do not match the file's content address (a misplaced or edited
    entry).  ``version_mismatched`` entries are structurally sound but
    written under a different :data:`STORE_VERSION` — ignored by reads,
    not quarantined (a downgrade should not destroy an upgrade's data).
    """

    scanned: int
    valid: int
    corrupt: int
    version_mismatched: int
    quarantined: int
    corrupt_paths: Tuple[str, ...]
    version_mismatched_paths: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True when no corrupt entries remain in the read path."""
        return self.corrupt == 0 or self.quarantined == self.corrupt

    def summary(self) -> Dict[str, int]:
        return {
            "scanned": self.scanned,
            "valid": self.valid,
            "corrupt": self.corrupt,
            "version_mismatched": self.version_mismatched,
            "quarantined": self.quarantined,
        }

    def describe(self) -> str:
        line = (
            f"audit: {self.scanned} scanned, {self.valid} valid, "
            f"{self.corrupt} corrupt, {self.version_mismatched} version-mismatched"
        )
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        return line


def normalize_key(key: Tuple) -> List:
    """The key in its JSON shape (nested lists), for hashing and echoing."""
    if isinstance(key, (tuple, list)):
        return [normalize_key(item) for item in key]
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    raise TypeError(
        f"store keys must be nested tuples of primitives, got {type(key).__name__} "
        "(build keys with Session.sweep_store_key)"
    )


def content_address(key: Tuple) -> str:
    """Deterministic sha256 address of a store key (hex, 64 chars)."""
    encoded = json.dumps(normalize_key(key), separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _policy_label(policy: object) -> Optional[str]:
    if policy is None:
        return None
    if isinstance(policy, str):
        return policy
    return policy.label()  # type: ignore[attr-defined]


def encode_result(result: SweepResult) -> Dict[str, object]:
    """The JSON payload of one result.

    The policy is persisted as its *label* (replays through
    :meth:`Session.sweep <repro.pipeline.session.Session.sweep>` override
    it with the requested spelling anyway, exactly like in-memory cache
    hits); every numeric field keeps full float precision via JSON's
    shortest-round-trip encoding.
    """
    return {
        "scheme": result.scheme,
        "policy": _policy_label(result.policy),
        "arch_name": result.arch_name,
        "total_time_us": result.total_time_us,
        "total_wait_time_us": result.total_wait_time_us,
        "kernel_durations_us": [[name, us] for name, us in result.kernel_durations_us],
        "graph_label": result.graph_label,
    }


def decode_result(payload: object) -> SweepResult:
    """Rebuild a :class:`SweepResult` from its payload; raise on any mismatch."""
    if not isinstance(payload, dict):
        raise ValueError("result payload is not an object")
    scheme = payload["scheme"]
    policy = payload["policy"]
    arch_name = payload["arch_name"]
    total_time_us = payload["total_time_us"]
    total_wait_time_us = payload["total_wait_time_us"]
    durations = payload["kernel_durations_us"]
    graph_label = payload["graph_label"]
    if (
        not isinstance(scheme, str)
        or not (policy is None or isinstance(policy, str))
        or not isinstance(arch_name, str)
        or not isinstance(total_time_us, (int, float))
        or isinstance(total_time_us, bool)
        or not isinstance(total_wait_time_us, (int, float))
        or isinstance(total_wait_time_us, bool)
        or not isinstance(durations, list)
        or not isinstance(graph_label, str)
    ):
        raise ValueError("result payload has wrong field types")
    kernel_durations: List[Tuple[str, float]] = []
    for pair in durations:
        if (
            not isinstance(pair, list)
            or len(pair) != 2
            or not isinstance(pair[0], str)
            or not isinstance(pair[1], (int, float))
            or isinstance(pair[1], bool)
        ):
            raise ValueError("kernel_durations_us entries must be [name, us] pairs")
        kernel_durations.append((pair[0], float(pair[1])))
    return SweepResult(
        scheme=scheme,
        policy=policy,
        arch_name=arch_name,
        total_time_us=float(total_time_us),
        total_wait_time_us=float(total_wait_time_us),
        kernel_durations_us=tuple(kernel_durations),
        graph_label=graph_label,
        cached=True,
    )


class ResultStore:
    """Interface of a sweep-result store (disk-backed or fake).

    ``get`` returns the stored :class:`SweepResult` for a key or ``None``
    (misses include corrupt and version-mismatched entries — a store never
    raises on bad data and never returns a result for a different key).
    ``put`` persists a successful result and returns whether it was
    accepted (failures and malformed values are rejected, not raised).
    Implementations keep monotonic counters and report them via
    :meth:`stats`.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_entries: int = 0
    ignored_versions: int = 0
    rejected_writes: int = 0

    def get(self, key: Tuple) -> Optional[SweepResult]:
        raise NotImplementedError

    def put(self, key: Tuple, result: SweepResult) -> bool:
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
            "ignored_versions": self.ignored_versions,
            "rejected_writes": self.rejected_writes,
        }


class SweepResultStore(ResultStore):
    """The disk-backed store (see module docstring for the format)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_entries = 0
        self.ignored_versions = 0
        self.rejected_writes = 0

    # ------------------------------------------------------------------
    def _path(self, key: Tuple) -> Path:
        address = content_address(key)
        return self.root / address[:2] / f"{address}.json"

    def get(self, key: Tuple) -> Optional[SweepResult]:
        try:
            path = self._path(key)
        except TypeError:
            self.misses += 1
            return None
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            version = entry["version"]
            if version != STORE_VERSION:
                self.ignored_versions += 1
                self.misses += 1
                return None
            if entry["key"] != normalize_key(key):
                raise ValueError("key echo mismatch")
            result = decode_result(entry["result"])
        except Exception:
            self.corrupt_entries += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: Tuple, result: SweepResult) -> bool:
        if not isinstance(result, SweepResult):
            self.rejected_writes += 1
            return False
        try:
            path = self._path(key)
            entry = {
                "version": STORE_VERSION,
                "key": normalize_key(key),
                "result": encode_result(result),
            }
            encoded = json.dumps(entry, separators=(",", ":")) + "\n"
        except Exception:
            self.rejected_writes += 1
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: write the complete entry to a sibling temp
            # file, then rename over the destination.  Readers see either
            # the old entry or the new one, never a torn write.
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w") as handle:
                    handle.write(encoded)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.rejected_writes += 1
            return False
        self.writes += 1
        return True

    # ------------------------------------------------------------------
    def audit(self, quarantine: bool = False) -> StoreAudit:
        """Walk every shard and classify each entry; optionally quarantine.

        Classification mirrors the read path exactly: an entry the read
        path would serve is ``valid``, one it would count as
        ``corrupt_entries`` is ``corrupt`` (including key echoes that do
        not match the file's content address), and one it would skip for
        its ``version`` is ``version_mismatched``.  With
        ``quarantine=True``, corrupt files are moved out of the read path
        into ``<root>/quarantine/`` (atomic rename; nothing is deleted),
        so subsequent reads of those keys become clean misses without
        the per-read corruption accounting.  Version-mismatched entries
        are never quarantined.

        The walk itself never raises on bad data and runs read-only
        unless quarantining.
        """
        scanned = valid = version_mismatched = quarantined = 0
        corrupt_paths: List[str] = []
        version_paths: List[str] = []
        for path in sorted(self._entry_paths()):
            scanned += 1
            status = self._classify(path)
            if status == "valid":
                valid += 1
                continue
            if status == "version":
                version_mismatched += 1
                version_paths.append(str(path))
                continue
            corrupt_paths.append(str(path))
            if quarantine and self._quarantine(path):
                quarantined += 1
        return StoreAudit(
            scanned=scanned,
            valid=valid,
            corrupt=len(corrupt_paths),
            version_mismatched=version_mismatched,
            quarantined=quarantined,
            corrupt_paths=tuple(corrupt_paths),
            version_mismatched_paths=tuple(version_paths),
        )

    def _classify(self, path: Path) -> str:
        """``"valid"`` / ``"version"`` / ``"corrupt"`` for one entry file."""
        try:
            raw = path.read_bytes()
        except OSError:
            return "corrupt"
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
            version = entry["version"]
            key = entry["key"]
            if content_address(key) != path.stem:
                raise ValueError("key echo does not match content address")
            if version != STORE_VERSION:
                return "version"
            decode_result(entry["result"])
        except Exception:
            return "corrupt"
        return "valid"

    def _quarantine(self, path: Path) -> bool:
        destination = self.root / QUARANTINE_DIR / path.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.exists():
            return iter(())
        return self.root.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
