"""Command-line audit of a :class:`~repro.service.store.SweepResultStore`.

Usage::

    python -m repro.service.audit <store-root> [--quarantine] [--json]

Walks every shard of the store at ``<store-root>``, prints a
valid/corrupt/version-mismatched census, and with ``--quarantine`` moves
corrupt entries into ``<root>/quarantine/`` (atomic rename — nothing is
deleted).  Exits 0 when the read path is clean, 1 when corrupt entries
remain in it, 2 for a usage error — so the command slots into cron jobs
and CI gates directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.service.store import SweepResultStore

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.audit",
        description="Audit a sweep-result store for corrupt entries.",
    )
    parser.add_argument("root", help="store root directory")
    parser.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt entries to <root>/quarantine/ (never deletes)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the census as JSON"
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"store root {root} is not a directory")
    store = SweepResultStore(root)
    audit = store.audit(quarantine=args.quarantine)
    if args.json:
        payload = dict(audit.summary())
        payload["corrupt_paths"] = list(audit.corrupt_paths)
        payload["version_mismatched_paths"] = list(audit.version_mismatched_paths)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(audit.describe())
        for path in audit.corrupt_paths:
            print(f"  corrupt: {path}")
        for path in audit.version_mismatched_paths:
            print(f"  version-mismatch: {path}")
    return 0 if audit.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
