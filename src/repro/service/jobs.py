"""Asyncio sweep service: job submission, coalescing and result streaming.

A :class:`SweepService` front-ends one :class:`~repro.pipeline.Session`
for any number of concurrent async clients.  Each submitted
``(graph, point)`` pair resolves through three tiers, cheapest first:

1. **Memory** — the session's in-memory sweep cache (a synchronous probe
   on the event loop; replays are free).
2. **Store** — the content-addressed disk store, when the service has one
   and the point has a portable key (read off-loop in a worker thread).
3. **Simulation** — the session's existing sweep machinery via a
   :class:`SessionWorker` (``Session.sweep`` with ``cache=False``), which
   carries the timeout / retry / backoff / structured-failure semantics
   unchanged.

The coalescing invariant: while a point is resolving, its trace key is
parked in an in-flight table, and every other submission of an equal
point — same job, another job, another client — awaits that one
resolution instead of starting its own.  **Each novel point simulates
exactly once**, no matter how many clients race on it.  Registration is
synchronous with the tier checks (the event loop never yields between
"not in flight" and "now in flight"), which is what makes the invariant
airtight.  Failures propagate to every coalesced waiter but are never
written to the store or the memory cache, so the next submission after
the in-flight entry clears re-simulates fresh.

Results stream per point as they land (:meth:`SweepJob.stream`) or
collect position-aligned with the work list (:meth:`SweepJob.results`).
Every outcome says where its result came from (``"memory"``,
``"store"``, ``"coalesced"``, ``"simulated"``, ``"cancelled"``) so tests
and benchmarks can assert dedup ratios exactly.

Cancellation is *graceful*: resolution of a novel point runs in a
detached service-owned task, so :meth:`SweepJob.cancel` (or a per-job
``timeout_s``) releases that job's waiters with a structured
:class:`JobCancelled` outcome while the in-flight future keeps resolving
for every other job coalesced on the same point — cancelling one client
never poisons another's result.
"""

from __future__ import annotations

import asyncio
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    AsyncIterator,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import SimulationError
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.session import Session, SweepFailure, SweepPoint, SweepResult

from .store import ResultStore

__all__ = [
    "JobCancelled",
    "PointOutcome",
    "SessionWorker",
    "SweepJob",
    "SweepService",
]

#: One submitted work item.
WorkItem = Tuple[PipelineGraph, SweepPoint]


@dataclass(frozen=True)
class JobCancelled:
    """A point released without a result: its job was cancelled or timed out.

    The job-level analogue of
    :class:`~repro.pipeline.session.SweepFailure` — a structured value in
    the results list, not an exception.  ``reason`` is ``"cancelled"``
    (explicit :meth:`SweepJob.cancel`) or ``"timeout"`` (the job's
    ``timeout_s`` elapsed).  Only the *waiting* is abandoned: an
    in-flight resolution keeps running for other jobs coalesced on the
    same point.
    """

    point: SweepPoint
    graph_label: str
    reason: str
    #: How long the point waited before being released (wall seconds;
    #: excluded from comparisons, like SweepFailure's elapsed_s).
    waited_s: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        return (
            f"{self.graph_label}/{self.point.scheme}: released after "
            f"{self.waited_s:.3f}s ({self.reason})"
        )


@dataclass(frozen=True)
class PointOutcome:
    """One resolved point of a job: the result plus where it came from."""

    #: Position of the point in the job's work list.
    position: int
    #: Stable label of the point's graph within the job.
    graph_label: str
    point: SweepPoint
    result: Union[SweepResult, SweepFailure, JobCancelled]
    #: ``"memory"`` / ``"store"`` / ``"coalesced"`` / ``"simulated"`` /
    #: ``"cancelled"``.
    source: str

    @property
    def ok(self) -> bool:
        return self.result.ok


class SweepJob:
    """Handle for one submitted work list.

    Consume it either as a stream (:meth:`stream`, outcomes in completion
    order) or as a batch (:meth:`results` / :meth:`outcomes`,
    position-aligned with the submitted work list).  Both may be used on
    the same job; tasks resolve once.
    """

    def __init__(
        self,
        tasks: Sequence["asyncio.Task[PointOutcome]"],
        cancel_event: Optional["asyncio.Event"] = None,
    ) -> None:
        self._tasks = list(tasks)
        self._cancel_event = cancel_event if cancel_event is not None else asyncio.Event()

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def done(self) -> bool:
        return all(task.done() for task in self._tasks)

    @property
    def cancelled(self) -> bool:
        return self._cancel_event.is_set()

    async def stream(self) -> AsyncIterator[PointOutcome]:
        """Yield each :class:`PointOutcome` as soon as it resolves."""
        for task in asyncio.as_completed(list(self._tasks)):
            yield await task

    async def outcomes(self) -> List[PointOutcome]:
        """Every outcome, ordered by work-list position."""
        resolved = await asyncio.gather(*self._tasks)
        return sorted(resolved, key=lambda outcome: outcome.position)

    async def results(self) -> List[Union[SweepResult, SweepFailure, JobCancelled]]:
        """The results alone, position-aligned with the work list."""
        return [outcome.result for outcome in await self.outcomes()]

    def cancel(self) -> None:
        """Release this job's unresolved points as :class:`JobCancelled`.

        Graceful: already-resolved points keep their results, and any
        simulation the service started on this job's behalf runs to
        completion for the benefit of other (coalesced) jobs — only the
        waiting stops.
        """
        self._cancel_event.set()


class SessionWorker:
    """Evaluates single points through the session's existing sweep machinery.

    Each call runs ``Session.sweep([(graph, point)], cache=False,
    on_error="collect", ...)``, so the fault-tolerance contract —
    per-attempt timeouts, retries with deterministic backoff, structured
    :class:`~repro.pipeline.session.SweepFailure` values instead of
    raises — is inherited wholesale rather than reimplemented.  ``mode``
    is forwarded: ``"process"`` evaluates each point in the existing
    process-pool path (worker-kill timeouts included); the default
    ``None`` picks the in-process serial path.

    Calls are thread-safe: concurrent evaluations of points sharing a
    graph serialize on a per-graph lock, because an evaluation re-binds
    that graph's kernels (same discipline as ``Session.sweep``'s thread
    mode).  ``calls`` counts evaluations — the figure the coalescing
    acceptance tests assert on.
    """

    def __init__(
        self,
        session: Session,
        *,
        mode: Optional[str] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> None:
        self.session = session
        self.mode = mode
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.calls = 0
        self._guard = threading.Lock()
        self._graph_locks: "weakref.WeakKeyDictionary[PipelineGraph, threading.Lock]" = (
            weakref.WeakKeyDictionary()
        )

    def _graph_lock(self, graph: PipelineGraph) -> threading.Lock:
        with self._guard:
            lock = self._graph_locks.get(graph)
            if lock is None:
                lock = threading.Lock()
                self._graph_locks[graph] = lock
            return lock

    def evaluate(self, graph: PipelineGraph, point: SweepPoint) -> Union[SweepResult, SweepFailure]:
        with self._guard:
            self.calls += 1
        with self._graph_lock(graph):
            results = self.session.sweep(
                [(graph, point)],
                mode=self.mode,
                workers=self.workers,
                cache=False,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
                on_error="collect",
            )
        return results[0]


def _job_labels(items: Sequence[WorkItem]) -> Dict[int, str]:
    """One unique label per distinct graph, mirroring ``Session.sweep``'s."""
    labels: Dict[int, str] = {}
    taken: set = set()
    ordinal = 0
    for graph, _ in items:
        if id(graph) in labels:
            continue
        label = graph.name if graph.name else f"graph{ordinal}"
        if label in taken:
            suffix = 2
            while f"{label}#{suffix}" in taken:
                suffix += 1
            label = f"{label}#{suffix}"
        labels[id(graph)] = label
        taken.add(label)
        ordinal += 1
    return labels


class SweepService:
    """Coalescing, store-backed sweep front for concurrent async clients.

    See the module docstring for the tier order and the coalescing
    invariant.  ``store`` and ``worker`` are duck-typed
    (:class:`~repro.service.store.ResultStore` /
    :class:`SessionWorker`-shaped); the fakes in
    :mod:`repro.service.fakes` slot straight in.  Store calls are
    best-effort — a store that raises is counted in ``store_errors`` and
    treated as a miss / dropped write, never as a failed point.

    One event loop at a time: in-flight futures belong to the running
    loop.  Blocking work (store IO, simulation) runs on a bounded thread
    pool (``max_parallel``); close the service (or use it as a context
    manager) to release the pool.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        store: Optional[ResultStore] = None,
        worker=None,
        *,
        mode: Optional[str] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        max_parallel: int = 4,
    ) -> None:
        if max_parallel < 1:
            raise SimulationError(f"max_parallel must be at least 1, got {max_parallel}")
        self.session = session if session is not None else Session()
        self.store = store
        self.worker = (
            worker
            if worker is not None
            else SessionWorker(
                self.session,
                mode=mode,
                workers=workers,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
            )
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_parallel, thread_name_prefix="sweep-service"
        )
        self._inflight: Dict[Tuple, "asyncio.Future" ] = {}
        #: Detached resolution tasks (strong refs: they must outlive a
        #: cancelled job so coalesced waiters still get their result).
        self._resolvers: Set["asyncio.Task"] = set()
        self.points_submitted = 0
        self.memory_hits = 0
        self.store_hits = 0
        self.points_coalesced = 0
        self.points_simulated = 0
        self.points_cancelled = 0
        self.failures = 0
        self.store_errors = 0

    # ------------------------------------------------------------------
    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        return {
            "points_submitted": self.points_submitted,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "points_coalesced": self.points_coalesced,
            "points_simulated": self.points_simulated,
            "points_cancelled": self.points_cancelled,
            "failures": self.failures,
            "store_errors": self.store_errors,
        }

    async def drain(self) -> None:
        """Wait for every detached in-flight resolution to finish.

        Useful after cancelling a job: the abandoned resolutions keep
        running (by design), and draining them avoids tearing down the
        event loop underneath a pending task.
        """
        while self._resolvers:
            await asyncio.gather(*list(self._resolvers), return_exceptions=True)

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    async def submit(
        self, work: Iterable[WorkItem], *, timeout_s: Optional[float] = None
    ) -> SweepJob:
        """Start resolving every point of ``work``; returns immediately.

        ``work`` is an iterable of ``(PipelineGraph, SweepPoint)`` pairs
        (the shape :func:`~repro.pipeline.session.sweep_archs` /
        :func:`~repro.pipeline.session.sweep_policies` produce).

        ``timeout_s`` bounds the whole job: points still waiting when it
        elapses resolve as :class:`JobCancelled` (reason ``"timeout"``)
        instead of blocking forever on a slow or stuck resolution.  Like
        :meth:`SweepJob.cancel`, the timeout releases only this job's
        waiters — shared in-flight resolutions keep going.
        """
        if timeout_s is not None and timeout_s <= 0.0:
            raise SimulationError(f"timeout_s must be positive, got {timeout_s}")
        items: List[WorkItem] = []
        for item in work:
            graph, point = item
            if not isinstance(graph, PipelineGraph) or not isinstance(point, SweepPoint):
                raise SimulationError(
                    "SweepService.submit work items must be "
                    f"(PipelineGraph, SweepPoint) pairs, got {item!r}"
                )
            items.append((graph, point))
        labels = _job_labels(items)
        cancel_event = asyncio.Event()
        deadline = (
            None if timeout_s is None else asyncio.get_running_loop().time() + timeout_s
        )
        tasks = [
            asyncio.create_task(
                self._evaluate_point(
                    position, graph, point, labels[id(graph)], cancel_event, deadline
                )
            )
            for position, (graph, point) in enumerate(items)
        ]
        self.points_submitted += len(tasks)
        return SweepJob(tasks, cancel_event)

    async def sweep(
        self, work: Iterable[WorkItem], *, timeout_s: Optional[float] = None
    ) -> List[Union[SweepResult, SweepFailure, JobCancelled]]:
        """Submit ``work`` and await all results, position-aligned."""
        job = await self.submit(work, timeout_s=timeout_s)
        return await job.results()

    # ------------------------------------------------------------------
    async def _evaluate_point(
        self,
        position: int,
        graph: PipelineGraph,
        point: SweepPoint,
        label: str,
        cancel_event: "asyncio.Event",
        deadline: Optional[float],
    ) -> PointOutcome:
        loop = asyncio.get_running_loop()
        started = loop.time()

        def released(reason: str) -> PointOutcome:
            self.points_cancelled += 1
            cancelled = JobCancelled(
                point=point,
                graph_label=label,
                reason=reason,
                waited_s=loop.time() - started,
            )
            return self._outcome(position, point, label, cancelled, "cancelled")

        if cancel_event.is_set():
            return released("cancelled")
        key = self.session.sweep_trace_key(graph, point)
        coalesced = False
        if key is None:
            # Uncacheable point: nothing to coalesce on, straight to a
            # private fresh resolution (still detached, so a cancel or
            # timeout abandons the wait, not the evaluation).
            future = loop.create_future()
            self._spawn_resolver(None, future, graph, point)
        else:
            future = self._inflight.get(key)
            if future is not None:
                coalesced = True
                self.points_coalesced += 1
            else:
                hit = self.session.cached_sweep_result(graph, point)
                if hit is not None:
                    self.memory_hits += 1
                    return self._outcome(position, point, label, hit, "memory")
                # Novel point: park its key *before* the first await so
                # every concurrent equal submission lands on this future.
                # The resolver task owns the future's completion — a
                # cancelled waiter never poisons it for other jobs.
                future = loop.create_future()
                self._inflight[key] = future
                self._spawn_resolver(key, future, graph, point)
        status = await self._await_future(future, cancel_event, deadline)
        if status == "done":
            result, source = future.result()
            if coalesced:
                source = "coalesced"
            return self._outcome(position, point, label, result, source)
        return released(status)

    async def _await_future(
        self,
        future: "asyncio.Future",
        cancel_event: "asyncio.Event",
        deadline: Optional[float],
    ) -> str:
        """Wait on ``future`` guarded by the job's cancel event / deadline.

        Returns ``"done"``, ``"cancelled"`` or ``"timeout"``.  The future
        itself is never cancelled here — it belongs to the resolver.
        """
        loop = asyncio.get_running_loop()
        event_task = asyncio.ensure_future(cancel_event.wait())
        timeout = None if deadline is None else max(0.0, deadline - loop.time())
        try:
            done, _ = await asyncio.wait(
                {future, event_task},
                timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            if not event_task.done():
                event_task.cancel()
        if future in done:
            return "done"
        if event_task in done:
            return "cancelled"
        return "timeout"

    def _spawn_resolver(
        self,
        key: Optional[Tuple],
        future: "asyncio.Future",
        graph: PipelineGraph,
        point: SweepPoint,
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._resolve_into(key, future, graph, point)
        )
        self._resolvers.add(task)
        task.add_done_callback(self._resolvers.discard)

    async def _resolve_into(
        self,
        key: Optional[Tuple],
        future: "asyncio.Future",
        graph: PipelineGraph,
        point: SweepPoint,
    ) -> None:
        try:
            result, source = await self._resolve_fresh(graph, point)
        except BaseException as exc:
            if not future.done():
                if isinstance(exc, asyncio.CancelledError):
                    future.cancel()
                else:
                    future.set_exception(exc)
                    # Mark retrieved so a waiter-less failure does not log
                    # an "exception was never retrieved" warning.
                    future.exception()
            if isinstance(exc, asyncio.CancelledError):
                raise
        else:
            if not future.done():
                future.set_result((result, source))
        finally:
            if key is not None:
                self._inflight.pop(key, None)

    async def _resolve_fresh(
        self, graph: PipelineGraph, point: SweepPoint
    ) -> Tuple[Union[SweepResult, SweepFailure], str]:
        loop = asyncio.get_running_loop()
        store_key = (
            self.session.sweep_store_key(graph, point) if self.store is not None else None
        )
        if store_key is not None:
            stored = await loop.run_in_executor(self._executor, self._store_get, store_key)
            if stored is not None:
                self.store_hits += 1
                self.session.adopt_sweep_result(graph, point, stored)
                return stored, "store"
        result = await loop.run_in_executor(self._executor, self.worker.evaluate, graph, point)
        self.points_simulated += 1
        if isinstance(result, SweepResult):
            self.session.adopt_sweep_result(graph, point, result)
            if store_key is not None:
                await loop.run_in_executor(self._executor, self._store_put, store_key, result)
        elif isinstance(result, SweepFailure):
            # Failures surface to every waiter but are never persisted:
            # the next submission re-simulates instead of replaying them.
            self.failures += 1
        else:
            raise SimulationError(
                "worker.evaluate must return a SweepResult or SweepFailure, "
                f"got {type(result).__name__}"
            )
        return result, "simulated"

    def _store_get(self, key: Tuple) -> Optional[SweepResult]:
        try:
            result = self.store.get(key)
        except Exception:
            self.store_errors += 1
            return None
        return result if isinstance(result, SweepResult) else None

    def _store_put(self, key: Tuple, result: SweepResult) -> None:
        try:
            self.store.put(key, result)
        except Exception:
            self.store_errors += 1

    @staticmethod
    def _outcome(
        position: int,
        point: SweepPoint,
        label: str,
        result: Union[SweepResult, SweepFailure, JobCancelled],
        source: str,
    ) -> PointOutcome:
        # Replays and shared results carry the submission's own policy
        # spelling and graph label, exactly like Session.sweep cache hits.
        # JobCancelled values are already minted for this submission.
        if isinstance(result, SweepResult):
            result = replace(
                result,
                policy=point.policy,
                graph_label=label,
                cached=source != "simulated",
            )
        elif isinstance(result, SweepFailure):
            result = replace(result, point=point, graph_label=label)
        return PointOutcome(
            position=position,
            graph_label=label,
            point=point,
            result=result,
            source=source,
        )
