"""In-memory fakes of the service's store and worker interfaces.

Tests (and downstream experiments) use these to exercise
:class:`~repro.service.jobs.SweepService` without disk IO or real
simulation: :class:`FakeResultStore` is a dict behind the
:class:`~repro.service.store.ResultStore` interface with injectable
read/write faults, and :class:`FakeWorker` returns deterministic
synthetic results with optional latency (to widen coalescing race
windows) and injectable failures.  Both keep the call counters the
acceptance tests assert on.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.pipeline.graph import PipelineGraph
from repro.pipeline.session import SweepFailure, SweepPoint, SweepResult

from ..store import ResultStore

__all__ = ["FakeResultStore", "FakeWorker"]


class FakeResultStore(ResultStore):
    """Dict-backed result store with injectable faults.

    Honours the :class:`~repro.service.store.ResultStore` contract —
    *except* when ``fail_reads`` / ``fail_writes`` are set, in which case
    the corresponding call raises ``RuntimeError``, which is exactly what
    the session's and service's best-effort store wrappers are tested
    against.
    """

    def __init__(self, *, fail_reads: bool = False, fail_writes: bool = False) -> None:
        self._entries: Dict[Tuple, SweepResult] = {}
        self._lock = threading.Lock()
        self.fail_reads = fail_reads
        self.fail_writes = fail_writes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_entries = 0
        self.ignored_versions = 0
        self.rejected_writes = 0
        #: Every key ever asked for / written, in call order.
        self.get_log: List[Tuple] = []
        self.put_log: List[Tuple] = []

    def get(self, key: Tuple) -> Optional[SweepResult]:
        with self._lock:
            self.get_log.append(key)
            if self.fail_reads:
                raise RuntimeError("injected store read failure")
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
            return result

    def put(self, key: Tuple, result: SweepResult) -> bool:
        with self._lock:
            self.put_log.append(key)
            if self.fail_writes:
                raise RuntimeError("injected store write failure")
            if not isinstance(result, SweepResult):
                self.rejected_writes += 1
                return False
            self._entries[key] = result
            self.writes += 1
            return True

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            return removed


def _synthetic_result(graph: PipelineGraph, point: SweepPoint) -> SweepResult:
    """A deterministic result derived only from the point's identity."""
    policy = point.policy
    if policy is not None and not isinstance(policy, str):
        label = getattr(policy, "label", None)
        policy = label() if callable(label) else repr(policy)
    identity = f"{graph.name}|{point.scheme}|{policy}|{point.arch}"
    base = float(zlib.crc32(identity.encode("utf-8")) % 10_000) + 1.0
    return SweepResult(
        scheme=point.scheme,
        policy=point.policy,
        arch_name=str(point.arch),
        total_time_us=base,
        total_wait_time_us=base / 8.0,
        kernel_durations_us=(("fake-kernel", base / 2.0),),
        graph_label=graph.name or "graph",
    )


class FakeWorker:
    """Canned worker mirroring :class:`~repro.service.jobs.SessionWorker`.

    ``delay_s`` sleeps inside each evaluation (evaluations run on the
    service's thread pool, so a delay holds points in flight long enough
    for concurrent submissions to coalesce onto them).  ``fail`` is a
    ``(graph, point) -> bool`` predicate; matching points return a
    structured :class:`~repro.pipeline.session.SweepFailure` instead of a
    result.  ``make_result`` overrides the synthetic result builder.
    ``calls`` / ``call_log`` count evaluations — the "each novel point
    simulates exactly once" assertions read them.
    """

    def __init__(
        self,
        *,
        delay_s: float = 0.0,
        fail: Optional[Callable[[PipelineGraph, SweepPoint], bool]] = None,
        make_result: Optional[
            Callable[[PipelineGraph, SweepPoint], Union[SweepResult, SweepFailure]]
        ] = None,
    ) -> None:
        self.delay_s = delay_s
        self.fail = fail
        self.make_result = make_result
        self.calls = 0
        self.call_log: List[Tuple[str, SweepPoint]] = []
        self._lock = threading.Lock()

    def evaluate(self, graph: PipelineGraph, point: SweepPoint) -> Union[SweepResult, SweepFailure]:
        with self._lock:
            self.calls += 1
            self.call_log.append((graph.name, point))
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        if self.fail is not None and self.fail(graph, point):
            return SweepFailure(
                point=point,
                graph_label=graph.name or "graph",
                attempts=1,
                error_type="RuntimeError",
                error="RuntimeError('injected worker failure')",
            )
        if self.make_result is not None:
            return self.make_result(graph, point)
        return _synthetic_result(graph, point)
