"""End-to-end inference estimates (Figure 8).

The paper integrates the cuSync-synchronized kernels into the full models
and reports the reduction in end-to-end inference time.  A full forward
pass is a repetition of identical blocks (96 transformer layers for GPT-3,
80 for LLaMA, the Table II stages for ResNet/VGG) plus per-layer collective
communication for the model-parallel transformers.  This module therefore
simulates one instance of each distinct block and composes the end-to-end
time analytically:

``total = sum over blocks (simulated block time * block count) + collectives``

Communication time is identical for StreamSync and cuSync (cuSync does not
change the collectives), so it dilutes the relative improvement — exactly
the effect that makes Figure 8's end-to-end percentages smaller than the
per-block percentages of Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.models.attention import Attention
from repro.models.config import (
    GPT3_145B,
    TransformerConfig,
    VisionModelConfig,
)
from repro.models.conv_layers import ConvChain
from repro.models.llama_mlp import LlamaMlp
from repro.models.mlp import GptMlp
from repro.models.workload import Workload
from repro.pipeline import run as run_graph

#: Bytes per fp16 element, used for all-reduce volume estimates.
FP16_BYTES = 2


@dataclass
class InferenceEstimate:
    """End-to-end inference time under each execution scheme."""

    model: str
    streamsync_us: float
    cusync_us: float
    #: Time spent in collectives / non-overlappable glue, common to both.
    common_us: float = 0.0
    per_block_us: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Fractional reduction in inference time (0.1 == 10%)."""
        if self.streamsync_us <= 0:
            return 0.0
        return (self.streamsync_us - self.cusync_us) / self.streamsync_us


def _block_times(workload: Workload, policies: List[str]) -> Dict[str, float]:
    """StreamSync time plus the best cuSync time across policy families.

    The workload's graph is built once and reused for every run — the
    baseline and every policy family re-bind the same kernels (the paper
    reports the best policy per configuration).
    """
    graph = workload.to_graph()
    streamsync = run_graph(
        graph, scheme="streamsync", arch=workload.arch, cost_model=workload.cost_model
    ).total_time_us
    cusync = min(
        run_graph(
            graph,
            scheme="cusync",
            policy=family,
            arch=workload.arch,
            cost_model=workload.cost_model,
        ).total_time_us
        for family in policies
    )
    return {"StreamSync": streamsync, "cuSync": cusync}


class TransformerLayer:
    """One transformer layer: an Attention block plus an MLP block."""

    def __init__(
        self,
        config: TransformerConfig = GPT3_145B,
        batch: int = 1,
        seq: int = 512,
        cached: int = 0,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        tuned: bool = False,
    ) -> None:
        self.config = config
        self.batch = batch
        self.seq = seq
        self.cached = cached
        self.arch = arch
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        #: Resolve MLP tile configs from the committed tuned-config table
        #: (per-arch) instead of the V100-tuned defaults.
        self.tuned = tuned

    # ------------------------------------------------------------------
    def attention(self) -> Attention:
        return Attention(
            config=self.config,
            batch=self.batch,
            seq=self.seq,
            cached=self.cached,
            arch=self.arch,
            cost_model=self.cost_model,
        )

    def mlp(self) -> Workload:
        batch_seq = self.batch * self.seq
        if self.config.swiglu:
            return LlamaMlp(
                config=self.config, batch_seq=batch_seq, arch=self.arch,
                cost_model=self.cost_model, tuned=self.tuned,
            )
        return GptMlp(
            config=self.config, batch_seq=batch_seq, arch=self.arch,
            cost_model=self.cost_model, tuned=self.tuned,
        )

    def allreduce_time_us(self) -> float:
        """Per-layer all-reduce cost of Megatron-style model parallelism.

        Each layer performs two all-reduces over the ``[B*S, H]``
        activations (one after attention, one after the MLP).  A ring
        all-reduce moves ``2 * (p-1)/p`` times the buffer over NVLink.
        """
        nvlink = self.arch.extras.get("nvlink_bandwidth_bytes_us", 150_000.0)
        tokens = self.batch * self.seq
        buffer_bytes = tokens * self.config.hidden * FP16_BYTES
        parallel = self.config.tensor_parallel
        traffic = 2.0 * (parallel - 1) / parallel * buffer_bytes
        latency = 10.0  # per-collective launch/latency floor in µs
        return 2.0 * (traffic / nvlink + latency)

    # ------------------------------------------------------------------
    def estimate(
        self,
        policies: Optional[List[str]] = None,
        attention_policies: Optional[List[str]] = None,
    ) -> InferenceEstimate:
        """Full-model inference estimate for this layer's configuration."""
        policies = policies if policies is not None else ["TileSync", "RowSync"]
        attention_policies = (
            attention_policies
            if attention_policies is not None
            else policies + ["StridedTileSync"]
        )
        attention_times = _block_times(self.attention(), attention_policies)
        mlp_times = _block_times(self.mlp(), policies)

        layers = self.config.layers
        common = self.allreduce_time_us() * layers
        streamsync = (attention_times["StreamSync"] + mlp_times["StreamSync"]) * layers + common
        cusync = (attention_times["cuSync"] + mlp_times["cuSync"]) * layers + common
        return InferenceEstimate(
            model=self.config.name,
            streamsync_us=streamsync,
            cusync_us=cusync,
            common_us=common,
            per_block_us={"attention": attention_times, "mlp": mlp_times},
        )


class VisionModel:
    """A full vision model (ResNet-38 or VGG-19) built from Table II stages."""

    def __init__(
        self,
        config: VisionModelConfig,
        batch: int = 1,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.config = config
        self.batch = batch
        self.arch = arch
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)

    def stage_chain(self, stage_index: int) -> ConvChain:
        spec = self.config.stages[stage_index]
        return ConvChain(
            spec=spec, batch=self.batch, arch=self.arch, cost_model=self.cost_model
        )

    def estimate(self, policies: Optional[List[str]] = None) -> InferenceEstimate:
        """Full-network inference estimate for this batch size."""
        policies = policies if policies is not None else ["RowSync", "Conv2DTileSync"]
        streamsync = 0.0
        cusync = 0.0
        per_block: Dict[str, Dict[str, float]] = {}
        for index, spec in enumerate(self.config.stages):
            times = _block_times(self.stage_chain(index), policies)
            streamsync += times["StreamSync"] * spec.layers
            cusync += times["cuSync"] * spec.layers
            per_block[f"stage{index}_c{spec.channels}"] = times
        return InferenceEstimate(
            model=self.config.name,
            streamsync_us=streamsync,
            cusync_us=cusync,
            per_block_us=per_block,
        )
