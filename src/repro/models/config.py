"""Model configurations: transformer shapes and convolution layer tables.

All shapes are taken directly from the paper: Figure 2 (GPT-3 MLP and
Attention with hidden dimension H = 12288), Figure 3 (LLaMA MLP with
H = 8192 and an H/3 intermediate size), and Table II (the Conv2D layers of
ResNet-38 and VGG-19).  Model parallelism follows Megatron-LM: the weight
matrices of each block are partitioned across ``tensor_parallel`` GPUs, so a
single GPU executes the per-GPU shard shapes shown in the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.validation import check_positive
from repro.errors import ModelConfigError


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of one transformer model under tensor (model) parallelism."""

    name: str
    #: Hidden dimension H.
    hidden: int
    #: Number of transformer layers (each has one Attention and one MLP).
    layers: int
    #: Number of GPUs the weights are partitioned across.
    tensor_parallel: int = 8
    #: MLP intermediate size as a fraction of ``hidden`` *before* splitting
    #: across GPUs (GPT-3 uses 4H, LLaMA uses 8/3 H rounded to H/3 * 8).
    mlp_expansion: float = 4.0
    #: Whether the MLP uses the SwiGLU gate (LLaMA) or GeLU (GPT-3).
    swiglu: bool = False
    #: Maximum number of tokens per request supported by the model.
    max_sequence: int = 2048

    def __post_init__(self) -> None:
        check_positive("hidden", self.hidden)
        check_positive("layers", self.layers)
        check_positive("tensor_parallel", self.tensor_parallel)
        if self.hidden % self.tensor_parallel != 0:
            raise ModelConfigError(
                f"{self.name}: hidden={self.hidden} is not divisible by "
                f"tensor_parallel={self.tensor_parallel}"
            )

    # ------------------------------------------------------------------
    # Per-GPU shard sizes
    # ------------------------------------------------------------------
    @property
    def mlp_intermediate_per_gpu(self) -> int:
        """Columns of the first MLP GeMM on one GPU.

        GPT-3: ``4H / 8``;  LLaMA: ``H/3`` (the paper's Figure 3 shards the
        8/3 H intermediate over 8 GPUs, giving H/3 per GPU).
        """
        if self.swiglu:
            return self.hidden // 3
        return int(self.hidden * self.mlp_expansion) // self.tensor_parallel

    @property
    def attention_qkv_per_gpu(self) -> int:
        """Columns of the fused QKV GeMM on one GPU: ``3H / 8``."""
        return 3 * self.hidden // self.tensor_parallel

    @property
    def attention_head_dim_per_gpu(self) -> int:
        """Per-GPU width of Q, K and V: ``H / 8``."""
        return self.hidden // self.tensor_parallel

    def describe(self) -> str:
        return (
            f"{self.name}: H={self.hidden}, layers={self.layers}, "
            f"TP={self.tensor_parallel}, MLP intermediate/GPU={self.mlp_intermediate_per_gpu}"
        )


#: MegatronLM GPT-3 145B (Figure 2): H = 12288, 96 layers, 8-way parallel.
GPT3_145B = TransformerConfig(
    name="GPT-3 145B",
    hidden=12288,
    layers=96,
    tensor_parallel=8,
    mlp_expansion=4.0,
    swiglu=False,
    max_sequence=2048,
)

#: LLaMA 65.2B (Figure 3): H = 8192, 80 layers, SwiGLU MLP, 8-way parallel.
LLAMA_65B = TransformerConfig(
    name="LLaMA 65B",
    hidden=8192,
    layers=80,
    tensor_parallel=8,
    mlp_expansion=8.0 / 3.0,
    swiglu=True,
    max_sequence=2048,
)


@dataclass(frozen=True)
class ConvLayerSpec:
    """One row of the paper's Table II: a stack of identical Conv2D layers."""

    #: Input/output image height and width (P, Q).
    image: int
    #: Input channels C (equal to output channels K for these layers).
    channels: int
    #: Convolution kernel size (R = S = 3 for every layer in Table II).
    kernel: int
    #: Number of dependent Conv2D operations per layer.
    convs_per_layer: int
    #: Number of layers with this shape in the network.
    layers: int

    def __post_init__(self) -> None:
        check_positive("image", self.image)
        check_positive("channels", self.channels)
        check_positive("convs_per_layer", self.convs_per_layer)
        check_positive("layers", self.layers)


#: ResNet-38 layer table (Table II): 2 convs per layer.
RESNET38_LAYERS: Tuple[ConvLayerSpec, ...] = (
    ConvLayerSpec(image=56, channels=64, kernel=3, convs_per_layer=2, layers=3),
    ConvLayerSpec(image=28, channels=128, kernel=3, convs_per_layer=2, layers=4),
    ConvLayerSpec(image=14, channels=256, kernel=3, convs_per_layer=2, layers=6),
    ConvLayerSpec(image=7, channels=512, kernel=3, convs_per_layer=2, layers=3),
)

#: VGG-19 layer table (Table II): 2 convs for the first two stages, 4 for the
#: deeper stages.
VGG19_LAYERS: Tuple[ConvLayerSpec, ...] = (
    ConvLayerSpec(image=56, channels=64, kernel=3, convs_per_layer=2, layers=1),
    ConvLayerSpec(image=28, channels=128, kernel=3, convs_per_layer=2, layers=1),
    ConvLayerSpec(image=14, channels=256, kernel=3, convs_per_layer=4, layers=1),
    ConvLayerSpec(image=7, channels=512, kernel=3, convs_per_layer=4, layers=1),
)


@dataclass(frozen=True)
class VisionModelConfig:
    """A vision model as a list of conv-layer stacks."""

    name: str
    stages: Tuple[ConvLayerSpec, ...]
    max_batch: int = 32

    def total_conv_layers(self) -> int:
        return sum(spec.layers * spec.convs_per_layer for spec in self.stages)


def resnet38_config() -> VisionModelConfig:
    """ResNet-38 as described in Table II."""
    return VisionModelConfig(name="ResNet-38", stages=RESNET38_LAYERS)


def vgg19_config() -> VisionModelConfig:
    """VGG-19 as described in Table II."""
    return VisionModelConfig(name="VGG-19", stages=VGG19_LAYERS)
