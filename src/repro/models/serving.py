"""Serving-batch workload adapters: KV-cache-shaped attention + MLP graphs.

The serving loop (:mod:`repro.serving`) executes one *iteration* at a
time: a prefill iteration processes the freshly admitted prompts, a
decode iteration advances every running sequence by one token.  Either
way the work on the GPU is the same transformer layer — the fused-QKV
attention block of :mod:`repro.models.attention` followed by the
two-GeMM MLP of :mod:`repro.models.mlp` — only its *shapes* change with
the batch composition:

``rows``
    Total new tokens processed this iteration, flattened into the row
    dimension of every kernel (the sum of admitted prompt lengths for a
    prefill, the number of running sequences for a decode).
``keys``
    Attended key/value positions per query — the KV-cache depth.  A
    prefill attends over the prompt itself; a decode attends over the
    longest sequence's full context (shorter sequences are padded up,
    the usual padded-batch modelling substitution).

Two deliberate differences from :class:`repro.models.attention.Attention`
make these graphs *serving-grade*:

* The Q/K/V slice dependences are expressed as module-level frozen
  dataclasses (:class:`QuerySliceMap` / :class:`KeySliceMap` /
  :class:`ValueSliceMap`) instead of closures, so every serving graph
  has a portable :meth:`~repro.pipeline.graph.PipelineGraph.structural_fingerprint`
  — rebuilt graphs of the same bucketed shape share
  :class:`~repro.pipeline.Session` sweep-cache (and disk-store) entries,
  which is what makes a long serving simulation cheap: only novel batch
  shapes simulate.
* Attention and MLP are fused into **one seven-stage graph** (the MLP's
  first GeMM consumes the attention output through a plain edge), so an
  iteration is a single `Session` evaluation.

:class:`ServingGraphCache` buckets raw batch compositions to a small set
of shapes (rows up to a multiple of ``row_bucket``, keys up to a multiple
of ``kv_bucket``) and memoizes one graph object per bucket — repeated
shapes reuse the same object *and* the same fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.common.validation import check_positive
from repro.gpu.arch import ArchLike, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels.epilogue import GeLU
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem, choose_gemm_config
from repro.kernels.softmax_dropout import SoftmaxDropoutKernel, SoftmaxDropoutProblem
from repro.models.config import GPT3_145B, TransformerConfig
from repro.models.workload import Workload
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec

__all__ = [
    "QuerySliceMap",
    "KeySliceMap",
    "ValueSliceMap",
    "ServingLayer",
    "ServingGraphCache",
    "bucketed",
]


@dataclass(frozen=True)
class QuerySliceMap:
    """XQ is XQKV columns ``[0, H/8)``: identity rows, identity columns."""

    def __call__(self, row_range, col_range, batch):
        return row_range, col_range, 0


@dataclass(frozen=True)
class KeySliceMap:
    """The score GeMM reads ``Kall[k, key]``; the new-token keys live in
    XQKV columns ``[offset, offset + width)``.  Producer rows are covered
    conservatively (all new-token rows), columns map to the XK slice."""

    rows: int
    offset: int

    def __call__(self, row_range, col_range, batch):
        return (
            (0, self.rows),
            (self.offset + row_range[0], self.offset + row_range[1]),
            0,
        )


@dataclass(frozen=True)
class ValueSliceMap:
    """The value GeMM reads ``Vall[key, v]``; the new-token values live in
    XQKV columns ``[offset, offset + width)``."""

    rows: int
    offset: int

    def __call__(self, row_range, col_range, batch):
        return (
            (0, self.rows),
            (self.offset + col_range[0], self.offset + col_range[1]),
            0,
        )


def bucketed(value: int, bucket: int) -> int:
    """``value`` rounded up to a multiple of ``bucket`` (minimum one bucket)."""
    check_positive("bucket", bucket)
    check_positive("value", value)
    return ((value + bucket - 1) // bucket) * bucket


class ServingLayer(Workload):
    """One transformer layer shaped by a serving batch composition.

    Seven dependent kernels — the five attention kernels of Figure 2b
    followed by the two MLP GeMMs of Figure 2a — parameterized by the
    iteration's flattened token rows and attended KV depth.  The MLP
    always uses the GPT-3 two-GeMM + GeLU form (the serving story is
    about batch shapes, not gate variants).
    """

    def __init__(
        self,
        config: TransformerConfig = GPT3_145B,
        rows: int = 64,
        keys: int = 64,
        arch: ArchLike = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        gemm_configs: Optional[Mapping[str, GemmConfig]] = None,
        tuned: bool = False,
    ) -> None:
        super().__init__(arch=arch, cost_model=cost_model, functional=False)
        check_positive("rows", rows)
        check_positive("keys", keys)
        self.config = config
        self.rows = rows
        self.keys = keys
        self.seed = seed
        self.tuned = tuned
        if gemm_configs is None and tuned:
            from repro.tune.table import tuned_gemm_configs

            # Serving shapes vary per bucket, so the table keys per model
            # config (not per shape): one stage→config map applies to
            # every bucketed graph of this layer.
            gemm_configs = tuned_gemm_configs(self.workload_key, self.arch)
        self.gemm_configs = dict(gemm_configs) if gemm_configs else None

    @property
    def name(self) -> str:
        return f"{self.config.name} serving layer (rows={self.rows}, keys={self.keys})"

    @property
    def workload_key(self) -> str:
        """The tuned-config table key (shape-independent, unlike the
        graph name — tuned serving tiles apply to every bucket)."""
        return f"serving_{self.config.name}"

    @property
    def width(self) -> int:
        """Per-GPU width of Q, K and V: ``H / tensor_parallel``."""
        return self.config.attention_head_dim_per_gpu

    # ------------------------------------------------------------------
    def to_graph(self) -> PipelineGraph:
        hidden = self.config.hidden
        intermediate = self.config.mlp_intermediate_per_gpu
        width = self.width
        rows, keys = self.rows, self.keys

        def gemm(name: str, problem: GemmProblem, **kwargs) -> GemmKernel:
            tuned_config = (self.gemm_configs or {}).get(name)
            return GemmKernel(
                name,
                problem,
                config=tuned_config
                if tuned_config is not None
                else choose_gemm_config(problem, self.arch),
                cost_model=self.cost_model,
                **kwargs,
            )

        qkv = gemm(
            "srv_qkv", GemmProblem(m=rows, n=3 * width, k=hidden, a="X", b="WQKV", c="XQKV")
        )
        scores = gemm(
            "srv_scores",
            GemmProblem(m=rows, n=keys, k=width, a="XQ", b="Kall", c="P"),
            sync_inputs=("XQ", "Kall"),
        )
        softmax = SoftmaxDropoutKernel(
            "srv_softmax",
            SoftmaxDropoutProblem(
                rows=rows, row_length=keys, input="P", output="R",
                dropout_probability=0.0, seed=self.seed,
            ),
            sync_inputs=("P",),
            cost_model=self.cost_model,
        )
        values = gemm(
            "srv_values",
            GemmProblem(m=rows, n=width, k=keys, a="R", b="Vall", c="T"),
            sync_inputs=("R", "Vall"),
        )
        attn_out = gemm(
            "srv_attn_out",
            GemmProblem(m=rows, n=hidden, k=width, a="T", b="WO", c="XW12"),
            sync_inputs=("T",),
        )
        mlp1 = gemm(
            "srv_mlp1",
            GemmProblem(m=rows, n=intermediate, k=hidden, a="XW12", b="W1", c="XW1"),
            sync_inputs=("XW12",),
            epilogue=GeLU(),
        )
        mlp2 = gemm(
            "srv_mlp2",
            GemmProblem(m=rows, n=hidden, k=intermediate, a="XW1", b="W2", c="Y"),
            sync_inputs=("XW1",),
        )

        return PipelineGraph(
            stages=[
                StageSpec(name="srv_qkv", kernel=qkv, strided_groups=3),
                StageSpec(name="srv_scores", kernel=scores),
                StageSpec(name="srv_softmax", kernel=softmax),
                StageSpec(name="srv_values", kernel=values),
                StageSpec(name="srv_attn_out", kernel=attn_out),
                StageSpec(name="srv_mlp1", kernel=mlp1),
                StageSpec(name="srv_mlp2", kernel=mlp2),
            ],
            edges=[
                Edge("srv_qkv", "srv_scores", tensor="XQ", range_map=QuerySliceMap()),
                Edge(
                    "srv_qkv", "srv_scores", tensor="Kall",
                    range_map=KeySliceMap(rows=rows, offset=2 * width),
                ),
                Edge("srv_scores", "srv_softmax", tensor="P"),
                Edge("srv_softmax", "srv_values", tensor="R"),
                Edge(
                    "srv_qkv", "srv_values", tensor="Vall",
                    range_map=ValueSliceMap(rows=rows, offset=width),
                ),
                Edge("srv_values", "srv_attn_out", tensor="T"),
                Edge("srv_attn_out", "srv_mlp1", tensor="XW12"),
                Edge("srv_mlp1", "srv_mlp2", tensor="XW1"),
            ],
            name=f"serving_{self.config.name}_r{rows}_k{keys}",
        )


class ServingGraphCache:
    """Memoized serving-layer graphs keyed by bucketed batch shape.

    Bucketing trades a little padded work for a lot of shape reuse: a
    serving run whose batch compositions wander over hundreds of raw
    ``(rows, keys)`` pairs collapses onto a handful of graph objects, and
    because every graph carries a structural fingerprint, a
    :class:`~repro.pipeline.Session` replays repeated buckets from its
    sweep cache instead of re-simulating them.
    """

    def __init__(
        self,
        config: TransformerConfig = GPT3_145B,
        arch: ArchLike = TESLA_V100,
        row_bucket: int = 8,
        kv_bucket: int = 64,
        tuned: bool = False,
    ) -> None:
        check_positive("row_bucket", row_bucket)
        check_positive("kv_bucket", kv_bucket)
        self.config = config
        self.arch = arch
        self.row_bucket = row_bucket
        self.kv_bucket = kv_bucket
        self.tuned = tuned
        self._graphs: Dict[Tuple[int, int], PipelineGraph] = {}
        #: How many ``graph_for`` calls built a fresh graph vs reused one.
        self.builds = 0
        self.reuses = 0

    def bucket_of(self, rows: int, keys: int) -> Tuple[int, int]:
        """The bucketed ``(rows, keys)`` shape a raw composition lands in."""
        return (bucketed(rows, self.row_bucket), bucketed(keys, self.kv_bucket))

    def graph_for(self, rows: int, keys: int) -> PipelineGraph:
        """The memoized graph for the bucketed shape of ``(rows, keys)``."""
        key = self.bucket_of(rows, keys)
        graph = self._graphs.get(key)
        if graph is None:
            self.builds += 1
            graph = ServingLayer(
                config=self.config, rows=key[0], keys=key[1], arch=self.arch,
                tuned=self.tuned,
            ).to_graph()
            self._graphs[key] = graph
        else:
            self.reuses += 1
        return graph

    @property
    def distinct_shapes(self) -> int:
        return len(self._graphs)
