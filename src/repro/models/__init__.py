"""ML-model workloads used in the paper's evaluation (Section V).

The paper evaluates cuSync on four models, all running inference with
8-way model parallelism on V100 GPUs:

* **MegatronLM GPT-3 145B** — transformer with hidden dimension 12288;
  MLP (two GeMMs + fused GeLU, Figure 2a) and Attention (fused QKV GeMM,
  cached attention, fused Softmax-Dropout, output GeMM, Figure 2b).
* **LLaMA 65.2B** — hidden dimension 8192; MLP with three GeMMs and a
  SwiGLU gate (Figure 3), same Attention structure as GPT-3.
* **ResNet-38** and **VGG-19** — chains of 3x3 Conv2D layers with the
  shapes of Table II.

Each module describes the kernels of one block and their dependence
structure **once**, as an immutable
:class:`~repro.pipeline.PipelineGraph` (``workload.to_graph()``); the
benchmark harness runs that same graph under cuSync, StreamSync and
Stream-K through :mod:`repro.pipeline`, comparing all three on identical
problems without rebuilding a kernel.
"""

from repro.models.config import (
    TransformerConfig,
    GPT3_145B,
    LLAMA_65B,
    ConvLayerSpec,
    RESNET38_LAYERS,
    VGG19_LAYERS,
    resnet38_config,
    vgg19_config,
)
from repro.models.mlp import GptMlp, gpt3_mlp_gemm_configs
from repro.models.llama_mlp import LlamaMlp
from repro.models.attention import Attention
from repro.models.conv_layers import ConvChain
from repro.models.inference import TransformerLayer, VisionModel, InferenceEstimate
from repro.models.serving import ServingGraphCache, ServingLayer

__all__ = [
    "TransformerConfig",
    "GPT3_145B",
    "LLAMA_65B",
    "ConvLayerSpec",
    "RESNET38_LAYERS",
    "VGG19_LAYERS",
    "resnet38_config",
    "vgg19_config",
    "GptMlp",
    "gpt3_mlp_gemm_configs",
    "LlamaMlp",
    "Attention",
    "ConvChain",
    "TransformerLayer",
    "VisionModel",
    "InferenceEstimate",
    "ServingGraphCache",
    "ServingLayer",
]
