"""LLaMA's MLP block (Figure 3).

Per GPU, LLaMA's MLP has three weight matrices; state-of-the-art
implementations (which the paper follows) combine the first two GeMMs into
one and fuse the SwiGLU gate into the third::

    XW1V  = X @ [W1 | V]                    # [B*S, H] x [H, 2*H/3]
    XW12  = (Swish(XW1) * XV) @ W2          # SwiGLU fused into the GeMM

where ``XW1 = XW1V[:, :H/3]`` and ``XV = XW1V[:, H/3:]``.  The second kernel
therefore depends on *two* column slices of the first kernel's output; this
reproduction expresses that dependence conservatively as the column range
spanning both slices (the paper's DSL would generate a strided dependence),
which slightly over-synchronizes TileSync but leaves RowSync — the policy
that wins at these sizes — unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.validation import check_positive
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem, choose_gemm_config
from repro.models.config import LLAMA_65B, TransformerConfig
from repro.models.workload import Workload, _resolve_tuned_pair
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec


def _swish(values: np.ndarray) -> np.ndarray:
    return values / (1.0 + np.exp(-values))


class LlamaMlp(Workload):
    """LLaMA's combined-GeMM + SwiGLU-fused-GeMM MLP on one GPU."""

    def __init__(
        self,
        config: TransformerConfig = LLAMA_65B,
        batch_seq: int = 512,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
        gemm_configs: Optional[Tuple[GemmConfig, GemmConfig]] = None,
        seed: int = 0,
        tuned: bool = False,
    ) -> None:
        super().__init__(arch=arch, cost_model=cost_model, functional=functional)
        check_positive("batch_seq", batch_seq)
        self.config = config
        self.batch_seq = batch_seq
        self.seed = seed
        self.tuned = tuned
        if gemm_configs is None and tuned and not functional:
            gemm_configs = _resolve_tuned_pair(
                self.workload_key, arch, "llama_gemm1", "llama_gemm2"
            )
        self.gemm_configs = gemm_configs

    @property
    def name(self) -> str:
        return f"{self.config.name} MLP (BxS={self.batch_seq})"

    @property
    def workload_key(self) -> str:
        """The tuned-config table key — also :meth:`to_graph`'s name."""
        return f"llama_mlp_{self.config.name}_b{self.batch_seq}"

    @property
    def intermediate(self) -> int:
        """Per-GPU intermediate width H/3 (Figure 3)."""
        return self.config.mlp_intermediate_per_gpu

    # ------------------------------------------------------------------
    def problems(self) -> Tuple[GemmProblem, GemmProblem]:
        hidden = self.config.hidden
        inner = self.intermediate
        combined = GemmProblem(m=self.batch_seq, n=2 * inner, k=hidden, a="X", b="W1V", c="XW1V")
        gated = GemmProblem(m=self.batch_seq, n=hidden, k=inner, a="XW1V", b="W2", c="XW12")
        return combined, gated

    def _swiglu_transform(self):
        """Element-wise ``Swish(XW1) * XV`` applied to the A operand."""
        inner = self.intermediate

        def transform(values, memory, rows, k_range, batch):
            gated = _swish(values)
            tensor_name = "XW1V"
            if memory is not None and memory.has_tensor(tensor_name):
                full = memory.tensor(tensor_name)
                gate = full[rows[0]:rows[1], inner + k_range[0]:inner + k_range[1]]
                return gated * gate
            return gated

        return transform

    def to_graph(self) -> PipelineGraph:
        combined, gated = self.problems()
        if self.gemm_configs is not None:
            config1, config2 = self.gemm_configs
        else:
            config1 = choose_gemm_config(combined, self.arch)
            config2 = choose_gemm_config(gated, self.arch)
            if self.functional:
                config1 = GemmConfig(config1.tile_m, config1.tile_n, config1.tile_k, 1)
                config2 = GemmConfig(config2.tile_m, config2.tile_n, config2.tile_k, 1)

        producer = GemmKernel(
            "llama_gemm1",
            combined,
            config=config1,
            cost_model=self.cost_model,
            functional=self.functional,
        )
        consumer = GemmKernel(
            "llama_gemm2",
            gated,
            config=config2,
            sync_inputs=("XW1V",),
            a_transform=self._swiglu_transform(),
            a_transform_flops=6.0,
            cost_model=self.cost_model,
            functional=self.functional,
        )

        inner = self.intermediate

        def swiglu_range_map(rows, cols, batch):
            # The consumer reads XW1 columns [c0, c1) *and* XV columns
            # [c0 + inner, c1 + inner); cover both with one span.
            return rows, (cols[0], cols[1] + inner), batch

        return PipelineGraph(
            stages=[
                StageSpec(name="llama_gemm1", kernel=producer, strided_groups=2),
                StageSpec(name="llama_gemm2", kernel=consumer),
            ],
            edges=[
                Edge(
                    producer="llama_gemm1",
                    consumer="llama_gemm2",
                    tensor="XW1V",
                    range_map=swiglu_range_map,
                )
            ],
            name=self.workload_key,
        )

    def input_tensors(self, rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        hidden = self.config.hidden
        inner = self.intermediate
        scale = 1.0 / np.sqrt(hidden)
        return {
            "X": rng.standard_normal((self.batch_seq, hidden)).astype(np.float32),
            "W1V": (rng.standard_normal((hidden, 2 * inner)) * scale).astype(np.float32),
            "W2": (rng.standard_normal((inner, hidden)) * scale).astype(np.float32),
        }

    def reference_output(self) -> np.ndarray:
        """Numpy reference of ``XW12`` for functional tests."""
        tensors = self.input_tensors()
        combined = tensors["X"] @ tensors["W1V"]
        inner = self.intermediate
        swiglu = _swish(combined[:, :inner]) * combined[:, inner:]
        return swiglu @ tensors["W2"]
