"""GPT-3's Multi-Layer Perceptron block (Figure 2a).

Per GPU (8-way model parallelism), the MLP is two dependent GeMMs::

    XW1  = GeLU(X @ W1)     # [B*S, H] x [H, 4H/8]   (GeLU fused)
    XW12 = XW1 @ W2         # [B*S, 4H/8] x [4H/8, H]

The second GeMM consumes every column tile of an output row of the first
GeMM, which is the canonical cuSync example the paper uses throughout
(Figures 1, 4 and 5a, Tables I and IV).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.validation import check_positive
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels.epilogue import GeLU
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem, choose_gemm_config
from repro.models.config import GPT3_145B, TransformerConfig
from repro.models.workload import Workload, _resolve_tuned_pair
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec


def gpt3_mlp_gemm_configs(batch_seq: int) -> Tuple[GemmConfig, GemmConfig]:
    """Tile configurations matching the grids the paper reports in Table IV.

    These presets apply to GPT-3's shapes (H = 12288, intermediate 6144 per
    GPU); other shapes fall back to :func:`choose_gemm_config`.
    """
    if batch_seq <= 64:
        return (
            GemmConfig(tile_m=64, tile_n=256, tile_k=32, split_k=4),
            GemmConfig(tile_m=64, tile_n=256, tile_k=32, split_k=3),
        )
    if batch_seq <= 128:
        return (
            GemmConfig(tile_m=128, tile_n=256, tile_k=32, split_k=3),
            GemmConfig(tile_m=128, tile_n=256, tile_k=32, split_k=3),
        )
    if batch_seq <= 256:
        return (
            GemmConfig(tile_m=256, tile_n=128, tile_k=32, split_k=4),
            GemmConfig(tile_m=256, tile_n=128, tile_k=32, split_k=2),
        )
    if batch_seq <= 1024:
        return (
            GemmConfig(tile_m=256, tile_n=256, tile_k=32, split_k=2),
            GemmConfig(tile_m=256, tile_n=256, tile_k=32, split_k=1),
        )
    return (
        GemmConfig(tile_m=256, tile_n=256, tile_k=32, split_k=1),
        GemmConfig(tile_m=256, tile_n=256, tile_k=32, split_k=1),
    )


class GptMlp(Workload):
    """The two dependent GeMMs of a GPT-3 style MLP on one GPU."""

    def __init__(
        self,
        config: TransformerConfig = GPT3_145B,
        batch_seq: int = 512,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
        gemm_configs: Optional[Tuple[GemmConfig, GemmConfig]] = None,
        seed: int = 0,
        tuned: bool = False,
    ) -> None:
        super().__init__(arch=arch, cost_model=cost_model, functional=functional)
        check_positive("batch_seq", batch_seq)
        self.config = config
        self.batch_seq = batch_seq
        self.seed = seed
        self.tuned = tuned
        if gemm_configs is None and tuned and not functional:
            gemm_configs = _resolve_tuned_pair(
                self.workload_key, arch, "mlp_gemm1", "mlp_gemm2"
            )
        if gemm_configs is not None:
            self.gemm_configs = gemm_configs
        elif config.hidden == GPT3_145B.hidden and not functional:
            self.gemm_configs = gpt3_mlp_gemm_configs(batch_seq)
        else:
            self.gemm_configs = None  # chosen per problem below

    @property
    def name(self) -> str:
        return f"{self.config.name} MLP (BxS={self.batch_seq})"

    @property
    def workload_key(self) -> str:
        """The tuned-config table key — also :meth:`to_graph`'s name."""
        return f"mlp_{self.config.name}_b{self.batch_seq}"

    # ------------------------------------------------------------------
    def problems(self) -> Tuple[GemmProblem, GemmProblem]:
        hidden = self.config.hidden
        intermediate = self.config.mlp_intermediate_per_gpu
        first = GemmProblem(m=self.batch_seq, n=intermediate, k=hidden, a="X", b="W1", c="XW1")
        second = GemmProblem(m=self.batch_seq, n=hidden, k=intermediate, a="XW1", b="W2", c="XW12")
        return first, second

    def to_graph(self) -> PipelineGraph:
        first, second = self.problems()
        if self.gemm_configs is not None:
            config1, config2 = self.gemm_configs
        else:
            config1 = choose_gemm_config(first, self.arch)
            config2 = choose_gemm_config(second, self.arch)
            if self.functional:
                # Fused epilogues require split_k == 1 in functional mode.
                config1 = GemmConfig(config1.tile_m, config1.tile_n, config1.tile_k, 1)
                config2 = GemmConfig(config2.tile_m, config2.tile_n, config2.tile_k, 1)
        producer = GemmKernel(
            "mlp_gemm1",
            first,
            config=config1,
            epilogue=GeLU(),
            cost_model=self.cost_model,
            functional=self.functional,
        )
        consumer = GemmKernel(
            "mlp_gemm2",
            second,
            config=config2,
            sync_inputs=("XW1",),
            cost_model=self.cost_model,
            functional=self.functional,
        )
        return PipelineGraph(
            stages=[
                StageSpec(name="mlp_gemm1", kernel=producer),
                StageSpec(name="mlp_gemm2", kernel=consumer),
            ],
            edges=[Edge(producer="mlp_gemm1", consumer="mlp_gemm2", tensor="XW1")],
            name=self.workload_key,
        )

    def input_tensors(self, rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        hidden = self.config.hidden
        intermediate = self.config.mlp_intermediate_per_gpu
        scale = 1.0 / np.sqrt(hidden)
        return {
            "X": rng.standard_normal((self.batch_seq, hidden)).astype(np.float32),
            "W1": (rng.standard_normal((hidden, intermediate)) * scale).astype(np.float32),
            "W2": (rng.standard_normal((intermediate, hidden)) * scale).astype(np.float32),
        }

    def reference_output(self) -> np.ndarray:
        """Numpy reference for the functional result ``XW12``."""
        tensors = self.input_tensors()
        hidden_activation = GeLU().apply(tensors["X"] @ tensors["W1"])
        return hidden_activation @ tensors["W2"]
