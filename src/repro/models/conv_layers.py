"""Chains of dependent Conv2D kernels (ResNet-38 / VGG-19 layers, Table II).

Every layer of the paper's vision models performs 2 (ResNet) or 4 (deep VGG
stages) dependent 3x3 same-padded convolutions with equal input and output
channels.  cuSync synchronizes all Conv2Ds of a layer (Section V-F); this
module builds that chain for a given layer specification and batch size.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.validation import check_positive
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels.conv2d import Conv2dConfig, Conv2dKernel, Conv2dProblem, choose_conv2d_config
from repro.kernels.epilogue import ReLU
from repro.models.config import ConvLayerSpec
from repro.models.workload import Workload
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec


class ConvChain(Workload):
    """``convs`` dependent Conv2D kernels over one activation tensor."""

    def __init__(
        self,
        spec: ConvLayerSpec,
        batch: int = 1,
        convs: Optional[int] = None,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
        config: Optional[Conv2dConfig] = None,
        fuse_relu: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(arch=arch, cost_model=cost_model, functional=functional)
        check_positive("batch", batch)
        self.spec = spec
        self.batch = batch
        self.convs = convs if convs is not None else spec.convs_per_layer
        check_positive("convs", self.convs)
        self.config = config
        self.fuse_relu = fuse_relu
        self.seed = seed

    @property
    def name(self) -> str:
        return (
            f"{self.convs}x Conv2D {self.spec.image}x{self.spec.image}x{self.spec.channels} "
            f"(batch={self.batch})"
        )

    # ------------------------------------------------------------------
    def problem(self, index: int) -> Conv2dProblem:
        spec = self.spec
        return Conv2dProblem(
            batch=self.batch,
            height=spec.image,
            width=spec.image,
            in_channels=spec.channels,
            out_channels=spec.channels,
            kernel_r=spec.kernel,
            kernel_s=spec.kernel,
            input=f"act{index}",
            weight=f"filter{index}",
            output=f"act{index + 1}",
        )

    def to_graph(self) -> PipelineGraph:
        stages: List[StageSpec] = []
        edges: List[Edge] = []
        for index in range(self.convs):
            problem = self.problem(index)
            config = self.config if self.config is not None else choose_conv2d_config(problem)
            kernel = Conv2dKernel(
                f"conv{index}",
                problem,
                config=config,
                epilogue=ReLU() if self.fuse_relu else None,
                sync_inputs=(problem.input,) if index > 0 else (),
                cost_model=self.cost_model,
                functional=self.functional,
            )
            stages.append(StageSpec(name=kernel.name, kernel=kernel))
            if index > 0:
                edges.append(
                    Edge(producer=f"conv{index - 1}", consumer=f"conv{index}", tensor=problem.input)
                )
        return PipelineGraph(
            stages=stages,
            edges=edges,
            name=f"conv_chain_c{self.spec.channels}x{self.convs}_b{self.batch}",
        )

    # ------------------------------------------------------------------
    def input_tensors(self, rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        spec = self.spec
        taps = spec.kernel * spec.kernel
        scale = 1.0 / np.sqrt(spec.channels * taps)
        tensors: Dict[str, np.ndarray] = {
            "act0": rng.standard_normal(
                (self.batch, spec.image, spec.image, spec.channels)
            ).astype(np.float32),
        }
        for index in range(self.convs):
            tensors[f"filter{index}"] = (
                rng.standard_normal((spec.kernel, spec.kernel, spec.channels, spec.channels)) * scale
            ).astype(np.float32)
        return tensors

    def reference_output(self) -> np.ndarray:
        """Direct-convolution reference for the chain's final activation."""
        tensors = self.input_tensors()
        activation = tensors["act0"]
        spec = self.spec
        pad = spec.kernel // 2
        for index in range(self.convs):
            weight = tensors[f"filter{index}"]
            padded = np.pad(activation, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
            result = np.zeros_like(activation)
            for dr in range(spec.kernel):
                for ds in range(spec.kernel):
                    window = padded[:, dr:dr + spec.image, ds:ds + spec.image, :]
                    result += np.einsum("bijc,ck->bijk", window, weight[dr, ds])
            activation = np.maximum(result, 0.0) if self.fuse_relu else result
        return activation
