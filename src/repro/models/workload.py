"""Common machinery for model workloads.

A *workload* is a short chain of dependent kernels (an MLP, an attention
block, a pair of Conv2Ds...).  Each workload describes its kernels and
dependence structure **once**, as an immutable
:class:`~repro.pipeline.graph.PipelineGraph` (:meth:`Workload.to_graph`);
execution — under StreamSync, Stream-K or a cuSync policy family — is the
job of :mod:`repro.pipeline`, whose backends bind per-run synchronization
state to the graph's kernels without ever rebuilding them.

The historical entry points (:meth:`build`, :meth:`run_streamsync`,
:meth:`run_streamk`, :meth:`run_cusync`) are kept as thin shims delegating
to the new API; new code should call ``workload.to_graph()`` once and run
the graph through :func:`repro.pipeline.run` or a
:class:`~repro.pipeline.session.Session`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.gpu.arch import ArchLike, GpuArchitecture, TESLA_V100, resolve_arch
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.kernels.base import TiledKernel
from repro.cusync.custage import RangeMap
from repro.cusync.handle import PipelineResult
from repro.cusync.optimizations import OptimizationFlags
from repro.cusync.policies import SyncPolicy
from repro.cusync.tile_orders import TileOrder
from repro.pipeline import graph as pipeline_graph
from repro.pipeline.executors import resolve_order, resolve_policy
from repro.pipeline.session import run as run_graph

#: Re-exported from :mod:`repro.pipeline.executors` for backward
#: compatibility: a policy family name, PolicySpec, per-edge
#: PolicyAssignment, or an explicit per-stage list.
from repro.pipeline.executors import PolicyLike  # noqa: F401  (public API)
from repro.cusync.policies import PolicyAssignment, PolicySpec  # noqa: F401  (public API)


@dataclass
class DependencySpec:
    """One producer → consumer edge inside a workload (legacy description)."""

    producer_index: int
    tensor: str
    range_map: Optional[RangeMap] = None


@dataclass
class KernelSpec:
    """One kernel of a workload plus its dependence metadata (legacy).

    New code should construct :class:`~repro.pipeline.graph.StageSpec` /
    :class:`~repro.pipeline.graph.Edge` objects directly; this class is the
    index-based form older call sites (and :meth:`Workload.build`) use.
    """

    kernel: TiledKernel
    dependencies: List[DependencySpec] = field(default_factory=list)
    #: When the workload is run under the ``StridedTileSync`` policy, this
    #: stage's semaphores group ``strided_groups`` column tiles together
    #: (the Q/K/V slices of the fused attention GeMM).
    strided_groups: Optional[int] = None


def _stage_of(spec: KernelSpec) -> pipeline_graph.StageSpec:
    return pipeline_graph.StageSpec(
        name=spec.kernel.name, kernel=spec.kernel, strided_groups=spec.strided_groups
    )


def make_policy(name: str, spec: KernelSpec) -> SyncPolicy:
    """Build the policy instance a named policy family uses for one stage.

    Legacy shim over :func:`repro.pipeline.executors.resolve_policy`.
    """
    return resolve_policy(name, _stage_of(spec))


def make_order(name: str, spec: KernelSpec) -> TileOrder:
    """Tile processing order paired with a policy family (legacy shim)."""
    return resolve_order(name, _stage_of(spec))


def _resolve_tuned_pair(workload_key: str, arch: ArchLike, stage1: str, stage2: str):
    """Resolve a two-GeMM workload's tuned tile pair, or ``None``.

    Shared by the MLP constructors' ``tuned=True`` paths: looks
    ``workload_key`` up in the committed tuned-config table
    (:func:`repro.tune.table.tuned_gemm_configs`, imported lazily —
    models must stay importable without the tune package loaded) and
    returns ``(config1, config2)`` when the entry covers both stages.
    ``None`` means "use the workload's defaults": no entry (explicit
    V100 fallback, warned once per (workload, arch) off-V100), or the
    default tile won the search.
    """
    from repro.tune.table import tuned_gemm_configs

    configs = tuned_gemm_configs(workload_key, arch)
    if configs is None:
        return None
    first, second = configs.get(stage1), configs.get(stage2)
    if first is None or second is None:
        return None
    return (first, second)


class Workload(ABC):
    """A chain of dependent kernels, described once and run under any scheme."""

    def __init__(
        self,
        arch: ArchLike = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        #: Always a resolved instance: registered names and
        #: :class:`~repro.gpu.arch.ArchSpec` values are accepted too.
        self.arch = resolve_arch(arch)
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=self.arch)
        self.functional = functional

    # ------------------------------------------------------------------
    # Subclass responsibility: the graph description
    # ------------------------------------------------------------------
    @abstractmethod
    def to_graph(self) -> pipeline_graph.PipelineGraph:
        """Create the workload's pipeline graph (fresh kernels).

        The returned graph is immutable and reusable: run it as many times
        as needed, under every scheme, policy and architecture — kernels
        are bound per execution, never rebuilt.
        """

    def input_tensors(self, rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        """Input arrays for functional simulation (weights, activations)."""
        return {}

    @property
    def name(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------
    # Legacy index-based description (shim over the graph)
    # ------------------------------------------------------------------
    def build(self) -> List[KernelSpec]:
        """Create fresh kernels plus their dependence structure.

        .. deprecated:: use :meth:`to_graph`; this adapter re-derives the
           index-based :class:`KernelSpec` list from the graph for older
           call sites.
        """
        graph = self.to_graph()
        order = list(graph.topological_order)
        index_of = {stage.name: index for index, stage in enumerate(order)}
        specs: List[KernelSpec] = []
        for stage in order:
            dependencies = [
                DependencySpec(
                    producer_index=index_of[edge.producer],
                    tensor=edge.tensor,
                    range_map=edge.range_map,
                )
                for edge in graph.in_edges(stage.name)
            ]
            specs.append(
                KernelSpec(
                    kernel=stage.kernel,
                    dependencies=dependencies,
                    strided_groups=stage.strided_groups,
                )
            )
        return specs

    # ------------------------------------------------------------------
    # Execution under the three schemes (shims over repro.pipeline.run)
    # ------------------------------------------------------------------
    def _run(
        self,
        scheme: str,
        policy: PolicyLike = "TileSync",
        optimizations: Optional[OptimizationFlags] = None,
        memory: Optional[GlobalMemory] = None,
        graph: Optional[pipeline_graph.PipelineGraph] = None,
    ) -> PipelineResult:
        graph = graph if graph is not None else self.to_graph()
        return run_graph(
            graph,
            scheme=scheme,
            policy=policy,
            optimizations=optimizations,
            arch=self.arch,
            cost_model=self.cost_model,
            functional=self.functional and scheme != "streamk",
            memory=memory,
            tensors=self.input_tensors() if self.functional and scheme != "streamk" else None,
        )

    def run_streamsync(self, memory: Optional[GlobalMemory] = None) -> PipelineResult:
        """Execute with CUDA stream synchronization (the baseline).

        .. deprecated:: build the graph once with :meth:`to_graph` and call
           ``repro.pipeline.run(graph, scheme="streamsync", ...)``.
        """
        return self._run("streamsync", memory=memory)

    def run_streamk(self, memory: Optional[GlobalMemory] = None) -> PipelineResult:
        """Execute with Stream-K GeMMs under stream synchronization.

        .. deprecated:: use ``repro.pipeline.run(graph, scheme="streamk")``.
        """
        return self._run("streamk", memory=memory)

    def run_cusync(
        self,
        policy: PolicyLike = "TileSync",
        optimizations: Optional[OptimizationFlags] = None,
        memory: Optional[GlobalMemory] = None,
    ) -> PipelineResult:
        """Execute with a cuSync pipeline under the chosen policy family.

        ``optimizations=None`` applies the paper's automatic W/R/T choice
        (Section IV-C), derived per dependency edge from the actual
        producer and consumer kernels.

        .. deprecated:: use ``repro.pipeline.run(graph, scheme="cusync",
           policy=..., ...)``.
        """
        return self._run("cusync", policy=policy, optimizations=optimizations, memory=memory)

    def _auto_flags(self, specs: List[KernelSpec]) -> Dict[str, OptimizationFlags]:
        """Per-stage automatic W/R/T flags for a legacy spec list.

        Flags are computed per dependency edge from the actual producer and
        consumer kernels (Section IV-C) and combined per stage; see
        :func:`repro.pipeline.executors.auto_flags`.
        """
        from repro.pipeline.executors import auto_flags

        stages = [_stage_of(spec) for spec in specs]
        edges = [
            pipeline_graph.Edge(
                producer=specs[dependency.producer_index].kernel.name,
                consumer=spec.kernel.name,
                tensor=dependency.tensor,
                range_map=dependency.range_map,
            )
            for spec in specs
            for dependency in spec.dependencies
        ]
        graph = pipeline_graph.PipelineGraph(stages=stages, edges=edges)
        for stage in stages:
            stage.kernel.cost_model = self.cost_model
        return auto_flags(graph, self.arch)

    # ------------------------------------------------------------------
    # Convenience for benchmarks
    # ------------------------------------------------------------------
    def improvement_over_streamsync(
        self, policy: PolicyLike = "TileSync", optimizations: Optional[OptimizationFlags] = None
    ) -> float:
        """Fractional improvement of cuSync over StreamSync (0.1 == 10%)."""
        graph = self.to_graph()
        baseline = self._run("streamsync", graph=graph).total_time_us
        synced = self._run(
            "cusync", policy=policy, optimizations=optimizations, graph=graph
        ).total_time_us
        return (baseline - synced) / baseline

    def best_policy(
        self, policies: Optional[List[str]] = None
    ) -> Dict[str, float]:
        """Run every policy family and report times (plus the baselines)."""
        policies = policies if policies is not None else ["TileSync", "RowSync"]
        graph = self.to_graph()
        results = {"StreamSync": self._run("streamsync", graph=graph).total_time_us}
        for family in policies:
            results[family] = self._run("cusync", policy=family, graph=graph).total_time_us
        return results
