"""Common machinery for model workloads.

A *workload* is a short chain of dependent kernels (an MLP, an attention
block, a pair of Conv2Ds...).  Every workload can be executed three ways —
StreamSync, Stream-K, or a cuSync pipeline under a chosen policy — on
identical kernels, which is what the evaluation harness compares.

Subclasses implement :meth:`build`, returning fresh kernels plus their
dependence structure; the runners here assemble the executors.  Kernels are
rebuilt for every run because executors attach synchronization state to
them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.errors import ModelConfigError
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import GlobalMemory
from repro.kernels.base import TiledKernel
from repro.kernels.gemm import GemmKernel
from repro.baselines.streamsync import StreamSyncExecutor
from repro.baselines.streamk import StreamKExecutor
from repro.cusync.custage import RangeMap
from repro.cusync.handle import CuSyncPipeline, PipelineResult
from repro.cusync.optimizations import OptimizationFlags, auto_optimizations
from repro.cusync.policies import Conv2DTileSync, RowSync, StridedSync, SyncPolicy, TileSync
from repro.cusync.tile_orders import GroupedColumnsOrder, RowMajorOrder, TileOrder

#: Policy selector: either a policy name understood by :func:`make_policy`
#: or an explicit per-stage list of policy instances.
PolicySpec = Union[str, List[SyncPolicy]]


@dataclass
class DependencySpec:
    """One producer → consumer edge inside a workload."""

    producer_index: int
    tensor: str
    range_map: Optional[RangeMap] = None


@dataclass
class KernelSpec:
    """One kernel of a workload plus its dependence metadata."""

    kernel: TiledKernel
    dependencies: List[DependencySpec] = field(default_factory=list)
    #: When the workload is run under the ``StridedTileSync`` policy, this
    #: stage's semaphores group ``strided_groups`` column tiles together
    #: (the Q/K/V slices of the fused attention GeMM).
    strided_groups: Optional[int] = None


def make_policy(name: str, spec: KernelSpec) -> SyncPolicy:
    """Build the policy instance a named policy family uses for one stage."""
    normalized = name.lower()
    if normalized in ("tilesync", "tile"):
        return TileSync()
    if normalized in ("rowsync", "row"):
        return RowSync()
    if normalized in ("conv2dtilesync", "conv2dtile"):
        return Conv2DTileSync()
    if normalized in ("stridedtilesync", "strided"):
        if spec.strided_groups is not None:
            grid = spec.kernel.stage_geometry().logical_grid
            if grid.x % spec.strided_groups == 0 and grid.x > spec.strided_groups:
                return StridedSync(stride=grid.x // spec.strided_groups)
        return TileSync()
    raise ModelConfigError(f"unknown synchronization policy family {name!r}")


def make_order(name: str, spec: KernelSpec) -> TileOrder:
    """Tile processing order paired with a policy family."""
    if name.lower() in ("stridedtilesync", "strided") and spec.strided_groups is not None:
        grid = spec.kernel.stage_geometry().logical_grid
        if grid.x % spec.strided_groups == 0 and grid.x > spec.strided_groups:
            return GroupedColumnsOrder(group=spec.strided_groups)
    return RowMajorOrder()


class Workload(ABC):
    """A chain of dependent kernels that can be run under any scheme."""

    def __init__(
        self,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
    ) -> None:
        self.arch = arch
        self.cost_model = cost_model if cost_model is not None else CostModel(arch=arch)
        self.functional = functional

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abstractmethod
    def build(self) -> List[KernelSpec]:
        """Create fresh kernels (and their dependence structure)."""

    def input_tensors(self, rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        """Input arrays for functional simulation (weights, activations)."""
        return {}

    @property
    def name(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------
    # Execution under the three schemes
    # ------------------------------------------------------------------
    def run_streamsync(self, memory: Optional[GlobalMemory] = None) -> PipelineResult:
        """Execute with CUDA stream synchronization (the baseline)."""
        specs = self.build()
        executor = StreamSyncExecutor(
            arch=self.arch, cost_model=self.cost_model, functional=self.functional
        )
        return executor.run(
            [spec.kernel for spec in specs],
            memory=memory,
            tensors=self.input_tensors() if self.functional else None,
        )

    def run_streamk(self, memory: Optional[GlobalMemory] = None) -> PipelineResult:
        """Execute with Stream-K GeMMs under stream synchronization."""
        specs = self.build()
        executor = StreamKExecutor(arch=self.arch, cost_model=self.cost_model)
        items = [
            StreamKExecutor.convert(spec.kernel, self.cost_model)
            if isinstance(spec.kernel, GemmKernel)
            else spec.kernel
            for spec in specs
        ]
        return executor.run(items, memory=memory)

    def run_cusync(
        self,
        policy: PolicySpec = "TileSync",
        optimizations: Optional[OptimizationFlags] = None,
        memory: Optional[GlobalMemory] = None,
    ) -> PipelineResult:
        """Execute with a cuSync pipeline under the chosen policy family.

        ``optimizations=None`` applies the paper's automatic W/R/T choice
        (Section IV-C) based on the wave counts of the kernels involved.
        """
        specs = self.build()
        pipeline = CuSyncPipeline(
            arch=self.arch, cost_model=self.cost_model, functional=self.functional
        )

        flags = optimizations
        if flags is None:
            flags = self._auto_flags(specs)

        stages = []
        for spec in specs:
            if isinstance(policy, str):
                stage_policy = make_policy(policy, spec)
                stage_order = make_order(policy, spec)
            else:
                stage_policy = policy[len(stages)]
                stage_order = RowMajorOrder()
            stages.append(
                pipeline.add_stage(
                    spec.kernel, policy=stage_policy, order=stage_order, optimizations=flags
                )
            )
        for index, spec in enumerate(specs):
            for dependency in spec.dependencies:
                pipeline.add_dependency(
                    stages[dependency.producer_index],
                    stages[index],
                    dependency.tensor,
                    range_map=dependency.range_map,
                )
        return pipeline.run(
            memory=memory,
            tensors=self.input_tensors() if self.functional else None,
        )

    def _auto_flags(self, specs: List[KernelSpec]) -> OptimizationFlags:
        blocks = [spec.kernel.grid.volume for spec in specs]
        occupancies = [spec.kernel.occupancy() for spec in specs]
        flags = auto_optimizations(
            producer_blocks=max(blocks),
            consumer_blocks=max(blocks),
            producer_occupancy=min(occupancies),
            consumer_occupancy=min(occupancies),
            arch=self.arch,
        )
        return flags

    # ------------------------------------------------------------------
    # Convenience for benchmarks
    # ------------------------------------------------------------------
    def improvement_over_streamsync(
        self, policy: PolicySpec = "TileSync", optimizations: Optional[OptimizationFlags] = None
    ) -> float:
        """Fractional improvement of cuSync over StreamSync (0.1 == 10%)."""
        baseline = self.run_streamsync().total_time_us
        synced = self.run_cusync(policy=policy, optimizations=optimizations).total_time_us
        return (baseline - synced) / baseline

    def best_policy(
        self, policies: Optional[List[str]] = None
    ) -> Dict[str, float]:
        """Run every policy family and report times (plus the baselines)."""
        policies = policies if policies is not None else ["TileSync", "RowSync"]
        results = {"StreamSync": self.run_streamsync().total_time_us}
        for family in policies:
            results[family] = self.run_cusync(policy=family).total_time_us
        return results
