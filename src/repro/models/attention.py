"""The Attention block of GPT-3 / LLaMA (Figure 2b).

Per GPU, attention runs five dependent kernels::

    XQKV = X @ WQKV                  # fused Q/K/V projection  [B*S, 3H/8]
    P    = XQ @ Kall                 # attention scores        [B*S, S'+S]
    R    = Dropout(Softmax(P))       # fused softmax-dropout
    T    = R @ Vall                  # weighted values         [B*S, H/8]
    XW12 = T @ W2                    # output projection       [B*S, H]

``Kall``/``Vall`` concatenate the KV-cache of the ``S'`` already-processed
tokens with the keys/values of the ``S`` new tokens; the latter are slices
of ``XQKV``, which is why the score and value GeMMs depend on the first
GeMM through *strided* column slices (the paper's Figure 5b dependence, the
reason the StridedSync policy exists).

During prompt processing ``S' = 0`` and ``B*S`` spans the whole prompt;
during token generation ``S = 1`` and ``S'`` grows.  For simulation the
batch dimension is flattened into the row dimension of every kernel, which
keeps shapes and dependences identical to the per-GPU computation while
avoiding per-batch grids (documented substitution; functional correctness
is validated for B = 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.validation import check_non_negative, check_positive
from repro.gpu.arch import GpuArchitecture, TESLA_V100
from repro.gpu.costmodel import CostModel
from repro.kernels.gemm import GemmConfig, GemmKernel, GemmProblem, choose_gemm_config
from repro.kernels.softmax_dropout import SoftmaxDropoutKernel, SoftmaxDropoutProblem
from repro.models.config import GPT3_145B, TransformerConfig
from repro.models.workload import Workload
from repro.pipeline.graph import Edge, PipelineGraph, StageSpec


class Attention(Workload):
    """The five dependent kernels of one attention block on one GPU."""

    def __init__(
        self,
        config: TransformerConfig = GPT3_145B,
        batch: int = 1,
        seq: int = 512,
        cached: int = 0,
        arch: GpuArchitecture = TESLA_V100,
        cost_model: Optional[CostModel] = None,
        functional: bool = False,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(arch=arch, cost_model=cost_model, functional=functional)
        check_positive("batch", batch)
        check_positive("seq", seq)
        check_non_negative("cached", cached)
        self.config = config
        self.batch = batch
        self.seq = seq
        self.cached = cached
        self.dropout = dropout
        self.seed = seed

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.config.name} Attention (BxS={self.rows}, S'={self.cached})"

    @property
    def rows(self) -> int:
        """Flattened query rows ``B * S``."""
        return self.batch * self.seq

    @property
    def keys(self) -> int:
        """Number of attended key/value positions ``S' + S``."""
        return self.cached + self.seq

    @property
    def head_width(self) -> int:
        """Per-GPU width of Q, K and V: ``H / 8``."""
        return self.config.attention_head_dim_per_gpu

    # ------------------------------------------------------------------
    def to_graph(self) -> PipelineGraph:
        hidden = self.config.hidden
        width = self.head_width
        rows, keys = self.rows, self.keys

        qkv_problem = GemmProblem(m=rows, n=3 * width, k=hidden, a="X", b="WQKV", c="XQKV")
        score_problem = GemmProblem(m=rows, n=keys, k=width, a="XQ", b="Kall", c="P")
        softmax_problem = SoftmaxDropoutProblem(
            rows=rows, row_length=keys, input="P", output="R",
            dropout_probability=self.dropout, seed=self.seed,
        )
        value_problem = GemmProblem(m=rows, n=width, k=keys, a="R", b="Vall", c="T")
        out_problem = GemmProblem(m=rows, n=hidden, k=width, a="T", b="W2", c="XW12")

        def gemm(name: str, problem: GemmProblem, **kwargs) -> GemmKernel:
            config = choose_gemm_config(problem, self.arch)
            if self.functional:
                config = GemmConfig(config.tile_m, config.tile_n, config.tile_k, 1)
            return GemmKernel(
                name, problem, config=config, cost_model=self.cost_model,
                functional=self.functional, **kwargs,
            )

        qkv = gemm("attn_qkv", qkv_problem)
        scores = gemm("attn_scores", score_problem, sync_inputs=("XQ", "Kall"))
        softmax = SoftmaxDropoutKernel(
            "attn_softmax", softmax_problem, sync_inputs=("P",),
            cost_model=self.cost_model, functional=self.functional,
        )
        values = gemm("attn_values", value_problem, sync_inputs=("R", "Vall"))
        output = gemm("attn_out", out_problem, sync_inputs=("T",))

        width_offset_k = 2 * width   # XK lives in XQKV columns [2H/8, 3H/8)
        width_offset_v = width       # XV lives in XQKV columns [H/8, 2H/8)
        all_rows = (0, rows)

        def query_map(row_range, col_range, batch):
            # XQ is XQKV columns [0, H/8): identity rows, identity columns.
            return row_range, col_range, 0

        def key_map(row_range, col_range, batch):
            # The score GeMM reads Kall[k, key]; only the last S keys come
            # from XQKV.  Rows of the producer are covered conservatively
            # (all new-token rows), columns map to the XK slice.
            return all_rows, (width_offset_k + row_range[0], width_offset_k + row_range[1]), 0

        def value_map(row_range, col_range, batch):
            # The value GeMM reads Vall[key, v]; the last S keys are XQKV's
            # XV slice.
            return all_rows, (width_offset_v + col_range[0], width_offset_v + col_range[1]), 0

        # With a KV cache (``cached > 0``) most keys pre-exist in memory;
        # the dependence on XQKV's key/value slices remains, only its
        # weight shrinks — the graph is identical in both phases.
        return PipelineGraph(
            stages=[
                StageSpec(name="attn_qkv", kernel=qkv, strided_groups=3),
                StageSpec(name="attn_scores", kernel=scores),
                StageSpec(name="attn_softmax", kernel=softmax),
                StageSpec(name="attn_values", kernel=values),
                StageSpec(name="attn_out", kernel=output),
            ],
            edges=[
                Edge("attn_qkv", "attn_scores", tensor="XQ", range_map=query_map),
                Edge("attn_qkv", "attn_scores", tensor="Kall", range_map=key_map),
                Edge("attn_scores", "attn_softmax", tensor="P"),
                Edge("attn_softmax", "attn_values", tensor="R"),
                Edge("attn_qkv", "attn_values", tensor="Vall", range_map=value_map),
                Edge("attn_values", "attn_out", tensor="T"),
            ],
            name=f"attn_{self.config.name}_s{self.seq}_c{self.cached}",
        )

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def input_tensors(self, rng: Optional[np.random.Generator] = None) -> Dict[str, np.ndarray]:
        """Inputs plus aliased views of ``XQKV`` for the Q/K/V slices.

        ``XQ``, ``Kall`` and ``Vall`` are numpy *views* into the ``XQKV``
        output buffer (plus the KV cache when ``S' > 0``), so values written
        by the first GeMM are immediately visible to its consumers exactly
        like slices of GPU global memory.
        """
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        hidden = self.config.hidden
        width = self.head_width
        rows, keys = self.rows, self.keys
        scale = 1.0 / np.sqrt(hidden)

        xqkv = np.zeros((rows, 3 * width), dtype=np.float32)
        tensors = {
            "X": rng.standard_normal((rows, hidden)).astype(np.float32),
            "WQKV": (rng.standard_normal((hidden, 3 * width)) * scale).astype(np.float32),
            "W2": (rng.standard_normal((width, hidden)) * scale).astype(np.float32),
            "XQKV": xqkv,
            "XQ": xqkv[:, :width],
        }
        if self.cached == 0:
            tensors["Kall"] = xqkv[:, 2 * width:3 * width].T
            tensors["Vall"] = xqkv[:, width:2 * width]
        else:
            cached_k = rng.standard_normal((width, self.cached)).astype(np.float32)
            cached_v = rng.standard_normal((self.cached, width)).astype(np.float32)
            kall = np.zeros((width, keys), dtype=np.float32)
            kall[:, :self.cached] = cached_k
            vall = np.zeros((keys, width), dtype=np.float32)
            vall[:self.cached, :] = cached_v
            tensors["Kall"] = kall
            tensors["Vall"] = vall
            tensors["CachedK"] = cached_k
            tensors["CachedV"] = cached_v
        return tensors

    def reference_output(self) -> np.ndarray:
        """Numpy reference of the attention block output (for ``S' = 0``)."""
        tensors = self.input_tensors()
        xqkv = tensors["X"] @ tensors["WQKV"]
        width = self.head_width
        xq, xv, xk = xqkv[:, :width], xqkv[:, width:2 * width], xqkv[:, 2 * width:]
        scores = xq @ xk.T
        shifted = scores - scores.max(axis=1, keepdims=True)
        weights = np.exp(shifted)
        weights /= weights.sum(axis=1, keepdims=True)
        if self.dropout > 0.0:
            raise NotImplementedError("reference_output assumes dropout_probability == 0")
        attended = weights @ xv
        return attended @ tensors["W2"]
