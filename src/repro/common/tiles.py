"""Tile coordinates and tile enumeration helpers.

A *tile* is the unit of work the paper synchronizes on: the sub-matrix of the
output that one thread block computes.  Tile coordinates are plain
:class:`~repro.common.dim3.Dim3` values, but this module adds the helpers the
rest of the library relies on:

* :func:`linearize` / :func:`delinearize` convert between a 3-D tile
  coordinate and its row-major linear index inside a grid, which is how
  cuSync maps thread blocks to semaphores and tile-processing orders.
* :class:`TileRange` enumerates a rectangular sub-range of a grid, which the
  DSL's ``ForAll`` construct lowers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.dim3 import Dim3

#: Alias used throughout the code base: a tile coordinate is a Dim3.
TileCoord = Dim3


def linearize(tile: Dim3, grid: Dim3) -> int:
    """Row-major linear index of ``tile`` inside ``grid``.

    The layout matches the paper's ``RowMajor`` order: x varies fastest, then
    y, then z (``tile.z * grid.y * grid.x + tile.y * grid.x + tile.x``).
    """
    if not grid.contains(tile):
        raise IndexError(f"tile {tile} is outside grid {grid}")
    return (tile.z * grid.y + tile.y) * grid.x + tile.x


def delinearize(index: int, grid: Dim3) -> Dim3:
    """Inverse of :func:`linearize`."""
    if index < 0 or index >= grid.volume:
        raise IndexError(f"linear index {index} outside grid {grid} with volume {grid.volume}")
    x = index % grid.x
    rest = index // grid.x
    y = rest % grid.y
    z = rest // grid.y
    return Dim3(x, y, z)


def iter_tiles(grid: Dim3) -> Iterator[Dim3]:
    """Iterate all tile coordinates of ``grid`` in row-major order."""
    for z in range(grid.z):
        for y in range(grid.y):
            for x in range(grid.x):
                yield Dim3(x, y, z)


@dataclass(frozen=True)
class TileRange:
    """A rectangular, half-open range of tile coordinates.

    ``lo`` is inclusive and ``hi`` is exclusive in each dimension.  The DSL's
    ``ForAll(tile, dim, Range(n))`` construct produces a :class:`TileRange`
    spanning the full extent of one dimension while pinning the others.
    """

    lo: Dim3
    hi: Dim3

    def __post_init__(self) -> None:
        if self.hi.x < self.lo.x or self.hi.y < self.lo.y or self.hi.z < self.lo.z:
            raise ValueError(f"TileRange upper bound {self.hi} below lower bound {self.lo}")

    @property
    def extent(self) -> Dim3:
        """Size of the range in each dimension."""
        return Dim3(self.hi.x - self.lo.x, self.hi.y - self.lo.y, self.hi.z - self.lo.z)

    @property
    def count(self) -> int:
        """Number of tiles in the range."""
        return self.extent.volume

    def __iter__(self) -> Iterator[Dim3]:
        for z in range(self.lo.z, self.hi.z):
            for y in range(self.lo.y, self.hi.y):
                for x in range(self.lo.x, self.hi.x):
                    yield Dim3(x, y, z)

    def __contains__(self, tile: Dim3) -> bool:
        return (
            self.lo.x <= tile.x < self.hi.x
            and self.lo.y <= tile.y < self.hi.y
            and self.lo.z <= tile.z < self.hi.z
        )

    def tiles(self) -> List[Dim3]:
        """All tile coordinates of the range in row-major order."""
        return list(self)

    @classmethod
    def full(cls, grid: Dim3) -> "TileRange":
        """The range covering an entire grid."""
        return cls(Dim3(0, 0, 0), grid)

    @classmethod
    def single(cls, tile: Dim3) -> "TileRange":
        """The range containing exactly one tile."""
        return cls(tile, Dim3(tile.x + 1, tile.y + 1, tile.z + 1))
