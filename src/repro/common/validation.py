"""Small argument-validation helpers with consistent error messages.

Raising early with a message that names the offending argument keeps the
simulator and DSL error messages readable; these helpers centralize that.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: Union[int, float]) -> Union[int, float]:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: Union[int, float]) -> Union[int, float]:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: Union[int, float],
    lo: Union[int, float],
    hi: Union[int, float],
) -> Union[int, float]:
    """Raise ``ValueError`` unless ``lo <= value <= hi``; return the value."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value
