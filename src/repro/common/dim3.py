"""3-dimensional sizes and indices, mirroring CUDA's ``dim3``.

The CUDA programming model describes both grids (how many thread blocks a
kernel launches) and thread blocks (how many threads each block contains)
with a 3-component structure ``dim3``.  The paper's framework reasons about
*tiles*, which map one-to-one onto thread blocks, so every grid in this
reproduction is a :class:`Dim3`.

The class is an immutable value type: hashable, comparable and iterable, so
it can be used as a dictionary key (e.g. mapping a thread-block index to its
simulated completion time) and unpacked like a tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division, the pervasive grid-size computation.

    CUDA code computes grid sizes as ``ceil(problem / tile)``; this helper is
    the Python equivalent used throughout the kernel and model packages.

    >>> ceil_div(12, 4)
    3
    >>> ceil_div(13, 4)
    4
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


@dataclass(frozen=True, order=True)
class Dim3:
    """An immutable ``(x, y, z)`` triple of non-negative integers.

    The default for each component is 1, matching CUDA where unspecified grid
    or block dimensions default to 1.
    """

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for name in ("x", "y", "z"):
            value = getattr(self, name)
            if not isinstance(value, int):
                raise TypeError(f"Dim3.{name} must be an int, got {type(value).__name__}")
            if value < 0:
                raise ValueError(f"Dim3.{name} must be non-negative, got {value}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, value: Union["Dim3", Sequence[int], int]) -> "Dim3":
        """Coerce an int, sequence or :class:`Dim3` into a :class:`Dim3`."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        values = tuple(int(v) for v in value)
        if len(values) == 0 or len(values) > 3:
            raise ValueError(f"expected 1 to 3 components, got {len(values)}")
        return cls(*values)

    # ------------------------------------------------------------------
    # Tuple-like behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z

    def __len__(self) -> int:
        return 3

    def __getitem__(self, index: int) -> int:
        return (self.x, self.y, self.z)[index]

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return the components as a plain tuple ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @property
    def volume(self) -> int:
        """Total number of elements, i.e. ``x * y * z``.

        For a grid this is the total number of thread blocks the kernel
        launches, the quantity that determines the number of waves.
        """
        return self.x * self.y * self.z

    def ceil_div(self, other: Union["Dim3", Sequence[int], int]) -> "Dim3":
        """Component-wise ceiling division (problem size -> grid size)."""
        other = Dim3.of(other)
        return Dim3(
            ceil_div(self.x, max(other.x, 1)),
            ceil_div(self.y, max(other.y, 1)),
            ceil_div(self.z, max(other.z, 1)),
        )

    def scaled(self, other: Union["Dim3", Sequence[int], int]) -> "Dim3":
        """Component-wise multiplication (grid size * tile size)."""
        other = Dim3.of(other)
        return Dim3(self.x * other.x, self.y * other.y, self.z * other.z)

    def contains(self, index: "Dim3") -> bool:
        """Whether ``index`` is a valid coordinate inside this extent."""
        return 0 <= index.x < self.x and 0 <= index.y < self.y and 0 <= index.z < self.z

    def __str__(self) -> str:
        return f"[{self.x}, {self.y}, {self.z}]"
