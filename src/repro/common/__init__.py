"""Shared utilities used across the cuSync reproduction.

This package intentionally contains only small, dependency-free building
blocks: 3-dimensional index arithmetic (:mod:`repro.common.dim3`), tile
coordinate helpers (:mod:`repro.common.tiles`) and argument validation
helpers (:mod:`repro.common.validation`).
"""

from repro.common.dim3 import Dim3, ceil_div
from repro.common.tiles import TileCoord, TileRange, linearize, delinearize
from repro.common.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)

__all__ = [
    "Dim3",
    "ceil_div",
    "TileCoord",
    "TileRange",
    "linearize",
    "delinearize",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
]
