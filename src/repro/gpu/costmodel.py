"""Analytical cost model for tile computations and synchronization.

The simulator needs a duration for every segment of every thread block.  The
durations here come from a simple roofline-style model: a tile computation
costs the larger of its compute time (FLOPs over the SM's share of the
device throughput) and its memory time (bytes moved over the SM's share of
bandwidth), plus fixed per-tile overheads.  Synchronization costs follow the
paper's Section V-D breakdown: a ``wait`` is a global-memory poll (plus the
implicit ``__syncthreads``), a ``post`` is a ``__syncthreads`` + memory
fence + global atomic add.

Absolute accuracy is not the goal — reproducing the *relative* behaviour of
StreamSync, Stream-K and cuSync policies is.  The model is therefore kept
deliberately small and fully deterministic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.common.validation import check_non_negative, check_positive
from repro.gpu.arch import GpuArchitecture, TESLA_V100

#: Bytes per element for the half-precision data the paper's kernels use.
FP16_BYTES = 2
FP32_BYTES = 4


@dataclass
class CostModel:
    """Computes segment durations from the architecture description.

    ``occupancy_aware`` durations divide an SM's throughput among the
    resident thread blocks of the kernel, so a kernel that fits two blocks
    per SM has blocks that individually run at half speed but a wave that
    still delivers the SM's full throughput — matching how waves behave on
    real hardware.
    """

    arch: GpuArchitecture = TESLA_V100
    #: Fixed per-tile overhead covering prologue/epilogue work, in µs.
    tile_fixed_overhead_us: float = 1.0
    #: Fixed per-kernel epilogue overhead added to a block's last segment.
    epilogue_overhead_us: float = 0.5
    #: Deterministic spread of per-block durations, as a fraction.  Real
    #: thread blocks of the same kernel finish at staggered times (DRAM and
    #: L2 contention, scheduler jitter); stream synchronization must wait
    #: for the slowest block of the producer while fine-grained
    #: synchronization only waits for the tiles it needs, so this spread is
    #: part of what cuSync recovers.  The spread derives from one blake2b
    #: digest of the kernel name (computed once per kernel and cached)
    #: mixed with the block index by a cheap integer finalizer, so runs are
    #: exactly reproducible without hashing per block.
    duration_jitter: float = 0.12
    #: Memoized per-kernel jitter seeds (one blake2b digest per kernel
    #: launch name); pure internal cache, excluded from init/equality/repr.
    _jitter_seeds: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Generic roofline pieces
    # ------------------------------------------------------------------
    def compute_time_us(self, flops: float, occupancy: int = 1, precision: str = "fp16") -> float:
        """Time to execute ``flops`` on one thread block's share of an SM."""
        check_non_negative("flops", flops)
        check_positive("occupancy", occupancy)
        if precision == "fp16":
            peak = self.arch.fp16_flops_per_sm_us
        elif precision == "fp32":
            peak = self.arch.fp32_flops_per_sm_us
        else:
            raise ValueError(f"unknown precision {precision!r}")
        effective = peak * self.arch.compute_efficiency / occupancy
        return flops / effective if flops > 0 else 0.0

    def memory_time_us(self, bytes_moved: float, occupancy: int = 1) -> float:
        """Time to move ``bytes_moved`` through one block's bandwidth share."""
        check_non_negative("bytes_moved", bytes_moved)
        check_positive("occupancy", occupancy)
        effective = self.arch.bytes_per_sm_us * self.arch.memory_efficiency / occupancy
        return bytes_moved / effective if bytes_moved > 0 else 0.0

    def roofline_time_us(
        self, flops: float, bytes_moved: float, occupancy: int = 1, precision: str = "fp16"
    ) -> float:
        """Roofline duration: max of compute and memory time."""
        return max(
            self.compute_time_us(flops, occupancy, precision),
            self.memory_time_us(bytes_moved, occupancy),
        )

    # ------------------------------------------------------------------
    # Tile-level building blocks used by the kernel library
    # ------------------------------------------------------------------
    def gemm_mainloop_chunk_us(
        self,
        tile_m: int,
        tile_n: int,
        chunk_k: int,
        occupancy: int = 1,
        element_bytes: int = FP16_BYTES,
    ) -> float:
        """Duration of one K-chunk of a tiled GeMM main loop.

        A chunk multiplies a ``tile_m x chunk_k`` slice of A with a
        ``chunk_k x tile_n`` slice of B, loading both slices from global
        memory into shared memory.
        """
        flops = 2.0 * tile_m * tile_n * chunk_k
        bytes_moved = (tile_m * chunk_k + chunk_k * tile_n) * element_bytes
        return self.roofline_time_us(flops, bytes_moved, occupancy)

    def gemm_epilogue_us(
        self, tile_m: int, tile_n: int, occupancy: int = 1, element_bytes: int = FP16_BYTES
    ) -> float:
        """Duration of storing a finished output tile (plus fused pointwise)."""
        bytes_moved = tile_m * tile_n * element_bytes
        return self.memory_time_us(bytes_moved, occupancy) + self.epilogue_overhead_us

    def elementwise_tile_us(
        self, elements: int, occupancy: int = 1, element_bytes: int = FP16_BYTES, reads: int = 1, writes: int = 1
    ) -> float:
        """Duration of an elementwise/copy tile (memory-bound)."""
        bytes_moved = elements * element_bytes * (reads + writes)
        return self.memory_time_us(bytes_moved, occupancy)

    def softmax_tile_us(self, rows: int, row_length: int, occupancy: int = 1) -> float:
        """Duration of a fused softmax(+dropout) tile over ``rows`` rows."""
        elements = rows * row_length
        # Softmax reads the row twice (max + exp/sum) and writes it once.
        bytes_moved = elements * FP16_BYTES * 3
        flops = elements * 5.0  # exp, subtract, divide, compare, scale
        return self.roofline_time_us(flops, bytes_moved, occupancy, precision="fp32")

    # ------------------------------------------------------------------
    # Synchronization costs (Section V-D)
    # ------------------------------------------------------------------
    def wait_overhead_us(self) -> float:
        """Cost of one exposed ``wait``: a global poll + ``__syncthreads``."""
        return self.arch.global_latency_us + self.arch.fence_latency_us * 0.5

    def satisfied_wait_overhead_us(self) -> float:
        """Cost of a ``wait`` whose semaphore is already at its target value.

        The poll still issues a global read, but in a software-pipelined
        kernel it overlaps with the previous chunk's compute, so only a
        fraction of the latency is exposed.
        """
        return self.arch.global_latency_us * 0.3

    def post_overhead_us(self) -> float:
        """Cost of one ``post``: ``__syncthreads`` + fence + atomic add."""
        return self.arch.fence_latency_us + self.arch.atomic_latency_us

    def wait_kernel_poll_us(self) -> float:
        """Granularity at which the single-thread wait-kernel polls."""
        return self.arch.global_latency_us

    def kernel_launch_us(self) -> float:
        """Host-side latency of one kernel launch."""
        return self.arch.kernel_launch_latency_us

    def kernel_dispatch_gap_us(self) -> float:
        """Device-side gap between back-to-back kernels on one stream."""
        return self.arch.kernel_dispatch_latency_us

    def jitter_seed(self, kernel_name: str) -> int:
        """The per-kernel 64-bit jitter seed (one blake2b digest, memoized).

        The simulator dispatches every block of a launch through
        :meth:`block_duration_factor`; hashing per block made the digest a
        measurable share of dispatch time, so the cryptographic hash runs
        once per kernel name and a cheap integer mixer spreads it across
        block indices.
        """
        seed = self._jitter_seeds.get(kernel_name)
        if seed is None:
            digest = hashlib.blake2b(kernel_name.encode(), digest_size=8).digest()
            seed = int.from_bytes(digest, "little")
            self._jitter_seeds[kernel_name] = seed
        return seed

    def block_duration_factor(self, kernel_name: str, dispatch_index: int) -> float:
        """Deterministic per-block duration multiplier in ``[1, 1 + jitter)``."""
        if self.duration_jitter <= 0.0:
            return 1.0
        # splitmix64 finalizer over (seed + golden-ratio stride * index):
        # well-distributed 64-bit mixing with three shift-xor-multiply
        # rounds, far cheaper than a per-block blake2b digest.
        mask = 0xFFFFFFFFFFFFFFFF
        z = (self.jitter_seed(kernel_name) + dispatch_index * 0x9E3779B97F4A7C15) & mask
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
        z ^= z >> 31
        fraction = (z >> 32) / 2 ** 32
        return 1.0 + self.duration_jitter * fraction

    def block_duration_factors(self, kernel_name: str, count: int) -> List[float]:
        """Vectorized :meth:`block_duration_factor` for indices ``0..count-1``.

        One numpy evaluation of the splitmix64 finalizer replaces ``count``
        Python-arithmetic calls when the simulator prepares a launch; the
        uint64 lane wraps exactly like the masked scalar path and the
        ``(z >> 32) / 2**32`` fraction is a power-of-two division of a
        value below 2**32, so every element is bit-identical to the scalar
        method (defended by a test).
        """
        if self.duration_jitter <= 0.0 or count <= 0:
            return [1.0] * max(count, 0)
        stride = np.uint64(0x9E3779B97F4A7C15)
        indices = np.arange(count, dtype=np.uint64)
        z = np.uint64(self.jitter_seed(kernel_name)) + indices * stride
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
        fractions = (z >> np.uint64(32)).astype(np.float64) / 4294967296.0
        return (1.0 + self.duration_jitter * fractions).tolist()

    # ------------------------------------------------------------------
    # Stream-K specific costs
    # ------------------------------------------------------------------
    def streamk_fixup_us(self, tile_m: int, tile_n: int, partials: int, occupancy: int = 1) -> float:
        """Cost of reducing ``partials`` partial tiles produced by Stream-K.

        Each partial accumulator is written to and re-read from global
        memory (the extra traffic the paper cites as Stream-K's drawback).
        """
        check_non_negative("partials", partials)
        if partials <= 1:
            return 0.0
        bytes_moved = tile_m * tile_n * FP32_BYTES * (partials + 1)
        return self.memory_time_us(bytes_moved, occupancy) + self.tile_fixed_overhead_us
