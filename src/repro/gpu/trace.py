"""Execution traces and derived statistics (waves, utilization).

The paper's analysis revolves around two numbers per kernel: how many
*waves* of thread blocks it needs (Table I, Table IV) and what fraction of
the GPU the final wave utilizes.  This module computes both the analytic
versions (from grid size and occupancy, as the paper's tables do) and the
measured versions (from the simulated schedule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.dim3 import Dim3
from repro.gpu.arch import GpuArchitecture


def wave_count(num_blocks: int, occupancy: int, arch: GpuArchitecture) -> float:
    """Fractional number of waves: ``blocks / (occupancy * SMs)``.

    The paper reports this fractional value (e.g. "1.2 waves"); use
    ``math.ceil`` on the result for the number of full scheduling rounds.
    """
    per_wave = arch.blocks_per_wave(occupancy)
    return num_blocks / per_wave


def analytic_utilization(num_blocks: int, occupancy: int, arch: GpuArchitecture) -> float:
    """GPU utilization as defined in Table I.

    The kernel runs ``ceil(waves)`` waves of ``occupancy * SMs`` block slots
    each; utilization is the fraction of those slots that hold real blocks.
    """
    if num_blocks == 0:
        return 0.0
    per_wave = arch.blocks_per_wave(occupancy)
    waves = math.ceil(num_blocks / per_wave)
    return num_blocks / (waves * per_wave)


@dataclass(slots=True)
class BlockRecord:
    """Timing record for one simulated thread block."""

    kernel: str
    launch_index: int
    tile: Dim3
    dispatch_index: int
    sm_id: int
    dispatch_time_us: float
    end_time_us: float
    #: Time spent busy-waiting on semaphores, in µs.
    wait_time_us: float = 0.0
    #: Modeled load/compute time, in µs.
    work_time_us: float = 0.0

    @property
    def resident_time_us(self) -> float:
        """Wall-clock time the block occupied its SM slot."""
        return self.end_time_us - self.dispatch_time_us


@dataclass
class KernelStats:
    """Aggregate statistics of one kernel launch."""

    name: str
    launch_index: int
    grid: Dim3
    occupancy: int
    num_blocks: int
    issue_time_us: float
    start_time_us: float = math.inf
    end_time_us: float = 0.0
    total_wait_time_us: float = 0.0
    total_work_time_us: float = 0.0
    waves: float = 0.0
    utilization: float = 0.0

    @property
    def duration_us(self) -> float:
        """Wall-clock time from the first block starting to the last ending."""
        if self.start_time_us is math.inf:
            return 0.0
        return self.end_time_us - self.start_time_us


@dataclass(eq=False)
class ExecutionTrace:
    """Complete record of one simulation run.

    Block records are materialized lazily: the simulator's hot loop appends
    plain rows (the :class:`BlockRecord` fields in declaration order) to
    :attr:`deferred_blocks`, and the first access of :attr:`blocks` turns
    them into :class:`BlockRecord` objects — in the same completion order —
    so runs whose traces are never inspected block-by-block (sweep points,
    throughput benchmarks) skip one record construction per thread block.
    Equality compares the materialized view, so two traces with identical
    content are equal regardless of which one has been inspected already.
    """

    arch: GpuArchitecture
    kernels: Dict[str, KernelStats] = field(default_factory=dict)
    total_time_us: float = 0.0
    #: Raw block rows pending materialization (simulator-internal).
    deferred_blocks: List[tuple] = field(default_factory=list, repr=False)
    _blocks: List[BlockRecord] = field(default_factory=list, repr=False)

    @property
    def blocks(self) -> List[BlockRecord]:
        """All block records, in completion order."""
        deferred = self.deferred_blocks
        if deferred:
            self._blocks.extend(BlockRecord(*row) for row in deferred)
            deferred.clear()
        return self._blocks

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionTrace):
            return NotImplemented
        return (
            self.arch == other.arch
            and self.kernels == other.kernels
            and self.total_time_us == other.total_time_us
            and self.blocks == other.blocks
        )

    def add_block(self, record: BlockRecord) -> None:
        self.blocks.append(record)
        stats = self.kernels.get(record.kernel)
        if stats is not None:
            stats.start_time_us = min(stats.start_time_us, record.dispatch_time_us)
            stats.end_time_us = max(stats.end_time_us, record.end_time_us)
            stats.total_wait_time_us += record.wait_time_us
            stats.total_work_time_us += record.work_time_us

    def blocks_of(self, kernel: str) -> List[BlockRecord]:
        """All block records of one kernel, in dispatch order."""
        records = [b for b in self.blocks if b.kernel == kernel]
        records.sort(key=lambda b: (b.dispatch_time_us, b.dispatch_index))
        return records

    # ------------------------------------------------------------------
    # Measured utilization
    # ------------------------------------------------------------------
    def measured_sm_busy_fraction(self, until: Optional[float] = None) -> float:
        """Average fraction of SM slot-time occupied by resident blocks.

        Each block contributes ``resident_time / occupancy`` SM-time because
        a block of a kernel with occupancy *k* uses ``1/k`` of an SM.
        """
        horizon = until if until is not None else self.total_time_us
        if horizon <= 0:
            return 0.0
        busy = 0.0
        for record in self.blocks:
            stats = self.kernels.get(record.kernel)
            occupancy = stats.occupancy if stats is not None else 1
            busy += record.resident_time_us / occupancy
        return busy / (horizon * self.arch.num_sms)

    def total_wait_time_us(self) -> float:
        """Sum of busy-wait time over all blocks."""
        return sum(record.wait_time_us for record in self.blocks)

    def observed_waves(self, kernel: str) -> int:
        """Number of distinct dispatch rounds observed for ``kernel``.

        Counts groups of blocks whose dispatch times are separated by real
        gaps; mainly useful on synthetic workloads where blocks of a wave
        start simultaneously.
        """
        records = self.blocks_of(kernel)
        if not records:
            return 0
        waves = 1
        epsilon = 1e-9
        previous = records[0].dispatch_time_us
        for record in records[1:]:
            if record.dispatch_time_us > previous + epsilon:
                waves += 1
                previous = record.dispatch_time_us
        return waves

    def summary(self) -> str:
        """Human-readable multi-line summary of the run."""
        lines = [f"total time: {self.total_time_us:.2f} us"]
        for name, stats in sorted(self.kernels.items(), key=lambda kv: kv[1].launch_index):
            lines.append(
                f"  {name}: grid={stats.grid} blocks={stats.num_blocks} "
                f"waves={stats.waves:.2f} util={stats.utilization * 100:.0f}% "
                f"duration={stats.duration_us:.2f} us wait={stats.total_wait_time_us:.2f} us"
            )
        return "\n".join(lines)
