"""GPU architecture descriptions and the first-class architecture space.

The quantities modeled here are the ones the paper's analysis depends on:

* the number of SMs and the per-SM resource limits, which (with a kernel's
  resource usage) determine occupancy and therefore thread blocks per wave;
* per-SM compute throughput and memory bandwidth, which give the duration of
  a tile computation;
* latencies of the operations cuSync adds: global-memory semaphore reads,
  atomic increments, ``__syncthreads``/memory fences and kernel launches.

The default preset is an NVIDIA Tesla V100 (the paper's evaluation GPU,
80 SMs).  An A100 preset is provided because the paper notes the wait-kernel
scheduling assumption holds on Volta and Ampere; H100-SXM and RTX-4090
presets extend the axis to Hopper and a consumer Ada part with a different
occupancy geometry (1536 threads / 24 blocks per SM) and a higher host
launch latency.

On top of the dataclass this module provides the **architecture space
API**, mirroring the policy space of :mod:`repro.cusync.policies`:

* :class:`ArchSpec` — a hashable, picklable ``(name, overrides)`` value
  naming an architecture without holding the instance;
* a user-extensible registry (:func:`register_arch`, :func:`resolve_arch`,
  :func:`registered_archs`) that subsumes passing raw
  :class:`GpuArchitecture` objects around — architecture axes of sweeps
  take names/specs that resolve in worker processes;
* :meth:`ArchSpec.with_overrides` / :meth:`ArchSpec.scaled` constructors
  for what-if studies ("half the SMs", "2x the bandwidth").
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.common.validation import check_non_negative, check_positive
from repro.errors import ModelConfigError


@dataclass(frozen=True)
class GpuArchitecture:
    """Static description of a GPU used by the simulator and cost model.

    Times are expressed in microseconds, sizes in bytes, throughputs in
    FLOP/µs and bytes/µs per SM, so durations computed from them are directly
    comparable with the paper's microsecond-scale kernel times.
    """

    name: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Hard cap on resident thread blocks per SM.
    max_blocks_per_sm: int
    #: Maximum resident threads per SM.
    max_threads_per_sm: int
    #: Maximum threads per thread block.
    max_threads_per_block: int
    #: 32-bit registers available per SM.
    registers_per_sm: int
    #: Shared memory per SM in bytes.
    shared_memory_per_sm: int
    #: Peak half-precision (tensor core) throughput per SM in FLOP/µs.
    fp16_flops_per_sm_us: float
    #: Peak single-precision throughput per SM in FLOP/µs.
    fp32_flops_per_sm_us: float
    #: Global-memory bandwidth per SM in bytes/µs (device bandwidth / SMs).
    bytes_per_sm_us: float
    #: Latency of a dependent global memory access (semaphore poll), µs.
    global_latency_us: float
    #: Latency of a global-memory atomic add, µs.
    atomic_latency_us: float
    #: Cost of a ``__syncthreads`` + ``__threadfence_system`` pair, µs.
    fence_latency_us: float
    #: Host-side latency of launching a kernel, µs (the paper measures ~6 µs).
    kernel_launch_latency_us: float
    #: Device-side gap between one kernel finishing and an already-queued
    #: kernel on the same stream starting to dispatch blocks, µs.  Exposed on
    #: every kernel boundary under stream synchronization; hidden by cuSync
    #: because the dependent kernel's blocks are already resident.
    kernel_dispatch_latency_us: float
    #: Extra latency for a busy-waiting block to notice a posted semaphore, µs.
    wait_resume_latency_us: float
    #: Achievable fraction of peak throughput for well-tuned tiled kernels.
    compute_efficiency: float = 0.8
    #: Achievable fraction of peak memory bandwidth.
    memory_efficiency: float = 0.75
    #: Free-form extra attributes (e.g. NVLink bandwidth for multi-GPU runs).
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Construction-time validation of every quantity downstream code
        # derives from: occupancy bounds, throughput/bandwidth rates and
        # synchronization latencies.  A bad override (a scaled() factor of
        # zero, a negative latency) fails here, not deep inside a sweep.
        check_positive("num_sms", self.num_sms)
        check_positive("max_blocks_per_sm", self.max_blocks_per_sm)
        check_positive("max_threads_per_sm", self.max_threads_per_sm)
        check_positive("max_threads_per_block", self.max_threads_per_block)
        check_positive("registers_per_sm", self.registers_per_sm)
        check_positive("shared_memory_per_sm", self.shared_memory_per_sm)
        check_positive("fp16_flops_per_sm_us", self.fp16_flops_per_sm_us)
        check_positive("fp32_flops_per_sm_us", self.fp32_flops_per_sm_us)
        check_positive("bytes_per_sm_us", self.bytes_per_sm_us)
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ValueError(
                f"max_threads_per_block ({self.max_threads_per_block}) exceeds "
                f"max_threads_per_sm ({self.max_threads_per_sm}): no block "
                "could ever be resident (occupancy would be zero)"
            )
        for latency_field in (
            "global_latency_us",
            "atomic_latency_us",
            "fence_latency_us",
            "kernel_launch_latency_us",
            "kernel_dispatch_latency_us",
            "wait_resume_latency_us",
        ):
            check_non_negative(latency_field, getattr(self, latency_field))
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(f"compute_efficiency must be in (0, 1], got {self.compute_efficiency}")
        if not (0.0 < self.memory_efficiency <= 1.0):
            raise ValueError(f"memory_efficiency must be in (0, 1], got {self.memory_efficiency}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def device_fp16_flops_us(self) -> float:
        """Aggregate half-precision throughput of the device in FLOP/µs."""
        return self.fp16_flops_per_sm_us * self.num_sms

    @property
    def device_bandwidth_bytes_us(self) -> float:
        """Aggregate global-memory bandwidth of the device in bytes/µs."""
        return self.bytes_per_sm_us * self.num_sms

    def blocks_per_wave(self, occupancy: int) -> int:
        """Thread blocks executed per wave for a kernel with ``occupancy``."""
        check_positive("occupancy", occupancy)
        return self.num_sms * occupancy

    def with_overrides(self, **kwargs) -> "GpuArchitecture":
        """Return a copy with some fields replaced (for what-if studies)."""
        known = {f.name for f in fields(self)}
        unknown = set(kwargs) - known
        if unknown:
            raise ModelConfigError(
                f"unknown GpuArchitecture field(s) {sorted(unknown)}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        return replace(self, **kwargs)


#: NVIDIA Tesla V100-SXM2 32GB — the GPU used throughout the paper's
#: evaluation (80 SMs, ~112 TFLOP/s FP16 tensor cores, ~900 GB/s HBM2).
TESLA_V100 = GpuArchitecture(
    name="Tesla V100",
    num_sms=80,
    max_blocks_per_sm=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    shared_memory_per_sm=96 * 1024,
    fp16_flops_per_sm_us=1.4e6,   # 112 TFLOP/s / 80 SMs
    fp32_flops_per_sm_us=0.175e6,  # 14 TFLOP/s / 80 SMs
    bytes_per_sm_us=11250.0,       # 900 GB/s / 80 SMs
    global_latency_us=0.6,
    atomic_latency_us=0.4,
    fence_latency_us=0.3,
    kernel_launch_latency_us=6.0,
    kernel_dispatch_latency_us=3.0,
    wait_resume_latency_us=0.5,
    extras={"nvlink_bandwidth_bytes_us": 150_000.0},
)

#: NVIDIA A100-SXM4 80GB — included because the paper states the kernel
#: scheduling order assumption also holds on Ampere GPUs.
AMPERE_A100 = GpuArchitecture(
    name="A100",
    num_sms=108,
    max_blocks_per_sm=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    shared_memory_per_sm=164 * 1024,
    fp16_flops_per_sm_us=2.89e6,   # 312 TFLOP/s / 108 SMs
    fp32_flops_per_sm_us=0.18e6,
    bytes_per_sm_us=18000.0,       # ~1.94 TB/s / 108 SMs
    global_latency_us=0.5,
    atomic_latency_us=0.35,
    fence_latency_us=0.25,
    kernel_launch_latency_us=5.0,
    kernel_dispatch_latency_us=2.5,
    wait_resume_latency_us=0.4,
    extras={"nvlink_bandwidth_bytes_us": 300_000.0},
)

#: NVIDIA H100-SXM5 80GB — the Hopper data-center part.  Included so the
#: arch-comparison experiments can ask whether the paper's speedup story
#: (Figures 6–8) carries past Ampere: more SMs, much higher tensor
#: throughput and bandwidth, slightly lower synchronization latencies.
HOPPER_H100 = GpuArchitecture(
    name="H100-SXM",
    num_sms=132,
    max_blocks_per_sm=32,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    shared_memory_per_sm=228 * 1024,
    fp16_flops_per_sm_us=7.49e6,   # ~989 TFLOP/s dense FP16 / 132 SMs
    fp32_flops_per_sm_us=0.51e6,   # ~67 TFLOP/s / 132 SMs
    bytes_per_sm_us=25380.0,       # ~3.35 TB/s HBM3 / 132 SMs
    global_latency_us=0.45,
    atomic_latency_us=0.3,
    fence_latency_us=0.22,
    kernel_launch_latency_us=4.5,
    kernel_dispatch_latency_us=2.2,
    wait_resume_latency_us=0.35,
    extras={"nvlink_bandwidth_bytes_us": 450_000.0},
)

#: NVIDIA GeForce RTX 4090 — a consumer Ada part with a *deliberately*
#: different shape from the data-center GPUs: 128 SMs but only 1536
#: resident threads / 24 blocks per SM (so the same kernel reaches a
#: different occupancy), GDDR6X bandwidth far below HBM, no NVLink, and a
#: higher host launch latency (PCIe).  Exercises the parts of the model the
#: SXM presets cannot.
ADA_RTX_4090 = GpuArchitecture(
    name="RTX-4090",
    num_sms=128,
    max_blocks_per_sm=24,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    shared_memory_per_sm=100 * 1024,
    fp16_flops_per_sm_us=1.29e6,   # ~165 TFLOP/s dense FP16 / 128 SMs
    fp32_flops_per_sm_us=0.645e6,  # ~82.6 TFLOP/s / 128 SMs
    bytes_per_sm_us=7875.0,        # ~1.008 TB/s GDDR6X / 128 SMs
    global_latency_us=0.7,
    atomic_latency_us=0.45,
    fence_latency_us=0.35,
    kernel_launch_latency_us=9.0,
    kernel_dispatch_latency_us=3.5,
    wait_resume_latency_us=0.6,
    extras={},
)


# ======================================================================
# The first-class architecture space: specs and the registry
# ======================================================================
#: What architecture axes accept everywhere: a registered name, a spec, or
#: a raw (possibly unregistered) instance.
ArchLike = Union[str, "ArchSpec", GpuArchitecture]


class ArchSpec:
    """A registered architecture name plus field overrides, without an instance.

    Specs are the *declarative* half of the architecture space, mirroring
    :class:`~repro.cusync.policies.PolicySpec`: hashable (usable as dict
    keys and inside frozen dataclasses such as
    :class:`~repro.pipeline.session.SweepPoint`), picklable (they cross
    process boundaries in parallel sweeps and resolve against the registry
    on the other side) and cheap::

        ArchSpec("V100")
        ArchSpec("A100", num_sms=64)
        ArchSpec("H100-SXM").scaled(bandwidth=0.5)

    Override values must be hashable (numbers and strings are).
    """

    __slots__ = ("name", "overrides")

    def __init__(self, name: str, /, **overrides: Any) -> None:
        # ``name`` is positional-only so a ``name=...`` keyword becomes an
        # override of the GpuArchitecture *field* (used by scaled()).
        if not isinstance(name, str) or not name:
            raise ModelConfigError("ArchSpec needs a non-empty architecture name")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "overrides", tuple(sorted(overrides.items())))

    @classmethod
    def _from_state(cls, name: str, overrides: Tuple[Tuple[str, Any], ...]) -> "ArchSpec":
        spec = cls.__new__(cls)
        object.__setattr__(spec, "name", name)
        object.__setattr__(spec, "overrides", tuple(overrides))
        return spec

    @classmethod
    def coerce(cls, value: Union[str, "ArchSpec"]) -> "ArchSpec":
        """Lower an architecture name string to a spec; pass specs through."""
        if isinstance(value, ArchSpec):
            return value
        if isinstance(value, str):
            return cls(value)
        raise ModelConfigError(
            f"expected an architecture name or ArchSpec, got {value!r} "
            "(GpuArchitecture instances are accepted directly by resolve_arch)"
        )

    # ------------------------------------------------------------------
    def override(self, name: str, default: Any = None) -> Any:
        return dict(self.overrides).get(name, default)

    def with_overrides(self, **overrides: Any) -> "ArchSpec":
        """A spec with additional field overrides merged over this one's."""
        merged = dict(self.overrides)
        merged.update(overrides)
        return ArchSpec(self.name, **merged)

    def scaled(
        self,
        sms: float = 1.0,
        compute: float = 1.0,
        bandwidth: float = 1.0,
        latency: float = 1.0,
    ) -> "ArchSpec":
        """A what-if spec scaling the resolved architecture's rate quantities.

        ``sms`` multiplies the SM count (rounded, at least 1), ``compute``
        the FP16/FP32 per-SM throughputs, ``bandwidth`` the per-SM memory
        bandwidth and ``latency`` every synchronization/launch latency.
        The result is still a spec — picklable and registry-resolved — whose
        name records the applied factors.
        """
        for label, factor in (("sms", sms), ("compute", compute),
                              ("bandwidth", bandwidth), ("latency", latency)):
            if factor <= 0.0:
                raise ModelConfigError(f"scaled() factor {label} must be positive, got {factor}")
        base = self.resolve()
        overrides = dict(self.overrides)
        applied = []
        if sms != 1.0:
            overrides["num_sms"] = max(1, round(base.num_sms * sms))
            applied.append(f"sms*{sms:g}")
        if compute != 1.0:
            overrides["fp16_flops_per_sm_us"] = base.fp16_flops_per_sm_us * compute
            overrides["fp32_flops_per_sm_us"] = base.fp32_flops_per_sm_us * compute
            applied.append(f"compute*{compute:g}")
        if bandwidth != 1.0:
            overrides["bytes_per_sm_us"] = base.bytes_per_sm_us * bandwidth
            applied.append(f"bw*{bandwidth:g}")
        if latency != 1.0:
            for latency_field in (
                "global_latency_us", "atomic_latency_us", "fence_latency_us",
                "kernel_launch_latency_us", "kernel_dispatch_latency_us",
                "wait_resume_latency_us",
            ):
                overrides[latency_field] = getattr(base, latency_field) * latency
            applied.append(f"lat*{latency:g}")
        if applied:
            overrides["name"] = f"{base.name}[{','.join(applied)}]"
        return ArchSpec(self.name, **overrides)

    def resolve(self) -> GpuArchitecture:
        """The concrete :class:`GpuArchitecture` this spec names."""
        return resolve_arch(self)

    # ------------------------------------------------------------------
    def label(self) -> str:
        if not self.overrides:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in self.overrides)
        return f"{self.name}({rendered})"

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ArchSpec is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchSpec):
            return NotImplemented
        return (self.name.lower(), self.overrides) == (other.name.lower(), other.overrides)

    def __hash__(self) -> int:
        return hash((self.name.lower(), self.overrides))

    def __reduce__(self):
        return (ArchSpec._from_state, (self.name, self.overrides))

    def __repr__(self) -> str:
        return f"ArchSpec({self.label()!r})"


@dataclass(frozen=True)
class _ArchEntry:
    canonical: str
    arch: GpuArchitecture


_ARCH_REGISTRY: Dict[str, _ArchEntry] = {}
#: Memoized spec resolutions: equal specs resolve to the *same* instance,
#: so identity-keyed caches downstream (sessions) coalesce naturally.
#: Cleared whenever the registry changes.
_RESOLVE_CACHE: Dict["ArchSpec", GpuArchitecture] = {}
#: Bumped on every registry mutation.  Holders of spec-keyed derived
#: caches (e.g. Session cost models) compare it to drop entries whose
#: resolution may have changed under them.
_REGISTRY_GENERATION: int = 0


def arch_registry_generation() -> int:
    """Monotonic counter of registry mutations (for cache invalidation)."""
    return _REGISTRY_GENERATION


def register_arch(
    name: str,
    arch: GpuArchitecture,
    *,
    aliases: Iterable[str] = (),
    overwrite: bool = False,
) -> GpuArchitecture:
    """Register ``arch`` under ``name`` (and ``aliases``), case-insensitively.

    Registered architectures are addressable by name everywhere an
    architecture axis appears — ``SweepPoint.arch``, ``Session(arch=...)``,
    ``sweep_archs(...)`` — and resolve inside worker processes (register
    custom architectures at module import time so workers see them too).
    Re-registering a taken name raises unless ``overwrite=True``.
    """
    if not isinstance(arch, GpuArchitecture):
        raise ModelConfigError(
            f"register_arch expects a GpuArchitecture, got {arch!r}"
        )
    entry = _ArchEntry(canonical=name, arch=arch)
    names = [candidate.lower() for candidate in (name, *aliases)]
    # Validate every name before touching the registry, so a conflicting
    # alias can neither leave a partial registration behind nor destroy
    # the previous one.  ``overwrite`` only excuses collisions with this
    # architecture's *own* previous registration; claiming a name that
    # belongs to a different architecture still raises.
    for candidate in names:
        existing = _ARCH_REGISTRY.get(candidate)
        if existing is None:
            continue
        if overwrite and existing.canonical.lower() == name.lower():
            continue
        raise ModelConfigError(
            f"architecture {candidate!r} is already registered "
            f"(for {existing.canonical!r}); pass overwrite=True to replace it"
        )
    if overwrite:
        # Replace the whole previous registration: drop every entry (alias
        # included) whose canonical name matches, so no stale alias keeps
        # resolving to the old architecture.
        for key in [
            k for k, e in _ARCH_REGISTRY.items() if e.canonical.lower() == name.lower()
        ]:
            del _ARCH_REGISTRY[key]
    for candidate in names:
        _ARCH_REGISTRY[candidate] = entry
    _bump_generation()
    return arch


def unregister_arch(name: str) -> None:
    """Remove an architecture and every alias registered for it."""
    canonical = _registry_entry(name).canonical.lower()
    for key in [k for k, e in _ARCH_REGISTRY.items() if e.canonical.lower() == canonical]:
        del _ARCH_REGISTRY[key]
    _bump_generation()


def _bump_generation() -> None:
    global _REGISTRY_GENERATION
    _REGISTRY_GENERATION += 1
    _RESOLVE_CACHE.clear()


def registered_archs() -> Tuple[str, ...]:
    """Canonical names of every registered architecture, sorted."""
    return tuple(sorted({entry.canonical for entry in _ARCH_REGISTRY.values()}))


def _registry_entry(name: str) -> _ArchEntry:
    entry = _ARCH_REGISTRY.get(name.lower())
    if entry is None:
        raise ModelConfigError(
            f"unknown GPU architecture {name!r}; registered: "
            f"{', '.join(registered_archs())}"
        )
    return entry


def resolve_arch(value: ArchLike) -> GpuArchitecture:
    """Turn an architecture name / spec into a concrete instance.

    :class:`GpuArchitecture` instances pass through unchanged (the legacy
    path); strings lower to override-free specs.  Equal specs resolve to
    the same memoized instance, so repeated resolution is free and
    identity-keyed caches coalesce.
    """
    if isinstance(value, GpuArchitecture):
        return value
    spec = ArchSpec.coerce(value)
    cached = _RESOLVE_CACHE.get(spec)
    if cached is not None:
        return cached
    base = _registry_entry(spec.name).arch
    if spec.overrides:
        values = dict(spec.overrides)
        if "name" not in values:
            # Distinct override specs must resolve to distinctly *named*
            # architectures: results keyed by arch name (sweep baselines,
            # comparison tables) would otherwise silently collide with the
            # unmodified preset.
            rendered = ",".join(f"{key}={value}" for key, value in spec.overrides)
            values["name"] = f"{base.name}({rendered})"
        resolved = base.with_overrides(**values)
    else:
        resolved = base
    _RESOLVE_CACHE[spec] = resolved
    return resolved


def canonical_arch_key(value: ArchLike):
    """A hashable cache key identifying ``value``'s architecture.

    Names and specs key by the spec itself, so two equal specs (even across
    pickling) share cached cost models and stage geometry.  A raw instance
    that is value-equal to a registered preset keys as that preset's spec —
    the historical ``Session(arch=TESLA_V100)`` path lands on the same
    entry as ``Session(arch="V100")``.  Anything else keys by object
    identity, preserving the legacy instance-path semantics (the caller
    must keep the instance alive, which sessions do by storing it in the
    cache value).
    """
    if isinstance(value, GpuArchitecture):
        for entry in _ARCH_REGISTRY.values():
            if entry.arch == value:
                return ArchSpec(entry.canonical)
        return ("arch-instance", id(value))
    return ArchSpec.coerce(value)


register_arch("V100", TESLA_V100, aliases=("tesla-v100", "tesla v100", "volta"))
register_arch("A100", AMPERE_A100, aliases=("ampere",))
register_arch("H100-SXM", HOPPER_H100, aliases=("h100", "hopper"))
register_arch("RTX-4090", ADA_RTX_4090, aliases=("4090", "ada"))
